"""Design-choice ablation: holder-list caching at the holding site.

§4.1's local/global split exists so that "the bulk of processing is
performed locally".  Disable the cache and every intra-family lock
operation becomes a round trip to the GDO home node: lock message
traffic must rise and local operations drop to zero."""

from repro.bench import run_gdo_cache_ablation

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_holder_list_caching_pays(benchmark, show):
    result = run_once(
        benchmark, run_gdo_cache_ablation,
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    assert result.series["local_ops"]["uncached"] == 0
    assert result.series["local_ops"]["cached"] > 0
    assert result.series["lock_messages"]["uncached"] > \
        result.series["lock_messages"]["cached"]
    assert result.series["cache_hit_rate"]["cached"] > 0
    assert result.series["cache_hit_rate"]["uncached"] == 0
