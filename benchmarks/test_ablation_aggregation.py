"""§5.1 ablation: aggregating related small objects into one larger
object slashes concurrency-control and consistency overhead.

"The LOTEC protocol, as described, has a natural preference for
coarse-grained concurrency since the larger objects are, the fewer
lock operations are necessary. ... Heavily object-based environments
can sometimes aggregate related small objects into larger objects."
"""

from repro.bench import run_aggregation_ablation

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_aggregation_cuts_lock_overhead(benchmark, show):
    result = run_once(
        benchmark, run_aggregation_ablation,
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    # Identical logical work...
    assert result.meta["fine_state_sum"] == result.meta["coarse_state_sum"]
    # ...but one lock acquisition per group instead of one per element.
    ops = result.series["global_lock_ops"]
    assert ops["coarse"] * 4 < ops["fine"]
    assert result.series["lock_messages"]["coarse"] < \
        result.series["lock_messages"]["fine"]
    assert result.series["total_messages"]["coarse"] < \
        result.series["total_messages"]["fine"]
