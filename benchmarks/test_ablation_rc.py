"""§6 announced extension: nested-object Release Consistency compared
against COTEC/OTEC/LOTEC.

Expected shape (the reason the paper chose entry-style laziness):
eager RC pushes every update to every caching replica whether or not
it will be read, so on contended multi-reader workloads it moves more
data than the lazy protocols."""

from repro.bench import run_rc_ablation

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_rc_vs_lazy_protocols(benchmark, show):
    result = run_once(
        benchmark, run_rc_ablation, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    data = result.series["data_bytes"]
    assert data["rc"] > data["lotec"]
    assert data["rc"] > data["otec"]
