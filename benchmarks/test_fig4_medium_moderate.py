"""Figure 4: bytes per shared object — medium objects, moderate
contention (100 objects, mild skew; the paper samples objects O9-O99).
"""

from repro.bench import run_bytes_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig4_medium_objects_moderate_contention(benchmark, show):
    result = run_once(
        benchmark, run_bytes_figure, "medium-moderate",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    totals = result.meta["total_data_bytes"]
    assert totals["cotec"] > totals["otec"] > totals["lotec"]
    # Moderate contention spreads traffic thinner per object than the
    # high-contention runs: the busiest object carries a smaller share.
    top_share = max(result.series["cotec"].values()) / totals["cotec"]
    assert top_share < 0.5
