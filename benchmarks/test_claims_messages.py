"""§5 prose: "LOTEC also sends many more messages (albeit small ones)
than OTEC or COTEC.  This suggested the importance of low message
latency for LOTEC."

Shape asserted: LOTEC's message count is the highest of the three and
its mean message size the smallest."""

from repro.bench import run_claims_messages

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_message_count_vs_size(benchmark, show):
    result = run_once(
        benchmark, run_claims_messages, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    messages = result.series["messages"]
    mean_size = result.series["mean_message_bytes"]
    assert messages["lotec"] >= messages["otec"]
    assert messages["lotec"] >= messages["cotec"] * 0.95
    assert mean_size["lotec"] < mean_size["otec"]
    assert mean_size["lotec"] < mean_size["cotec"]
    # And despite more messages, fewer bytes in total.
    bytes_total = result.series["bytes"]
    assert bytes_total["lotec"] < bytes_total["otec"] < bytes_total["cotec"]
