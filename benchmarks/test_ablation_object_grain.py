"""§4.2 ablation: page-grain vs object-grain ("Distributed Shared
Data") transfer under LOTEC.

"Only updates to the objects (not the entire pages they are stored on)
really need to be transmitted between nodes" — object grain avoids
shipping the partial tail page's padding, so it always moves at most
the bytes of page grain, with the same message count."""

from repro.bench import run_object_grain_ablation

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_object_grain_beats_page_grain(benchmark, show):
    result = run_once(
        benchmark, run_object_grain_ablation,
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    # The guarantee is per transfer: an object-grain data message never
    # carries more than its page-grain twin (raw object bytes <= whole
    # pages).  Run-level totals can diverge slightly because message
    # timing shifts interleavings and retry patterns, so the robust
    # shape check is mean data-message size.
    mean_size = result.series["mean_data_message_bytes"]
    assert mean_size["object"] < mean_size["page"]
    data = result.series["data_bytes"]
    assert data["object"] <= data["page"] * 1.10
