"""Design-choice ablation: LOTEC's advantage vs method access width.

LOTEC's whole edge over OTEC is that methods touch a *subset* of the
object (§4.1).  Sweep that subset fraction: narrow methods should give
the largest saving; methods touching ~everything should collapse the
saving toward zero (prediction ~ whole object = OTEC)."""

from repro.bench import run_prediction_ablation

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_saving_grows_as_access_narrows(benchmark, show):
    result = run_once(
        benchmark, run_prediction_ablation,
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    savings = result.series["lotec_saving"]
    labels = list(savings)
    narrowest, widest = labels[0], labels[-1]
    assert savings[narrowest] > savings[widest]
    assert savings[narrowest] > 0.10
    assert savings[widest] < 0.10
