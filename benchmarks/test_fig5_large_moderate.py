"""Figure 5: bytes per shared object — large objects, moderate
contention (the paper's heaviest scenario; note the y axis reaching
~700,000 bytes for hot objects)."""

from repro.bench import run_bytes_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig5_large_objects_moderate_contention(benchmark, show):
    result = run_once(
        benchmark, run_bytes_figure, "large-moderate",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    totals = result.meta["total_data_bytes"]
    assert totals["cotec"] > totals["otec"] > totals["lotec"]
    # Nearly every root commits under every protocol (this is the most
    # contended scenario; a small fraction may exhaust the deadlock
    # retry budget, more under COTEC whose long full-object transfers
    # widen the conflict windows).
    committed = result.meta["committed"]
    failed = result.meta["failed"]
    for protocol, count in committed.items():
        assert count > 0
        assert failed[protocol] <= 0.10 * (count + failed[protocol]), protocol
