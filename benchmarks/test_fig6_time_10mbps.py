"""Figure 6: total message time for a hot shared object at 10 Mbps
(conventional switched Ethernet), across per-message software costs of
100 us down to 500 ns.

Paper shape: at this bandwidth serialization dominates, so the curves
are nearly flat in software cost and LOTEC wins at every point —
"LOTEC faired quite well for the slower networks even with fairly
heavyweight messaging protocols."
"""

from repro.bench import run_time_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig6_transfer_time_10mbps(benchmark, show):
    result = run_once(
        benchmark, run_time_figure, "10Mbps",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    for cost in result.series["cotec"]:
        assert result.series["cotec"][cost] > result.series["otec"][cost]
        assert result.series["otec"][cost] > result.series["lotec"][cost]
    # Serialization dominates: dropping software cost 200x changes the
    # totals by only a few percent.
    for protocol in ("cotec", "otec", "lotec"):
        series = result.series[protocol]
        assert series["100us"] < series["500ns"] * 1.25
