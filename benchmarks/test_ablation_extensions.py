"""Ablation benches for the paper's announced extensions (§4.1, §5.1,
§6): recovery mechanism, multicast pushes, optimistic prefetching, and
per-class protocol mixes."""

from repro.bench import (
    run_multicast_ablation,
    run_per_class_ablation,
    run_prefetch_ablation,
    run_recovery_ablation,
)

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_recovery_undo_vs_shadow(benchmark, show):
    """§4.1: undo logs and shadow pages must roll back identically;
    the network traffic is byte-for-byte the same (recovery is purely
    local — "no network communication is required")."""
    result = run_once(
        benchmark, run_recovery_ablation, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    assert result.meta["states_equal"]
    assert result.series["committed"]["undo"] == \
        result.series["committed"]["shadow"]
    assert result.series["data_bytes"]["undo"] == \
        result.series["data_bytes"]["shadow"]


def test_multicast_collapses_rc_pushes(benchmark, show):
    """§6: on a multicast fabric one transmission updates every
    replica — push messages and bytes both drop."""
    result = run_once(
        benchmark, run_multicast_ablation, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    assert result.series["push_messages"]["multicast"] < \
        result.series["push_messages"]["unicast"]
    assert result.series["push_bytes"]["multicast"] < \
        result.series["push_bytes"]["unicast"]


def test_prefetch_hides_lock_latency(benchmark, show):
    """§5.1: with locks *and* pages pre-acquired in parallel, mean root
    latency drops well below the demand-driven baseline on a
    low-contention nested workload — at the price of extra messages
    (optimism that is denied or unused is not free)."""
    result = run_once(
        benchmark, run_prefetch_ablation, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    latency = result.series["mean_latency_us"]
    assert latency["locks+pages"] < latency["off"] * 0.8
    assert result.series["messages"]["locks+pages"] > \
        result.series["messages"]["off"]
    assert result.series["prefetch_granted"]["locks+pages"] > 0


def test_per_class_mix_between_extremes(benchmark, show):
    """§6: putting only the hot class on RC costs more bytes than pure
    LOTEC but far less than running everything eagerly."""
    result = run_once(
        benchmark, run_per_class_ablation, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    data = result.series["data_bytes"]
    assert data["lotec"] <= data["mixed"] <= data["rc"]
    assert data["mixed"] < data["rc"]
