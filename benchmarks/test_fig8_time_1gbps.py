"""Figure 8: total message time at 1 Gbps (gigabit Ethernet).

Paper shape: wire time is nearly free, so the per-message software
cost dominates and LOTEC's many small messages erode its advantage at
heavyweight costs — "as we migrate to gigabit Ethernet ... any LOTEC
implementation will also have to incorporate extremely efficient
message transmission protocols."
"""

from repro.bench import run_time_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig8_transfer_time_1gbps(benchmark, show):
    result = run_once(
        benchmark, run_time_figure, "1Gbps",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    lotec, otec = result.series["lotec"], result.series["otec"]
    # With cheap messaging LOTEC wins clearly...
    assert lotec["500ns"] < otec["500ns"]
    # ...but its relative advantage erodes as software cost rises
    # (the paper's central Figure 8 observation).
    advantage_cheap = 1 - lotec["500ns"] / otec["500ns"]
    advantage_heavy = 1 - lotec["100us"] / otec["100us"]
    assert advantage_heavy < advantage_cheap
    # And software cost dominates at this bandwidth: 100us costs every
    # protocol far more than 500ns.
    for protocol in ("cotec", "otec", "lotec"):
        series = result.series[protocol]
        assert series["100us"] > series["500ns"] * 1.5
