"""§5 prose table: "OTEC generally outperforms COTEC by approximately
20-25% while LOTEC outperforms OTEC by another 5-10%.  In some cases,
the difference is more dramatic."

We assert the two reductions hold in the paper's direction for every
scenario, with LOTEC-vs-OTEC inside a widened band around the paper's
5-10% (EXPERIMENTS.md records the exact measured values; our
OTEC-vs-COTEC reduction runs stronger than the paper's — same winner,
larger factor)."""

from repro.bench import run_claims_reduction

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_reduction_claims(benchmark, show):
    result = run_once(
        benchmark, run_claims_reduction, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    reductions = result.meta["reductions"]
    print()
    for scenario, r in reductions.items():
        print(f"{scenario:>16}: OTEC -{r['otec_vs_cotec']:.0%} vs COTEC; "
              f"LOTEC -{r['lotec_vs_otec']:.0%} vs OTEC")
    for scenario, r in reductions.items():
        assert 0.10 < r["otec_vs_cotec"] < 0.75, scenario
        assert 0.01 < r["lotec_vs_otec"] < 0.40, scenario
