"""Harness benchmark: the parallel, cached runner itself.

Times one figure regenerated through a worker pool, then again from a
warm on-disk cache, and asserts both produce results byte-identical to
the serial run.  The cached pass must be essentially free (it replays
JSON instead of simulating), and on a multi-core machine the pooled
pass beats the serial wall clock; neither property changes the output.
"""

import json

from repro.bench import ExperimentRunner, ResultCache, run_experiment

from conftest import BENCH_SCALE, BENCH_SEED, run_once

JOBS = 4


def _blob(result):
    return json.dumps(result.to_json(), sort_keys=True)


def test_fig6_parallel_matches_serial(benchmark, show):
    serial = run_experiment("fig6", seed=BENCH_SEED, scale=BENCH_SCALE)
    pooled = run_once(
        benchmark, run_experiment, "fig6",
        jobs=JOBS, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(pooled)
    assert _blob(pooled) == _blob(serial)


def test_fig6_cached_replay(benchmark, tmp_path, show):
    cache = ResultCache(root=str(tmp_path / "cache"))
    warm = run_experiment("fig6", cache=cache,
                          seed=BENCH_SEED, scale=BENCH_SCALE)

    runner = ExperimentRunner(cache=cache)
    cached = run_once(
        benchmark, runner.run, "fig6",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(cached)
    assert runner.last_stats.executed == 0
    assert runner.last_stats.cache_hits == runner.last_stats.runs > 0
    assert _blob(cached) == _blob(warm)
