"""Locality claim: on a skewed open-loop load, adaptive GDO home
migration moves hot entries to their dominant accessor and — because
local messages are free in the model — cuts remote directory traffic
versus the seed's static round-robin homes.

Shape asserted: adaptive strictly beats static on remote directory
messages, actually migrates, and commits the same work.  The >= 30%
reduction quoted in EXPERIMENTS.md holds at full scale; smaller
scales leave less time for access counts to cross the migration
threshold (measured: ~24% at scale 0.5, ~8% at 0.25, ~1% at 0.1), so
the numeric floor is graded by scale and the win-at-all shape is the
invariant."""

from repro.bench import run_claims_locality

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_migration_cuts_directory_messages(benchmark, show):
    result = run_once(
        benchmark, run_claims_locality, seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    remote = result.series["remote_directory_messages"]
    assert remote["adaptive"] < remote["static"]
    assert result.series["migrations"]["adaptive"] > 0
    assert result.series["migrations"]["static"] == 0
    # Same offered load, same outcome: migration must not cost commits.
    committed = result.series["committed"]
    assert committed["adaptive"] == committed["static"]
    reduction = result.meta["directory_message_reduction"]
    if BENCH_SCALE >= 1.0:
        assert reduction >= 0.3
    elif BENCH_SCALE >= 0.5:
        assert reduction >= 0.1
