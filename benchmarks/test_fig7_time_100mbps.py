"""Figure 7: total message time at 100 Mbps (fast Ethernet).

Paper shape: the intermediate point — software cost starts to matter
but does not dominate; "LOTEC should perform well with current, fast
Ethernet networks using only mildly aggressive, low-latency network
protocols."
"""

from repro.bench import run_time_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig7_transfer_time_100mbps(benchmark, show):
    result = run_once(
        benchmark, run_time_figure, "100Mbps",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    for cost in result.series["cotec"]:
        assert result.series["lotec"][cost] < result.series["cotec"][cost]
    lotec = result.series["lotec"]
    # Software cost has a visible but non-dominant effect here: more
    # than at 10 Mbps, less than at 1 Gbps.
    ratio = lotec["100us"] / lotec["500ns"]
    assert 1.02 < ratio < 3.0
