"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure, table, or
prose claim) through :mod:`repro.bench`, prints the series the paper
plots, and asserts the paper's *shape* (who wins, roughly by how much,
where trends cross) — not absolute numbers, which depend on the
authors' testbed.

Scale: set ``REPRO_BENCH_SCALE`` (default ``0.5``) to trade run time
against workload size; ``1.0`` reproduces the full-size runs quoted in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

#: Fraction of each scenario's root-transaction count to run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Master seed for every benchmark run (EXPERIMENTS.md quotes this).
BENCH_SEED = 11


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def show():
    """Print an ExperimentResult table under ``-s``."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show
