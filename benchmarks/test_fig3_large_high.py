"""Figure 3: bytes per shared object — large objects (10-20 pages),
high contention.

Paper shape: same ordering as Figure 2 with larger absolute byte
counts and a wider LOTEC gap — big objects whose methods touch page
subsets are exactly LOTEC's favourable regime.
"""

from repro.bench import run_bytes_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once

_fig2_cache = {}


def test_fig3_large_objects_high_contention(benchmark, show):
    result = run_once(
        benchmark, run_bytes_figure, "large-high",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    totals = result.meta["total_data_bytes"]
    assert totals["cotec"] > totals["otec"] > totals["lotec"]
    # Larger objects shift every curve up by roughly the page-count
    # ratio vs the medium scenario.
    from repro.bench import run_bytes_figure as fig

    medium = _fig2_cache.setdefault(
        "medium",
        fig("medium-high", seed=BENCH_SEED, scale=BENCH_SCALE),
    )
    assert totals["cotec"] > medium.meta["total_data_bytes"]["cotec"] * 2
    # LOTEC's relative saving vs OTEC should be at least as good as on
    # medium objects.
    saving_large = 1 - totals["lotec"] / totals["otec"]
    assert saving_large > 0.02
