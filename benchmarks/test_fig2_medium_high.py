"""Figure 2: bytes per shared object — medium objects (1-5 pages),
high contention (20 objects, strong skew).

Paper shape: COTEC highest, OTEC below it, LOTEC lowest, for (nearly)
every plotted object; the aggregate ordering is strict.
"""

from repro.bench import run_bytes_figure

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig2_medium_objects_high_contention(benchmark, show):
    result = run_once(
        benchmark, run_bytes_figure, "medium-high",
        seed=BENCH_SEED, scale=BENCH_SCALE,
    )
    show(result)
    totals = result.meta["total_data_bytes"]
    assert totals["cotec"] > totals["otec"] > totals["lotec"]
    # Per-object: LOTEC must win or tie on a clear majority of the
    # plotted objects (scattering can cost it a few, as in the paper's
    # noisier bars).
    objects = list(result.series["cotec"])
    lotec_wins = sum(
        1
        for obj in objects
        if result.series["lotec"][obj] <= result.series["otec"][obj]
    )
    assert lotec_wins >= len(objects) * 0.6
    cotec_wins = sum(
        1
        for obj in objects
        if result.series["otec"][obj] <= result.series["cotec"][obj]
    )
    assert cotec_wins >= len(objects) * 0.9
