"""Property test: the FIFO fast path is sequence-identical to the
ranked path.

With ``tiebreak=None`` the engine takes its fast path: 3-tuple heap
entries (no rank slot, no ``policy.rank()`` call), pooled process
bootstraps, and batched same-instant wake groups
(:meth:`~repro.sim.engine.Environment.succeed_all`).  An explicit
rank-0 :class:`~repro.sim.tiebreak.TieBreakPolicy` instance forces the
general 4-tuple ranked path through the same workload.  Both must
produce the *same event sequence* — identical pop order at the micro
level, and byte-identical trace digests (plus identical commit and
events-processed counts) on full workloads: plain fig2, a chaos run
with fault injection, and an open-loop load with adaptive GDO home
migration.
"""

import hashlib
import random

import pytest

from repro.faults import FAULT_PRESETS
from repro.gdo import MigrationConfig
from repro.load import build_load, run_load
from repro.obs.export import events_to_jsonl
from repro.runtime import Cluster, ClusterConfig
from repro.sim import Environment
from repro.sim.tiebreak import TieBreakPolicy
from repro.workload import SCENARIOS, generate_workload, run_workload


def _ranked(cluster):
    """Install an explicit rank-0 policy: same ordering contract as the
    default, but through the general ranked-tuple machinery."""
    cluster.env.tiebreak = TieBreakPolicy()
    return cluster


def _fingerprint(cluster, committed):
    jsonl = events_to_jsonl(cluster.tracer.events)
    return (
        hashlib.sha256(jsonl.encode("utf-8")).hexdigest(),
        committed,
        cluster.env.events_processed,
    )


class TestPopOrderProperty:
    """Randomized (seeded) schedules: pop order must match exactly."""

    def _trace(self, policy, seed):
        env = Environment(tiebreak=policy)
        rng = random.Random(seed)
        order = []

        def proc(tag, delays):
            for delay in delays:
                yield env.timeout(delay)
                order.append((tag, env.now))

        for index in range(8):
            delays = [rng.choice((0.0, 0.5, 1.0, 1.0, 2.0))
                      for _ in range(6)]
            env.process(proc(index, delays), name=f"p{index}")

        # A same-instant wake group: batched into one heap entry on the
        # fast path, per-event succeeds on the ranked path.
        group = [env.event(name=f"g{index}") for index in range(5)]
        for index, event in enumerate(group):
            event.add_callback(
                lambda _e, i=index: order.append(("wake", i, env.now))
            )

        def batcher():
            yield env.timeout(1.0)
            env.succeed_all(group, value="granted")

        env.process(batcher(), name="batcher")
        env.run()
        return order, env.events_processed

    @pytest.mark.parametrize("seed", range(5))
    def test_fast_path_pop_order_matches_ranked(self, seed):
        assert self._trace(None, seed) == \
            self._trace(TieBreakPolicy(), seed)


class TestWorkloadDigestProperty:
    """Full workloads: byte-identical traces across both paths."""

    def _fig2(self, ranked):
        workload = generate_workload(
            SCENARIOS["medium-high"].scaled(0.1), seed=11
        )
        cluster = Cluster(ClusterConfig(
            num_nodes=4, protocol="lotec", seed=11,
            audit_accesses=False, trace=True,
        ))
        if ranked:
            _ranked(cluster)
        run = run_workload(cluster, workload)
        return _fingerprint(cluster, run.committed)

    def _chaos(self, ranked):
        workload = generate_workload(
            SCENARIOS["medium-high"].scaled(0.2), seed=5
        )
        cluster = Cluster(ClusterConfig(
            num_nodes=4, protocol="lotec", seed=5, trace=True,
            faults=FAULT_PRESETS["chaos"],
        ))
        if ranked:
            _ranked(cluster)
        run = run_workload(cluster, workload)
        return _fingerprint(cluster, run.committed)

    def _migration(self, ranked):
        load = build_load("zipf-smoke", seed=7, scale=0.3)
        cluster = Cluster(ClusterConfig(
            num_nodes=load.scenario.clients, protocol="lotec", seed=7,
            trace=True, migration=MigrationConfig(),
        ))
        if ranked:
            _ranked(cluster)
        run = run_load(cluster, load)
        return _fingerprint(cluster, run.committed)

    def test_fig2_digest_identical(self):
        fast, ranked = self._fig2(False), self._fig2(True)
        assert fast == ranked
        assert fast[1] > 0  # the run did real work

    def test_chaos_digest_identical(self):
        fast, ranked = self._chaos(False), self._chaos(True)
        assert fast == ranked
        assert fast[1] > 0

    def test_migration_digest_identical(self):
        fast, ranked = self._migration(False), self._migration(True)
        assert fast == ranked
        assert fast[1] > 0
