"""Semantic lock modes end to end.

Covers the commutativity tables (trust tiers, blind increments, the
conservative R/W fallback, inherited bodies, determinism), the
SemanticMode lattice itself, and live-cluster integration with
``semantic_locks=True``: commuting deposits merge through the
increment ledger, aborts drop their deltas, and the serial oracle
agrees with the relaxed schedule.
"""

import pytest

from repro import (
    Attr,
    ClusterConfig,
    TransactionAborted,
    check_serializability,
    method,
    shared_class,
)
from repro.analysis.commutativity import (
    TRUST_ANALYZED,
    TRUST_DECLARED,
    TRUST_FALLBACK,
    build_commutativity,
)
from repro.gdo.entry import LockMode
from repro.objects.schema import schema_of
from repro.txn.semantic import SemanticMode, base_of, join_modes, modes_conflict

from conftest import make_cluster

PAGE = 256


@shared_class
class Till:
    """All attributes on one page: commutativity must come from blind
    increments, not page disjointness."""

    balance = Attr(size=8, default=0)
    deposits = Attr(size=8, default=0)

    @method
    def deposit(self, ctx, amount):
        self.balance += amount
        self.deposits += 1

    @method
    def withdraw(self, ctx, amount):
        # The guard *observes* balance, demoting the -= to a plain
        # read/write: withdrawals must serialize against each other.
        if self.balance < amount:
            ctx.abort("insufficient")
        self.balance -= amount

    @method
    def open_with(self, ctx, amount):
        self.balance = amount

    @method
    def read_balance(self, ctx):
        return self.balance


@shared_class
class Opaque:
    """Dynamic attribute access defeats the AST analysis."""

    total = Attr(size=8, default=0)

    @method
    def poke(self, ctx, name):
        setattr(self, name, getattr(self, name, 0) + 1)

    @method
    def bump(self, ctx):
        self.total += 1


@shared_class
class Disjoint:
    """Declared overrides narrow an inconclusive analysis: the
    declaration is trusted for page disjointness, never increments."""

    left = Attr(size=PAGE, default=0)
    right = Attr(size=PAGE, default=0)

    @method(reads=["left"], writes=["left"])
    def touch_left(self, ctx):
        setattr(self, "left", getattr(self, "left") + 1)

    @method(reads=["right"], writes=["right"])
    def touch_right(self, ctx):
        setattr(self, "right", getattr(self, "right") + 1)


class _CounterOps:
    """Plain (non-shared) base class: bodies inherited by re-export."""

    @method
    def bump(self, ctx):
        self.hits += 1

    @method
    def peek(self, ctx):
        return self.hits


@shared_class
class InheritedCounter(_CounterOps):
    hits = Attr(size=8, default=0)
    bump = _CounterOps.bump
    peek = _CounterOps.peek


def _table(cls, **kwargs):
    schema = schema_of(cls)
    return build_commutativity(schema, schema.make_layout(PAGE), **kwargs)


class TestCommutativityTable:
    def test_blind_increments_self_commute(self):
        table = _table(Till)
        assert table.commutes("deposit", "deposit")
        summary = table.summary("deposit")
        assert summary.trust == TRUST_ANALYZED
        assert summary.increment_attrs == {"balance", "deposits"}

    def test_guarded_decrement_does_not_commute(self):
        table = _table(Till)
        assert not table.commutes("withdraw", "withdraw")
        assert not table.commutes("deposit", "withdraw")
        assert not table.commutes("withdraw", "deposit")

    def test_plain_write_excludes_increments(self):
        table = _table(Till)
        assert not table.commutes("open_with", "deposit")
        assert not table.commutes("open_with", "open_with")

    def test_readers_commute_with_each_other_only(self):
        table = _table(Till)
        assert table.commutes("read_balance", "read_balance")
        assert not table.commutes("read_balance", "deposit")

    def test_unknown_method_never_commutes(self):
        table = _table(Till)
        assert not table.commutes("deposit", "ghost")
        assert not table.commutes("ghost", "ghost")

    def test_inconclusive_analysis_falls_back_to_plain_rw(self):
        table = _table(Opaque)
        poke = table.summary("poke")
        assert poke.trust == TRUST_FALLBACK
        assert not poke.semantic
        # A fallback method commutes with nothing — not even itself.
        assert not table.commutes("poke", "poke")
        assert not table.commutes("poke", "bump")
        assert table.commutes("bump", "bump")

    def test_declared_overrides_trust_pages_not_increments(self):
        table = _table(Disjoint)
        left = table.summary("touch_left")
        assert left.trust == TRUST_DECLARED
        assert left.increment_attrs == frozenset()
        # Page-disjoint declared writers commute across methods...
        assert table.commutes("touch_left", "touch_right")
        # ...but never with themselves: without the body, the += is
        # just an observed read/write of the same page.
        assert not table.commutes("touch_left", "touch_left")

    def test_shadow_recovery_drops_increment_commutativity(self):
        table = _table(Till, allow_increments=False)
        summary = table.summary("deposit")
        assert summary.trust == TRUST_ANALYZED
        assert summary.increment_attrs == frozenset()
        assert not table.commutes("deposit", "deposit")
        # Read/read commutativity needs no increments and survives.
        assert table.commutes("read_balance", "read_balance")

    def test_inherited_bodies_analyze_like_their_own(self):
        table = _table(InheritedCounter)
        bump = table.summary("bump")
        assert bump.trust == TRUST_ANALYZED
        assert bump.increment_attrs == {"hits"}
        assert table.commutes("bump", "bump")
        assert not table.commutes("bump", "peek")

    def test_repeated_builds_are_identical(self):
        first, second = _table(Till), _table(Till)
        assert first.to_trace() == second.to_trace()
        assert first.commuting_pairs() == second.commuting_pairs()

    def test_trace_artifact_carries_everything_checkers_judge_by(self):
        payload = _table(Till).to_trace()
        assert payload["class"] == "Till"
        assert ["deposit", "deposit"] in payload["commutes"]
        deposit = payload["methods"]["deposit"]
        assert deposit["base"] == "W" and deposit["semantic"]
        assert deposit["increments"] == ["balance", "deposits"]


class TestSemanticModeLattice:
    def _modes(self):
        table = _table(Till)
        return (
            SemanticMode(LockMode.WRITE, "Till.deposit", table),
            SemanticMode(LockMode.WRITE, "Till.open_with", table),
            table,
        )

    def test_commuting_modes_do_not_conflict(self):
        deposit, _, _ = self._modes()
        assert not modes_conflict(deposit, deposit)

    def test_non_commuting_semantic_modes_conflict(self):
        deposit, open_with, _ = self._modes()
        assert modes_conflict(deposit, open_with)
        assert modes_conflict(open_with, deposit)

    def test_semantic_write_conflicts_with_plain_modes_both_ways(self):
        deposit, _, _ = self._modes()
        # Commutativity never excuses a plain-mode holder: the plain
        # grant carries no method identity to commute against.
        assert modes_conflict(deposit, LockMode.READ)
        assert modes_conflict(LockMode.READ, deposit)
        assert modes_conflict(deposit, LockMode.WRITE)
        assert not modes_conflict(LockMode.READ, LockMode.READ)

    def test_base_and_repr(self):
        deposit, _, _ = self._modes()
        assert base_of(deposit) is LockMode.WRITE
        assert base_of(LockMode.READ) is LockMode.READ
        assert deposit.value == "W+Till.deposit"

    def test_join_keeps_identity_only_for_equal_modes(self):
        deposit, open_with, table = self._modes()
        same = SemanticMode(LockMode.WRITE, "Till.deposit", table)
        assert join_modes(deposit, same) == deposit
        assert join_modes(deposit, open_with) is LockMode.WRITE
        assert join_modes(deposit, LockMode.READ) is LockMode.WRITE


class TestClusterIntegration:
    def test_semantic_locks_default_off(self):
        assert ClusterConfig().semantic_locks is False

    def test_concurrent_deposits_merge_and_conserve_money(self):
        cluster = make_cluster(semantic_locks=True)
        till = cluster.create(Till)
        total = 0
        for index in range(12):
            amount = 10 + index
            total += amount
            cluster.submit(till, "deposit", amount,
                           node=cluster.nodes[index % len(cluster.nodes)])
        cluster.run()
        assert cluster.read_attr(till, "balance") == total
        assert cluster.read_attr(till, "deposits") == 12
        assert check_serializability(cluster)

    def test_abort_drops_deltas(self):
        cluster = make_cluster(semantic_locks=True)
        till = cluster.create(Till)
        cluster.call(till, "deposit", 50)
        with pytest.raises(TransactionAborted):
            cluster.call(till, "withdraw", 1000)
        assert cluster.read_attr(till, "balance") == 50
        cluster.call(till, "deposit", 7)
        assert cluster.read_attr(till, "balance") == 57
        assert check_serializability(cluster)

    @pytest.mark.parametrize("protocol", ["lotec", "cotec"])
    def test_on_and_off_agree_on_final_state(self, protocol):
        def run(semantic):
            cluster = make_cluster(protocol=protocol,
                                   semantic_locks=semantic)
            till = cluster.create(Till)
            for index in range(8):
                cluster.submit(till, "deposit", index + 1,
                               node=cluster.nodes[index % 4])
            cluster.submit(till, "withdraw", 3, node=cluster.nodes[1])
            cluster.run()
            return (cluster.read_attr(till, "balance"),
                    cluster.read_attr(till, "deposits"))

        assert run(semantic=False) == run(semantic=True)
