"""End-to-end protocol runs over the real TCP transport.

The acceptance bar for the TCP backend: the *same workload* driven
through the full LOTEC stack over real localhost sockets must commit
the same transactions and put the identical multiset of wire messages
(category x src x dst x size) on the network as the simulation
backend — and its wall-clock trace must pass every post-hoc oracle
(invariant checkers, Moss-retention reference model, serializability)
unchanged.

Schedules are driven *sequentially* (one root at a time, run to
completion) for the cross-backend comparison: with concurrent roots
the wall clock may legally reorder lock grants, changing the page
ownership history — still serializable, but not message-identical.
"""

import pytest

from repro.check import check_reference_model, run_invariants
from repro.obs.export import read_jsonl, read_jsonl_header, write_jsonl
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.verify import check_serializability
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS

SCENARIO = "medium-high"
SCALE = 0.1
SEED = 11
NODES = 4


def tap_accounting(network):
    """Record every accounted wire copy as (category, src, dst, size)."""
    log = []
    original = network.stats.record

    def record(message, transfer_time):
        log.append((message.category.value, message.src.value,
                    message.dst.value, message.size_bytes))
        original(message, transfer_time)

    network.stats.record = record
    return log


def run_sequential(transport, processes=False):
    """Drive the standard workload one root at a time; return
    (committed, accounted multiset, cluster) with the cluster closed."""
    params = SCENARIOS[SCENARIO].scaled(SCALE)
    workload = generate_workload(params, seed=SEED)
    cluster = Cluster(ClusterConfig(
        num_nodes=NODES, protocol="lotec", seed=SEED,
        audit_accesses=False, trace=True,
        transport=transport, transport_processes=processes,
    ))
    accounted = tap_accounting(cluster.network)
    with cluster:
        handles = tuple(
            cluster.create(workload.class_of(index).schema)
            for index in range(workload.num_objects)
        )
        for index, plan in enumerate(workload.plans):
            ticket = cluster.submit(
                handles[plan.obj_index], plan.method_name, plan, handles,
                label=f"root{index}",
            )
            cluster.run()
            ticket.result()
    return cluster.txn_stats.commits, sorted(accounted), cluster


@pytest.fixture(scope="module")
def sequential_runs():
    sim = run_sequential("sim")
    tcp = run_sequential("tcp")
    return sim, tcp


class TestWireEquivalence:
    def test_same_commits_and_wire_multiset(self, sequential_runs):
        (sim_commits, sim_wire, _), (tcp_commits, tcp_wire, _) = (
            sequential_runs
        )
        assert sim_commits == tcp_commits > 0
        assert len(sim_wire) == len(tcp_wire) > 0
        assert sim_wire == tcp_wire

    def test_every_accounted_message_crossed_a_socket(self,
                                                      sequential_runs):
        _, (_, tcp_wire, cluster) = sequential_runs
        assert sorted(cluster.network.delivered_log) == tcp_wire


class TestTcpTraceOracles:
    """The wall-clock trace feeds the same post-hoc checkers."""

    def test_serializability_holds_over_tcp(self, sequential_runs):
        _, (_, _, cluster) = sequential_runs
        report = check_serializability(cluster)
        assert report.equivalent, report.state_mismatches
        assert not report.result_mismatches

    def test_invariants_and_reference_model_pass(self, sequential_runs):
        _, (_, _, cluster) = sequential_runs
        events = cluster.tracer.events
        assert events
        assert run_invariants(events) == []
        assert check_reference_model(events) == []

    def test_trace_is_wall_clock_and_round_trips(self, sequential_runs,
                                                 tmp_path):
        _, (_, _, cluster) = sequential_runs
        assert cluster.tracer.clock_kind == "wall"
        path = tmp_path / "tcp.jsonl"
        write_jsonl(cluster.tracer.events, path,
                    clock=cluster.tracer.clock_kind)
        assert read_jsonl_header(path) == {"schema": 1, "clock": "wall"}

        # The header is metadata, not an event: the reader skips it and
        # the replayed dicts satisfy the same oracles.
        replayed = read_jsonl(path)
        assert len(replayed) == len(cluster.tracer.events)
        assert run_invariants(replayed) == []
        assert check_reference_model(replayed) == []

    def test_wall_timestamps_are_real_elapsed_seconds(self,
                                                      sequential_runs):
        # Spans are appended at span *end* carrying their begin ts, so
        # the list is not sorted — but every stamp is nonnegative wall
        # seconds, durations are nonnegative, and real time did pass.
        _, (_, _, cluster) = sequential_runs
        events = cluster.tracer.events
        assert all(event.ts >= 0.0 for event in events)
        assert all(event.dur >= 0.0 for event in events)
        assert max(event.ts for event in events) > 0.0


class TestConcurrentTcpRun:
    """Concurrent arrivals over TCP: no message-level identity claim,
    but the protocol oracles must still all hold."""

    def test_full_workload_is_serializable(self):
        from repro.workload.runner import run_workload

        params = SCENARIOS[SCENARIO].scaled(SCALE)
        workload = generate_workload(params, seed=3)
        cluster = Cluster(ClusterConfig(
            num_nodes=NODES, protocol="lotec", seed=3,
            audit_accesses=False, trace=True, transport="tcp",
        ))
        with cluster:
            run = run_workload(cluster, workload)
        assert run.committed > 0
        assert check_serializability(cluster).equivalent
        assert run_invariants(cluster.tracer.events) == []
        assert cluster.network.delivered_log  # frames really crossed


@pytest.mark.slow
class TestProcessMode:
    """One node per OS process, frames relayed through the coordinator."""

    def test_sequential_run_matches_sim(self):
        sim_commits, sim_wire, _ = run_sequential("sim")
        tcp_commits, tcp_wire, cluster = run_sequential(
            "tcp", processes=True
        )
        assert tcp_commits == sim_commits
        assert tcp_wire == sim_wire
        assert check_serializability(cluster).equivalent
