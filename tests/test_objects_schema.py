"""Unit tests for shared-class declaration and schema compilation."""

import pytest

from repro import Array, Attr, method, shared_class
from repro.objects.schema import build_schema, schema_of
from repro.util.errors import ConfigurationError


@shared_class
class Sample:
    small = Attr(size=8, default=1)
    big = Attr(size=6000, default=0)
    items = Array(size=100, count=10, default=0)

    @method
    def read_small(self, ctx):
        return self.small

    @method
    def update_big(self, ctx, v):
        self.big = v + self.small

    @method
    def touch_item(self, ctx, i):
        self.items[i] += 1

    @method(reads=["small"], writes=["small"])
    def annotated(self, ctx):
        self.small += 1

    @method
    def fanout(self, ctx, other):
        result = yield ctx.invoke(other, "read_small")
        self.small = result
        return result


class TestDeclarations:
    def test_schema_attached(self):
        schema = schema_of(Sample)
        assert schema.name == "Sample"
        assert set(schema.attribute_names()) == {"small", "big", "items"}
        assert set(schema.methods) == {
            "read_small", "update_big", "touch_item", "annotated", "fanout",
        }

    def test_attr_validation(self):
        with pytest.raises(ConfigurationError):
            Attr(size=0)
        with pytest.raises(ConfigurationError):
            Array(size=8, count=1)

    def test_class_without_attrs_rejected(self):
        class NoAttrs:
            @method
            def m(self, ctx):
                return 0

        with pytest.raises(ConfigurationError, match="no Attr"):
            build_schema(NoAttrs)

    def test_class_without_methods_rejected(self):
        class NoMethods:
            x = Attr(size=8)

        with pytest.raises(ConfigurationError, match="no @method"):
            build_schema(NoMethods)

    def test_schema_of_rejects_plain_class(self):
        class Plain:
            pass

        with pytest.raises(ConfigurationError):
            schema_of(Plain)

    def test_unknown_method_lookup(self):
        with pytest.raises(KeyError, match="no method"):
            schema_of(Sample).method_spec("nope")


class TestAnalyzedAccess:
    def test_reader_gets_read_lock(self):
        spec = schema_of(Sample).method_spec("read_small")
        assert spec.access.reads == {"small"}
        assert not spec.is_update

    def test_updater_detected(self):
        spec = schema_of(Sample).method_spec("update_big")
        assert spec.access.writes == {"big"}
        assert spec.access.reads == {"small"}
        assert spec.is_update

    def test_array_element_access(self):
        spec = schema_of(Sample).method_spec("touch_item")
        assert "items" in spec.access.writes
        assert "items" in spec.access.reads

    def test_generator_method_flagged(self):
        schema = schema_of(Sample)
        assert schema.method_spec("fanout").is_generator
        assert not schema.method_spec("read_small").is_generator

    def test_generator_access_sets(self):
        spec = schema_of(Sample).method_spec("fanout")
        assert spec.access.writes == {"small"}

    def test_annotation_overrides_analysis(self):
        spec = schema_of(Sample).method_spec("annotated")
        assert spec.access.reads == {"small"}
        assert spec.access.writes == {"small"}

    def test_annotation_unknown_attr_rejected(self):
        class Bad:
            x = Attr(size=8)

            @method(writes=["ghost"])
            def m(self, ctx):
                self.x = 1

        with pytest.raises(ConfigurationError, match="unknown attributes"):
            build_schema(Bad)

    def test_method_names_not_in_access_sets(self):
        # self.helper(...) style calls must not leak method names into
        # the data-attribute access sets after resolve().
        class WithHelper:
            x = Attr(size=8)
            y = Attr(size=8)

            @method
            def outer(self, ctx):
                self.inner_helper()
                return self.x

            @method
            def inner_helper(self, ctx):
                self.y = 1

        schema = build_schema(WithHelper)
        spec = schema.method_spec("outer")
        assert "inner_helper" not in spec.access.reads
        assert "y" in spec.access.writes  # transitively included

    def test_layout_factory(self):
        layout = schema_of(Sample).make_layout(page_size=4096)
        assert layout.page_count >= 2
        assert layout.has_attribute("items")
