"""Transport-interface conformance, parameterized over both backends.

Every test here runs once against :class:`SimTransport` (virtual
clock) and once against :class:`TcpTransport` (real localhost sockets
on a wall-clock environment): the Transport contract — delivery
events, local fast path, charge accounting, multicast fan-out,
fair-loss fault semantics with bounded retransmission — must hold
identically, and the *accounted traffic* must be byte-for-byte the
same multiset on both wires.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.message import Message, MessageCategory
from repro.net.network import SimTransport
from repro.net.network_config import NetworkConfig
from repro.net.tcp import TcpTransport
from repro.net.transport import Transport, VIRTUAL_CLOCK, WALL_CLOCK
from repro.sim import Environment
from repro.sim.realtime import WallClockEnvironment
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG

CONFIG = NetworkConfig(bandwidth_bps=100e6, software_cost_s=1e-5)
NODES = [NodeId(0), NodeId(1), NodeId(2)]

BACKENDS = ["sim", "tcp"]


def make_transport(backend, config=CONFIG, injector=None):
    if backend == "sim":
        env = Environment()
        net = SimTransport(env, config, injector=injector)
    else:
        env = WallClockEnvironment(stall_timeout_s=15.0)
        net = TcpTransport(env, config, injector=injector)
    net.start(NODES)
    return env, net


def message(src=0, dst=1, category=MessageCategory.PAGE_DATA,
            size=4096, **kwargs):
    return Message(src=NodeId(src), dst=NodeId(dst), category=category,
                   size_bytes=size, **kwargs)


def lossy_injector():
    plan = FaultPlan(
        name="conformance-lossy",
        drop_probability=0.3,
        duplicate_probability=0.1,
        delay_jitter_s=0.0005,
    )
    return FaultInjector(plan, SeededRNG(7).derive("faults"))


def network_key(stats):
    """An order-independent, comparable digest of NetworkStats."""
    return (
        stats.total_bytes,
        stats.total_messages,
        stats.total_time,
        stats.total_attempts,
        sorted((c.value, b) for c, b in stats.by_category_bytes.items()),
        sorted((c.value, n) for c, n in stats.by_category_messages.items()),
        sorted(stats.by_attempts.items()),
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    yield request.param


class TestContract:
    def test_is_transport_subclass(self, backend):
        env, net = make_transport(backend)
        try:
            assert isinstance(net, Transport)
            assert net.clock == (WALL_CLOCK if backend == "tcp"
                                 else VIRTUAL_CLOCK)
        finally:
            net.close()

    def test_send_delivers_exactly_once(self, backend):
        env, net = make_transport(backend)
        try:
            delivered = []
            for index in range(8):
                msg = message(src=index % 3, dst=(index + 1) % 3)
                net.send(msg).add_callback(
                    lambda event: delivered.append(event.value)
                )
            env.run()
            assert len(delivered) == 8
            for msg in delivered:
                assert msg.attempts == 1
                assert msg.deliver_time >= msg.send_time
            assert net.stats.total_messages == 8
        finally:
            net.close()

    def test_local_messages_free_and_immediate(self, backend):
        env, net = make_transport(backend)
        try:
            fired = []
            local = message(src=1, dst=1, category=MessageCategory.CONTROL,
                            size=64)
            net.send(local).add_callback(lambda e: fired.append(e.value))
            assert net.charge(message(src=2, dst=2)) == 0.0
            env.run()
            # Local traffic delivers but never touches wire accounting.
            assert fired == [local]
            assert net.stats.total_messages == 0
            assert net.stats.total_bytes == 0
        finally:
            net.close()

    def test_charge_returns_modeled_transfer_time(self, backend):
        env, net = make_transport(backend)
        try:
            msg = message(size=1000)
            delay = net.charge(msg)
            assert delay == pytest.approx(CONFIG.transfer_time(1000))
            assert net.stats.total_bytes == 1000
            env.run()
        finally:
            net.close()

    def test_round_trip_is_a_pure_estimate(self, backend):
        env, net = make_transport(backend)
        try:
            request = message(category=MessageCategory.PAGE_REQUEST, size=52)
            estimate = net.round_trip(request, response_size=4096)
            assert estimate == pytest.approx(
                CONFIG.transfer_time(52) + CONFIG.transfer_time(4096)
            )
            # Estimation never touches the wire or the books.
            assert net.stats.total_messages == 0
            env.run()
        finally:
            net.close()

    def test_charge_group_unicast_fan_out(self, backend):
        env, net = make_transport(backend)
        try:
            template = message(src=0, dst=0,
                               category=MessageCategory.UPDATE_PUSH,
                               size=2048)
            total = net.charge_group(template, NODES)
            # Two remote destinations (src itself is filtered out).
            assert total == pytest.approx(2 * CONFIG.transfer_time(2048))
            assert net.stats.total_messages == 2
            env.run()
        finally:
            net.close()

    def test_charge_group_multicast_single_charge(self, backend):
        config = CONFIG.with_multicast()
        env, net = make_transport(backend, config=config)
        try:
            template = message(src=0, dst=0,
                               category=MessageCategory.UPDATE_PUSH,
                               size=2048)
            total = net.charge_group(template, NODES)
            assert total == pytest.approx(config.transfer_time(2048))
            assert net.stats.total_messages == 1
            env.run()
        finally:
            net.close()


class TestFaultSemantics:
    def test_each_send_still_delivers_exactly_once(self, backend):
        env, net = make_transport(backend, injector=lossy_injector())
        try:
            delivered = []
            for index in range(12):
                msg = message(src=index % 3, dst=(index + 1) % 3, size=512)
                net.send(msg).add_callback(
                    lambda event: delivered.append(event.value)
                )
            env.run()
            assert len(delivered) == 12
            injector = net.injector
            assert injector.stats.messages_dropped > 0  # the plan did fire
            # Fair loss + reliable transport: attempts = drops + 1 per
            # message, and dropped attempts are still accounted.
            attempts = sum(msg.attempts for msg in delivered)
            assert attempts == 12 + injector.stats.messages_dropped
        finally:
            net.close()

    def test_accounting_parity_between_backends(self):
        """The same send/charge sequence books the identical multiset
        of (category, src, dst, bytes, attempts) on both wires: fault
        draws are keyed by wire id and attempt, not by clock domain."""
        def drive(backend):
            env, net = make_transport(backend, injector=lossy_injector())
            try:
                for index in range(10):
                    net.send(message(src=index % 3, dst=(index + 1) % 3,
                                     size=256 + 64 * index))
                for index in range(5):
                    net.charge(message(src=index % 3, dst=(index + 2) % 3,
                                       category=MessageCategory.PAGE_REQUEST,
                                       size=52))
                env.run()
                return network_key(net.stats), net.injector.stats.snapshot()
            finally:
                net.close()

        sim_stats, sim_faults = drive("sim")
        tcp_stats, tcp_faults = drive("tcp")
        assert sim_stats == tcp_stats
        assert sim_faults == tcp_faults


class TestTcpSpecifics:
    def test_requires_wall_clock_environment(self):
        with pytest.raises(ConfigurationError):
            TcpTransport(Environment(), CONFIG)

    def test_every_accounted_frame_crossed_a_socket(self):
        env, net = make_transport("tcp")
        try:
            sent = []
            for index in range(6):
                msg = message(src=index % 3, dst=(index + 1) % 3,
                              size=512 + index)
                sent.append(msg)
                net.send(msg)
            env.run()
            crossed = sorted(net.delivered_log)
            expected = sorted(
                (m.category.value, m.src.value, m.dst.value, m.size_bytes)
                for m in sent
            )
            assert crossed == expected
        finally:
            net.close()

    def test_close_is_idempotent(self):
        env, net = make_transport("tcp")
        net.close()
        net.close()
