"""Tests for workload fault injection (abort_probability)."""

import pytest

from repro import check_serializability
from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError, TransactionAborted
from repro.workload import WorkloadParams, generate_workload, run_workload

FAULTY = WorkloadParams(num_objects=8, num_classes=3, num_roots=30,
                        pages_min=1, pages_max=3, max_depth=2,
                        abort_probability=0.2)


class TestParams:
    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            WorkloadParams(abort_probability=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadParams(abort_probability=-0.1)

    def test_zero_probability_injects_nothing(self):
        workload = generate_workload(
            WorkloadParams(num_roots=50, abort_probability=0.0), seed=1
        )
        assert not any(plan.injects_abort() for plan in workload.plans)

    def test_probability_one_dooms_every_plan(self):
        workload = generate_workload(
            WorkloadParams(num_roots=20, abort_probability=1.0), seed=1
        )
        assert all(plan.injects_abort() for plan in workload.plans)

    def test_injection_is_deterministic(self):
        a = generate_workload(FAULTY, seed=5)
        b = generate_workload(FAULTY, seed=5)
        assert [p.injects_abort() for p in a.plans] == \
            [p.injects_abort() for p in b.plans]


class TestExecutionUnderFaults:
    @pytest.mark.parametrize("protocol", ["cotec", "otec", "lotec", "rc"])
    def test_failed_count_matches_doomed_plans(self, protocol):
        workload = generate_workload(FAULTY, seed=5)
        doomed = sum(1 for plan in workload.plans if plan.injects_abort())
        assert doomed > 0
        cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol,
                                        seed=5))
        run = run_workload(cluster, workload)
        assert run.failed == doomed
        assert run.committed == len(workload.plans) - doomed

    def test_aborted_work_fully_rolled_back(self):
        workload = generate_workload(FAULTY, seed=5)
        cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec",
                                        seed=5))
        run_workload(cluster, workload)
        report = check_serializability(cluster)
        assert report.equivalent, report.state_mismatches[:3]

    def test_injected_reason_surfaces(self):
        workload = generate_workload(
            WorkloadParams(num_roots=5, abort_probability=1.0, max_depth=0),
            seed=2,
        )
        cluster = Cluster(ClusterConfig(num_nodes=2, protocol="lotec", seed=2))
        handles = [
            cluster.create(workload.class_of(i).schema)
            for i in range(workload.num_objects)
        ]
        ticket = cluster.submit(
            handles[workload.plans[0].obj_index],
            workload.plans[0].method_name,
            workload.plans[0], tuple(handles),
        )
        cluster.run()
        with pytest.raises(TransactionAborted, match="injected"):
            ticket.result()

    def test_shadow_recovery_under_faults(self):
        workload = generate_workload(FAULTY, seed=6)
        digests = []
        for recovery in ("undo", "shadow"):
            cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec",
                                            seed=6, recovery=recovery))
            run_workload(cluster, workload)
            assert check_serializability(cluster).equivalent
            digests.append(cluster.state_digest())
        assert digests[0] == digests[1]
