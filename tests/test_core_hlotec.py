"""Tests for the home-based LOTEC variant (§6 scope-consistency
design point)."""

import pytest

from repro import check_serializability
from repro.net.message import MessageCategory
from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError
from repro.workload import WorkloadParams, generate_workload, run_workload

from conftest import Ledger, make_cluster

SMALL = WorkloadParams(num_objects=8, num_classes=3, num_roots=20,
                       pages_min=2, pages_max=5, max_depth=2)


class TestConstruction:
    def test_requires_directory(self):
        from repro.core.hlotec import HomeBasedLOTEC
        from repro.net.network import Network, NetworkConfig
        from repro.net.sizes import SizeModel
        from repro.sim import Environment

        env = Environment()
        with pytest.raises(ConfigurationError, match="directory"):
            HomeBasedLOTEC(
                env=env,
                network=Network(env, NetworkConfig(bandwidth_bps=1e8,
                                                   software_cost_s=0)),
                sizes=SizeModel(), stores={},
            )

    def test_cluster_builds_it(self):
        cluster = make_cluster(protocol="hlotec")
        assert cluster.protocol.default.name == "hlotec"


class TestHomeDiscipline:
    def test_dirty_pages_written_back_to_home(self):
        cluster = make_cluster(protocol="hlotec", seed=2)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        entry = cluster.directory.entry(ledger.object_id)
        home = entry.home_node
        # Update from a node that is NOT the home.
        source = next(n for n in cluster.nodes if n != home)
        cluster.call(ledger, "bump_alpha", 5, node=source)
        alpha_page = next(iter(ledger.meta.layout.attribute_pages("alpha")))
        assert entry.page_owner(alpha_page) == home
        # The home's store holds the fresh value at the latest version.
        assert cluster.stores[home].read_slot(
            ledger.object_id, ("alpha", 0)
        ) == 5
        assert cluster.stores[home].page_version(
            ledger.object_id, alpha_page
        ) == entry.latest_version(alpha_page)
        assert cluster.network_stats.category_messages(
            MessageCategory.UPDATE_PUSH
        ) == 1

    def test_commit_at_home_is_free(self):
        cluster = make_cluster(protocol="hlotec", seed=2)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        home = cluster.directory.entry(ledger.object_id).home_node
        before = cluster.network_stats.category_messages(
            MessageCategory.UPDATE_PUSH
        )
        cluster.call(ledger, "bump_alpha", 1, node=home)
        after = cluster.network_stats.category_messages(
            MessageCategory.UPDATE_PUSH
        )
        assert after == before  # local write-back costs nothing

    def test_gathers_are_single_source_for_dirty_pages(self):
        cluster = make_cluster(protocol="hlotec", seed=2)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        home = cluster.directory.entry(ledger.object_id).home_node
        others = [n for n in cluster.nodes if n != home]
        # Two different nodes dirty two different attributes.
        cluster.call(ledger, "bump_alpha", 1, node=others[0])
        cluster.call(ledger, "log_entry", 15, 9, node=others[1])
        before = cluster.network_stats.category_messages(
            MessageCategory.PAGE_REQUEST
        )
        assert cluster.call(ledger, "sum_all", node=others[2]) == 10
        after = cluster.network_stats.category_messages(
            MessageCategory.PAGE_REQUEST
        )
        # All dirty pages live at the home; clean pages may still sit
        # with past readers, so allow at most two sources (vs three
        # updaters under plain LOTEC).
        assert after - before <= 2


class TestEndToEnd:
    def test_serializable_on_random_workload(self):
        workload = generate_workload(SMALL, seed=31)
        cluster = Cluster(ClusterConfig(num_nodes=4, protocol="hlotec",
                                        seed=31))
        run = run_workload(cluster, workload)
        assert run.failed == 0
        assert check_serializability(cluster).equivalent

    def test_costs_sit_between_lotec_and_rc(self):
        workload = generate_workload(SMALL, seed=32)
        data = {}
        for protocol in ("lotec", "hlotec", "rc"):
            cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol,
                                            seed=32))
            run_workload(cluster, workload)
            data[protocol] = cluster.network_stats.consistency_bytes()
        assert data["lotec"] <= data["hlotec"] <= data["rc"] * 1.2
