"""Histogram percentile estimates on the cases where naive bucket
walks lie: empty, single-sample, merged, and tail quantiles with too
few samples to fill the rank."""

import pytest

from repro.obs import Histogram
from repro.obs.metrics import percentile_from_counts


class TestEdgeCases:
    def test_empty_histogram_reports_zero(self):
        histogram = Histogram()
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == 0.0

    def test_single_sample_is_exact(self):
        # 3.7ms lands in the (1e-3, 1e-2] bucket; the naive answer
        # would be the bucket bound 1e-2.  The clamp into [min, max]
        # must collapse every percentile onto the sample itself.
        histogram = Histogram()
        histogram.observe(3.7e-3)
        for q in (0.0, 0.5, 0.99, 0.999):
            assert histogram.percentile(q) == pytest.approx(3.7e-3)

    def test_out_of_range_q_rejected(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)


class TestSmallCounts:
    def test_p999_of_few_samples_is_the_maximum(self):
        # Nearest-rank: with n < 1000 samples, rank(0.999) == n, so
        # p999 must be the true maximum — not a bucket bound above it.
        histogram = Histogram()
        for value in (1e-5, 2e-5, 3e-5, 4e-4, 8e-3, 0.042):
            histogram.observe(value)
        assert histogram.percentile(0.999) == pytest.approx(0.042)
        assert histogram.percentile(0.99) == pytest.approx(0.042)

    def test_median_picks_the_containing_bucket(self):
        histogram = Histogram()
        for _ in range(9):
            histogram.observe(5e-6)   # bucket bound 1e-5
        histogram.observe(5.0)        # bucket bound 10.0
        # Rank of p50 over 10 samples is 5 -> the 1e-5 bucket.
        assert histogram.percentile(0.5) == pytest.approx(1e-5)
        # The estimate never leaves the observed range.
        assert histogram.percentile(0.0) >= 5e-6

    def test_overflow_rank_reports_true_maximum(self):
        histogram = Histogram()
        histogram.observe(50.0)
        histogram.observe(7200.0)  # past every bound: overflow bucket
        assert histogram.counts[-1] == 1
        assert histogram.percentile(0.999) == pytest.approx(7200.0)


class TestMerged:
    def test_merge_then_percentile_matches_union(self):
        left, right, union = Histogram(), Histogram(), Histogram()
        left_values = [1e-6, 2e-4, 3e-3]
        right_values = [4e-3, 0.5, 12.0, 80.0]
        for value in left_values:
            left.observe(value)
            union.observe(value)
        for value in right_values:
            right.observe(value)
            union.observe(value)
        left.merge(right)
        for q in (0.5, 0.9, 0.99, 0.999):
            assert left.percentile(q) == union.percentile(q)
        assert left.count == union.count
        assert left.min == union.min and left.max == union.max

    def test_merge_requires_matching_buckets(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(buckets=(1.0, 2.0)))


class TestSharedKernel:
    def test_percentile_from_counts_zero_count(self):
        assert percentile_from_counts((1.0,), [0, 0], 0, 0.0, 0.0,
                                      0.5) == 0.0

    def test_percentile_from_counts_clamps_into_range(self):
        # One sample in the 1.0 bucket, but the observed min/max say
        # everything lived at 0.25: the clamp wins over the bound.
        assert percentile_from_counts(
            (1.0,), [1, 0], 1, 0.25, 0.25, 0.99
        ) == pytest.approx(0.25)
