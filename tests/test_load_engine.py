"""The open-loop load engine piece by piece: arrival processes,
scenario validation, locality of the object draws, and the per-shard
SLO tables computed from metric snapshots."""

import pytest

from repro.load import (
    LOAD_SCENARIOS,
    BurstyArrivals,
    LoadScenario,
    PoissonArrivals,
    build_load,
    run_load,
    shard_slo_series,
    snapshot_percentile,
)
from repro.obs import Histogram
from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRNG


def scenario_kwargs(**overrides):
    base = dict(
        name="t", clients=4, num_objects=32, num_classes=4,
        pages_min=1, pages_max=2, skew=1.0, locality=0.8,
        arrivals=PoissonArrivals(rate_tps=1000.0), num_roots=40,
    )
    base.update(overrides)
    return base


class TestArrivalProcesses:
    def test_poisson_offsets_are_monotone_and_complete(self):
        offsets = PoissonArrivals(rate_tps=500.0).offsets(
            200, SeededRNG(1).derive("load")
        )
        assert len(offsets) == 200
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        assert offsets[0] > 0.0

    def test_poisson_mean_rate_is_respected(self):
        rate = 1000.0
        offsets = PoissonArrivals(rate_tps=rate).offsets(
            5000, SeededRNG(2).derive("load")
        )
        observed = len(offsets) / offsets[-1]
        assert observed == pytest.approx(rate, rel=0.1)

    def test_bursty_offsets_are_monotone(self):
        offsets = BurstyArrivals(
            calm_rate_tps=100.0, burst_rate_tps=5000.0,
            mean_calm_s=0.05, mean_burst_s=0.01,
        ).offsets(500, SeededRNG(3).derive("load"))
        assert len(offsets) == 500
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_bursty_mean_rate_sits_between_the_phases(self):
        process = BurstyArrivals(
            calm_rate_tps=100.0, burst_rate_tps=5000.0,
            mean_calm_s=0.05, mean_burst_s=0.05,
        )
        offsets = process.offsets(5000, SeededRNG(4).derive("load"))
        observed = len(offsets) / offsets[-1]
        assert 100.0 < observed < 5000.0

    @pytest.mark.parametrize("make", [
        lambda: PoissonArrivals(rate_tps=0.0),
        lambda: PoissonArrivals(rate_tps=-1.0),
        lambda: BurstyArrivals(calm_rate_tps=0.0, burst_rate_tps=1.0,
                               mean_calm_s=0.1, mean_burst_s=0.1),
        lambda: BurstyArrivals(calm_rate_tps=1.0, burst_rate_tps=1.0,
                               mean_calm_s=0.0, mean_burst_s=0.1),
    ])
    def test_bad_processes_rejected(self, make):
        with pytest.raises(ConfigurationError):
            make()


class TestScenarioValidation:
    def test_known_scenarios_are_well_formed(self):
        for name, scenario in LOAD_SCENARIOS.items():
            assert scenario.name == name
            assert scenario.block_size >= 1

    @pytest.mark.parametrize("overrides", [
        dict(clients=0),
        dict(num_objects=3),     # fewer objects than clients
        dict(locality=1.5),
        dict(num_roots=0),
    ])
    def test_bad_scenarios_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            LoadScenario(**scenario_kwargs(**overrides))

    def test_scaled_touches_only_the_root_count(self):
        scenario = LOAD_SCENARIOS["zipf-hot"]
        half = scenario.scaled(0.5)
        assert half.num_roots == scenario.num_roots // 2
        assert (half.clients, half.skew, half.arrivals) == \
            (scenario.clients, scenario.skew, scenario.arrivals)
        assert scenario.scaled(0.0).num_roots == 1  # floor at one root

    def test_unknown_scenario_name_raises(self):
        with pytest.raises(KeyError, match="zipf-smoke"):
            build_load("no-such-scenario", seed=1)


class TestBuildLoad:
    def test_load_shape_matches_the_scenario(self):
        load = build_load("zipf-smoke", seed=7, scale=0.5)
        scenario = load.scenario
        assert scenario.num_roots == 80
        assert len(load.workload.plans) == scenario.num_roots
        assert len(load.workload.arrival_offsets) == scenario.num_roots
        assert len(load.clients) == scenario.num_roots
        assert all(0 <= c < scenario.clients for c in load.clients)
        assert load.num_objects == scenario.num_objects

    def test_roots_land_in_their_clients_block(self):
        # With locality 0.8 most roots must come from the submitting
        # client's own contiguous block.
        load = build_load("zipf-smoke", seed=7)
        scenario = load.scenario
        in_block = sum(
            1 for client, plan in zip(load.clients, load.workload.plans)
            if plan.obj_index in scenario.block_range(client)
        )
        fraction = in_block / len(load.clients)
        assert fraction == pytest.approx(scenario.locality, abs=0.1)

    def test_plans_never_revisit_an_ancestor(self):
        load = build_load("zipf-smoke", seed=11)

        def walk(node, path):
            assert node.obj_index not in path
            for child in node.children:
                walk(child, path | {node.obj_index})

        for plan in load.workload.plans:
            walk(plan, frozenset())


class TestSloTables:
    def test_snapshot_percentile_matches_histogram(self):
        histogram = Histogram()
        rng = SeededRNG(5).derive("load")
        for _ in range(500):
            histogram.observe(rng.uniform(1e-6, 2.0))
        snapshot = histogram.snapshot()
        for q in (0.5, 0.9, 0.99, 0.999):
            assert snapshot_percentile(snapshot, q) == \
                histogram.percentile(q)

    def test_snapshot_percentile_empty(self):
        assert snapshot_percentile({"count": 0, "total": 0.0,
                                    "mean": 0.0}, 0.99) == 0.0

    def test_shard_tables_from_a_real_run(self):
        load = build_load("zipf-smoke", seed=7, scale=0.25)
        cluster = Cluster(ClusterConfig(
            num_nodes=load.scenario.clients, seed=7, protocol="lotec",
            trace=True,
        ))
        run_load(cluster, load)
        series = shard_slo_series(cluster.metrics.snapshot())
        shards = list(series["requests"])
        assert shards, "a remote-heavy run must hit at least one shard"
        assert shards == sorted(shards)
        for shard in shards:
            assert series["requests"][shard] > 0
            assert 0.0 <= series["p50_us"][shard] \
                <= series["p99_us"][shard] \
                <= series["p999_us"][shard]
            assert series["queue_high_water"][shard] >= 0.0

    def test_shard_tables_ignore_unlabeled_series(self):
        snapshot = {
            "histograms": {
                "gdo.request_latency_s": {
                    "total": {"count": 3, "total": 0.3, "mean": 0.1,
                              "min": 0.1, "max": 0.1,
                              "buckets": {"0.1": 3}, "overflow": 0},
                    "shard=2": {"count": 1, "total": 0.01, "mean": 0.01,
                                "min": 0.01, "max": 0.01,
                                "buckets": {"0.01": 1}, "overflow": 0},
                },
            },
            "gauges": {},
        }
        series = shard_slo_series(snapshot)
        assert list(series["requests"]) == [2]
        assert series["p99_us"][2] == pytest.approx(0.01 * 1e6)
        assert series["queue_high_water"][2] == 0.0
