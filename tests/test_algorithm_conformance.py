"""Algorithm conformance: the message choreography of §4.1.

Each test scripts a small scenario and asserts the exact sequence /
counts of GDO and data messages the paper's Algorithms 4.1-4.5
prescribe — not just final state, but *how* the protocol got there.
"""

import pytest

from repro.net.message import MessageCategory as MC

from conftest import Counter, Ledger, Orchestrator, make_cluster


def category_counts(cluster):
    stats = cluster.network_stats
    return {
        category: stats.category_messages(category)
        for category in MC
        if stats.category_messages(category)
    }


class TestAlgorithm41LocalLockAcquisition:
    """'IF the requesting transaction belongs to the current holder's
    family ... Grant' — intra-family operations send nothing."""

    def test_family_reacquisition_sends_nothing(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        boss = cluster.create(Orchestrator, node=cluster.nodes[0])
        # Root at node 3: boss + counter both acquired globally once;
        # the second and third invocations on counter are local.
        cluster.call(boss, "fanout", [counter], 1, node=cluster.nodes[3])
        assert cluster.lock_stats.local_acquisitions >= 1
        # Exactly one global acquisition per object (boss, counter):
        # 2 requests, 2 grants — no request for re-acquisitions.
        counts = category_counts(cluster)
        assert counts[MC.LOCK_REQUEST] == 2
        assert counts[MC.LOCK_GRANT] == 2


class TestAlgorithm42GlobalLockAcquisition:
    """Free lock: 'Set the lock to held ... Send the list pointed to by
    HolderPtr and the object's page map to the requesting site.'"""

    def test_grant_pairs_with_request(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        cluster.call(counter, "get", node=cluster.nodes[1])
        counts = category_counts(cluster)
        assert counts[MC.LOCK_REQUEST] == 1
        assert counts[MC.LOCK_GRANT] == 1

    def test_grant_size_includes_page_map(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])  # 4 pages
        cluster.call(ledger, "read_gamma", node=cluster.nodes[1])
        sizes = cluster.config.sizes
        grant_bytes = cluster.network_stats.category_bytes(MC.LOCK_GRANT)
        assert grant_bytes == sizes.lock_grant(
            holder_entries=1,
            page_map_entries=ledger.meta.page_count,
        )

    def test_concurrent_read_granted_without_release(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        first = cluster.submit(counter, "get", node=cluster.nodes[1])
        second = cluster.submit(counter, "get", node=cluster.nodes[2])
        cluster.run()
        first.result(), second.result()
        # Two independent request/grant pairs; zero releases needed
        # before the second reader was admitted (reader sharing).
        assert cluster.lock_stats.waits == 0


class TestAlgorithm43LocalLockRelease:
    """Pre-commit: 'Release lock to parent transaction for retaining' —
    free; root commit: 'Forward request to GlobalLockRelease'."""

    def test_one_release_message_per_home_node(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        # Objects O0..O2 have home nodes 0..2; a root touching all
        # three releases with one message per distinct home.
        counters = [cluster.create(Counter) for _ in range(3)]
        boss = cluster.create(Orchestrator)  # O3, home node 3
        cluster.call(boss, "fanout", counters, 1, node=cluster.nodes[3])
        counts = category_counts(cluster)
        # Homes 0,1,2 are remote from node 3; home 3 is local (free).
        assert counts[MC.LOCK_RELEASE] == 3

    def test_sub_abort_with_retaining_ancestor_sends_no_release(self):
        """A child abort whose lock an ancestor retains stays local:
        'the locks are again retained by the ancestor transaction'.
        The run with the abort must release exactly as often as the
        identical run without it."""
        from repro import Attr, method, shared_class

        @shared_class
        class Retry:
            n = Attr(size=8, default=0)

            @method
            def run(self, ctx, target, fail_second):
                from repro import TransactionAborted

                yield ctx.invoke(target, "add", 1)  # boss retains after
                try:
                    if fail_second:
                        yield ctx.invoke(target, "fail_after_write", 9)
                    else:
                        yield ctx.invoke(target, "add", 0)
                except TransactionAborted:
                    pass
                self.n += 1

        def releases(fail_second):
            cluster = make_cluster(protocol="lotec", seed=1)
            counter = cluster.create(Counter, node=cluster.nodes[0])
            boss = cluster.create(Retry, node=cluster.nodes[0])
            cluster.call(boss, "run", counter, fail_second,
                         node=cluster.nodes[2])
            return cluster.network_stats.category_messages(MC.LOCK_RELEASE)

        assert releases(True) == releases(False)


class TestAlgorithm44GlobalLockRelease:
    """'Unlink the next transaction list ... Send the list pointed to
    by HolderPtr and the page map to the new holder's site.'"""

    def test_waiter_receives_grant_from_release(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        first = cluster.submit(counter, "add", 1, node=cluster.nodes[1])
        second = cluster.submit(counter, "add", 1, node=cluster.nodes[2])
        cluster.run()
        first.result(), second.result()
        counts = category_counts(cluster)
        # Two requests; two grants (one immediate, one at release).
        assert counts[MC.LOCK_REQUEST] == 2
        assert counts[MC.LOCK_GRANT] == 2
        assert cluster.lock_stats.waits == 1

    def test_release_carries_dirty_page_entries(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[1])
        sizes = cluster.config.sizes
        # alpha dirties exactly one page -> one piggybacked entry.
        assert cluster.network_stats.category_bytes(MC.LOCK_RELEASE) == \
            sizes.lock_release(1)


class TestAlgorithm45TransferOfUpdatedPages:
    """'FOREACH site from which page(s) must be obtained DO: copy the
    set of pages provided in the site's list.'"""

    def test_one_round_trip_per_source_site(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[1])
        cluster.call(ledger, "log_entry", 15, 2, node=cluster.nodes[2])
        before_req = cluster.network_stats.category_messages(MC.PAGE_REQUEST)
        before_data = cluster.network_stats.category_messages(MC.PAGE_DATA)
        cluster.call(ledger, "sum_all", node=cluster.nodes[3])
        req = cluster.network_stats.category_messages(MC.PAGE_REQUEST) \
            - before_req
        data = cluster.network_stats.category_messages(MC.PAGE_DATA) \
            - before_data
        assert req == data  # strict request/response pairing
        assert req >= 2     # at least two distinct source sites

    def test_no_transfer_when_everything_is_local(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        cluster.call(counter, "add", 1, node=cluster.nodes[0])
        cluster.call(counter, "add", 1, node=cluster.nodes[0])
        counts = category_counts(cluster)
        assert MC.PAGE_REQUEST not in counts
        assert MC.PAGE_DATA not in counts


class TestRetentionChoreography:
    """Trace-level conformance for rule 1a and Algorithm 4.3: who may
    enter under a retained lock, and where a sub-transaction's locks go
    on pre-commit vs abort.  Asserted against the sanitized trace
    stream (:mod:`repro.obs`) rather than message counts, so the tests
    pin the *order* of retention events, not just their totals."""

    @staticmethod
    def _events(cluster):
        from repro.check.events import event_dicts

        return event_dicts(cluster.trace_events)

    @staticmethod
    def _grants_on(events, oname):
        """(index, family-root) of every admission to ``oname``."""
        out = []
        for index, event in enumerate(events):
            if event.get("category") != "lock":
                continue
            args = event.get("args", {})
            if args.get("object") != oname:
                continue
            name = event.get("name", "")
            granted = (
                name.startswith("lock.grant ")
                or (name.startswith("lock.wait ") and args.get("granted"))
                or (name.startswith("lock.prefetch ")
                    and args.get("outcome") == "granted")
            )
            if granted:
                serial, _, root = args["txn"][1:].partition("/r")
                out.append((index, int(root or serial)))
        return out

    def test_retained_lock_admits_other_family_only_after_release(self):
        """Rule 1a: with the boss's family retaining the counter lock
        between its two sub-invocations, a concurrent family's write
        must not be admitted until the retainer's root releases."""
        cluster = make_cluster(protocol="lotec", seed=1, trace=True)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        boss = cluster.create(Orchestrator, node=cluster.nodes[0])
        a = cluster.submit(boss, "fanout", [counter], 1,
                           node=cluster.nodes[1])
        b = cluster.submit(counter, "add", 10, node=cluster.nodes[2])
        cluster.run()
        a.result(), b.result()
        assert cluster.read_attr(counter, "value") == 11
        assert cluster.lock_stats.waits >= 1
        events = self._events(cluster)
        grants = self._grants_on(events, "O0")
        roots = {root for _, root in grants}
        assert len(roots) == 2  # both families reached the counter
        winner = grants[0][1]
        release_index = next(
            index for index, event in enumerate(events)
            if event.get("name") == "lock.release"
            and event["args"].get("root") == winner
            and "O0" in event["args"].get("objects", ())
        )
        # Every admission of the losing family sits after the winning
        # family's global release — no interleaving under retention.
        for index, root in grants:
            if root != winner:
                assert index > release_index

    def test_precommit_moves_locks_to_parent_before_any_release(self):
        """Algorithm 4.3: 'Release lock to parent transaction for
        retaining' — the sub's pre-commit shows up as lock.inherit to
        the root, and the only global release of the counter is the
        root's own commit release, after the inherit."""
        cluster = make_cluster(protocol="lotec", seed=1, trace=True)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        boss = cluster.create(Orchestrator, node=cluster.nodes[0])
        cluster.call(boss, "fanout", [counter], 1, node=cluster.nodes[1])
        events = self._events(cluster)
        inherits = [
            (index, event["args"]) for index, event in enumerate(events)
            if event.get("name") == "lock.inherit"
            and "O0" in event["args"].get("objects", ())
        ]
        assert inherits, "sub pre-commit traced no inheritance"
        assert all("/r" in args["txn"] and "/r" not in args["parent"]
                   for _, args in inherits)
        releases = [
            (index, event["args"]) for index, event in enumerate(events)
            if event.get("name") == "lock.release"
            and "O0" in event["args"].get("objects", ())
        ]
        assert len(releases) == 1
        assert releases[0][1]["cause"] == "commit"
        assert all(index < releases[0][0] for index, _ in inherits)

    def test_sub_abort_reverts_to_retainer_without_release(self):
        """Algorithm 4.3, last case: an aborting sub whose lock an
        ancestor retains hands nothing to its parent (no inherit) and
        releases nothing — the retention silently survives until the
        root's single commit release."""
        from repro import Attr, TransactionAborted, method, shared_class

        @shared_class
        class Retry:
            n = Attr(size=8, default=0)

            @method
            def run(self, ctx, target):
                yield ctx.invoke(target, "add", 1)  # boss retains after
                try:
                    yield ctx.invoke(target, "fail_after_write", 9)
                except TransactionAborted:
                    pass
                self.n += 1

        cluster = make_cluster(protocol="lotec", seed=1, trace=True)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        boss = cluster.create(Retry, node=cluster.nodes[0])
        cluster.call(boss, "run", counter, node=cluster.nodes[2])
        assert cluster.read_attr(counter, "value") == 1  # abort undone
        events = self._events(cluster)
        aborted = [
            event["args"]["txn"] for event in events
            if event.get("category") == "txn"
            and event.get("phase") == "X"
            and event["args"].get("outcome") == "abort"
        ]
        assert len(aborted) == 1 and "/r" in aborted[0]
        # The aborting sub inherits nothing to its parent ...
        assert not any(
            event.get("name") == "lock.inherit"
            and event["args"]["txn"] == aborted[0]
            for event in events
        )
        # ... and the counter sees exactly one global release: the
        # root's commit (no sub-abort release while retained).
        causes = [
            event["args"]["cause"] for event in events
            if event.get("name") == "lock.release"
            and "O0" in event["args"].get("objects", ())
        ]
        assert causes == ["commit"]
