"""Integration tests: transaction execution semantics on a live cluster."""

import pytest

from repro import (
    Attr,
    ConfigurationError,
    ProtocolError,
    RecursiveInvocationError,
    TransactionAborted,
    method,
    shared_class,
)
from repro.util.ids import NodeId

from conftest import Counter, Ledger, Orchestrator, make_cluster


class TestBasics:
    def test_call_returns_result(self, cluster):
        counter = cluster.create(Counter)
        cluster.call(counter, "add", 5)
        assert cluster.call(counter, "get") == 5

    def test_initial_values(self, cluster):
        counter = cluster.create(Counter, initial={"value": 42})
        assert cluster.call(counter, "get") == 42

    def test_unknown_initial_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.create(Counter, initial={"ghost": 1})

    def test_unknown_method_rejected_at_submit(self, cluster):
        counter = cluster.create(Counter)
        with pytest.raises(KeyError):
            cluster.submit(counter, "nonexistent")

    def test_explicit_node_placement(self, cluster):
        counter = cluster.create(Counter, node=cluster.nodes[2])
        ticket = cluster.submit(counter, "add", 1, node=cluster.nodes[1])
        cluster.run()
        assert ticket.result() == 1
        assert ticket.node == cluster.nodes[1]

    def test_unknown_node_rejected(self, cluster):
        counter = cluster.create(Counter)
        with pytest.raises(ConfigurationError):
            cluster.submit(counter, "add", 1, node=NodeId(99))
        with pytest.raises(ConfigurationError):
            cluster.create(Counter, node=NodeId(99))

    def test_ticket_result_before_run_rejected(self, cluster):
        counter = cluster.create(Counter)
        ticket = cluster.submit(counter, "add", 1)
        with pytest.raises(ConfigurationError, match="not finished"):
            ticket.result()

    def test_delayed_submission(self, cluster):
        counter = cluster.create(Counter)
        cluster.submit(counter, "add", 1, delay=0.5)
        cluster.run()
        assert cluster.env.now >= 0.5

    def test_config_and_overrides_mutually_exclusive(self):
        from repro import Cluster, ClusterConfig

        with pytest.raises(ConfigurationError):
            Cluster(ClusterConfig(), num_nodes=2)


class TestNestedInvocation:
    def test_fanout_aggregates_children(self, cluster):
        counters = [cluster.create(Counter) for _ in range(3)]
        boss = cluster.create(Orchestrator)
        total = cluster.call(boss, "fanout", counters, 10)
        # per target: add returns the new value (10) and get returns 10.
        assert total == 60
        for counter in counters:
            assert cluster.read_attr(counter, "value") == 10

    def test_nested_stats_counted(self, cluster):
        counters = [cluster.create(Counter) for _ in range(2)]
        boss = cluster.create(Orchestrator)
        cluster.call(boss, "fanout", counters, 1)
        assert cluster.txn_stats.commits == 1
        assert cluster.txn_stats.sub_commits == 4  # 2 adds + 2 gets

    def test_plain_method_cannot_invoke(self, cluster):
        @shared_class
        class Bad:
            x = Attr(size=8)

            @method
            def leaf(self, ctx, other):
                ctx.invoke(other, "get")  # not a generator: forbidden

        bad = cluster.create(Bad)
        counter = cluster.create(Counter)
        with pytest.raises(ConfigurationError, match="generator"):
            cluster.call(bad, "leaf", counter)

    def test_yielding_garbage_rejected(self, cluster):
        @shared_class
        class Weird:
            x = Attr(size=8)

            @method
            def m(self, ctx):
                yield 42

        weird = cluster.create(Weird)
        with pytest.raises(ConfigurationError, match="may only yield"):
            cluster.call(weird, "m")

    def test_invoke_type_checked(self, cluster):
        @shared_class
        class Inv:
            x = Attr(size=8)

            @method
            def m(self, ctx):
                yield ctx.invoke("not-a-handle", "get")

        inv = cluster.create(Inv)
        with pytest.raises(TypeError):
            cluster.call(inv, "m")


class TestAborts:
    def test_user_abort_rolls_back(self, cluster):
        counter = cluster.create(Counter, initial={"value": 7})
        with pytest.raises(TransactionAborted):
            cluster.call(counter, "fail_after_write", 100)
        assert cluster.read_attr(counter, "value") == 7
        assert cluster.txn_stats.aborts_user == 1
        assert cluster.txn_stats.commits == 0

    def test_child_abort_rolls_back_child_only_when_caught(self, cluster):
        source = cluster.create(Counter, initial={"value": 1})
        sink = cluster.create(Counter, initial={"value": 0})
        boss = cluster.create(Orchestrator)
        cluster.call(boss, "safe_transfer", source, sink, 50)
        # child aborted: source unchanged; compensation applied to sink.
        assert cluster.read_attr(source, "value") == 1
        assert cluster.read_attr(sink, "value") == 50
        assert cluster.read_attr(boss, "runs") == 1
        assert cluster.txn_stats.sub_aborts == 1
        assert cluster.txn_stats.commits == 1

    def test_uncaught_child_abort_aborts_family(self, cluster):
        @shared_class
        class Driver:
            n = Attr(size=8, default=0)

            @method
            def drive(self, ctx, target):
                self.n += 1
                yield ctx.invoke(target, "fail_after_write", 5)

        target = cluster.create(Counter, initial={"value": 3})
        driver = cluster.create(Driver)
        with pytest.raises(TransactionAborted):
            cluster.call(driver, "drive", target)
        assert cluster.read_attr(driver, "n") == 0
        assert cluster.read_attr(target, "value") == 3

    def test_python_exception_aborts_and_propagates(self, cluster):
        @shared_class
        class Crasher:
            x = Attr(size=8, default=0)

            @method
            def crash(self, ctx):
                self.x = 1
                raise ValueError("boom")

        crasher = cluster.create(Crasher)
        with pytest.raises(ValueError, match="boom"):
            cluster.call(crasher, "crash")
        assert cluster.read_attr(crasher, "x") == 0

    def test_child_python_exception_catchable_by_parent(self, cluster):
        @shared_class
        class Child:
            x = Attr(size=8, default=0)

            @method
            def bad(self, ctx):
                self.x = 9
                raise KeyError("inner")

        @shared_class
        class Parent:
            handled = Attr(size=8, default=0)

            @method
            def run(self, ctx, child):
                try:
                    yield ctx.invoke(child, "bad")
                except KeyError:
                    self.handled = 1
                return self.handled

        child = cluster.create(Child)
        parent = cluster.create(Parent)
        assert cluster.call(parent, "run", child) == 1
        assert cluster.read_attr(child, "x") == 0
        assert cluster.read_attr(parent, "handled") == 1

    def test_abort_releases_locks_for_others(self, cluster):
        counter = cluster.create(Counter, initial={"value": 0})
        with pytest.raises(TransactionAborted):
            cluster.call(counter, "fail_after_write", 1)
        cluster.call(counter, "add", 2)  # must not hang on a stale lock
        assert cluster.read_attr(counter, "value") == 2


class TestRecursionPreclusion:
    def test_direct_self_reinvocation_rejected(self, cluster):
        @shared_class
        class Selfish:
            x = Attr(size=8, default=0)

            @method
            def outer(self, ctx, me):
                self.x += 1
                yield ctx.invoke(me, "inner")

            @method
            def inner(self, ctx):
                self.x += 1

        selfish = cluster.create(Selfish)
        with pytest.raises(RecursiveInvocationError):
            cluster.call(selfish, "outer", selfish)
        assert cluster.read_attr(selfish, "x") == 0
        assert cluster.txn_stats.aborts_recursive == 1

    def test_mutual_recursion_rejected(self, cluster):
        @shared_class
        class PingPong:
            x = Attr(size=8, default=0)

            @method
            def ping(self, ctx, other, me):
                self.x += 1
                yield ctx.invoke(other, "pong", me, other)

            @method
            def pong(self, ctx, other, me):
                self.x += 1
                yield ctx.invoke(other, "ping", me, other)

        a = cluster.create(PingPong)
        b = cluster.create(PingPong)
        with pytest.raises(RecursiveInvocationError):
            cluster.call(a, "ping", b, a)
        assert cluster.read_attr(a, "x") == 0
        assert cluster.read_attr(b, "x") == 0

    def test_read_read_recursion_allowed_by_flag(self):
        cluster = make_cluster(allow_recursive_reads=True)

        @shared_class
        class Reader:
            x = Attr(size=8, default=5)

            @method
            def outer(self, ctx, me):
                base = self.x
                inner = yield ctx.invoke(me, "inner")
                return base + inner

            @method
            def inner(self, ctx):
                return self.x

        reader = cluster.create(Reader)
        assert cluster.call(reader, "outer", reader) == 10

    def test_sibling_reuse_is_not_recursion(self, cluster):
        """Two siblings touching the same object is legal: retained by
        the common ancestor between them (rule on retained locks)."""

        @shared_class
        class Boss:
            n = Attr(size=8, default=0)

            @method
            def twice(self, ctx, target):
                yield ctx.invoke(target, "add", 1)
                yield ctx.invoke(target, "add", 2)
                self.n += 1

        boss = cluster.create(Boss)
        counter = cluster.create(Counter)
        cluster.call(boss, "twice", counter)
        assert cluster.read_attr(counter, "value") == 3


class TestWriteUnderReadLock:
    def test_lying_annotation_refused(self, cluster):
        @shared_class
        class Liar:
            x = Attr(size=8, default=0)

            @method(reads=["x"], writes=[])
            def sneaky(self, ctx):
                self.x = 99

        liar = cluster.create(Liar)
        with pytest.raises(ProtocolError, match="READ"):
            cluster.call(liar, "sneaky")


class TestSchedulerPolicies:
    @pytest.mark.parametrize("policy", ["round_robin", "random", "least_loaded"])
    def test_policies_spread_and_complete(self, policy):
        cluster = make_cluster(scheduler=policy, seed=3)
        counter = cluster.create(Counter)
        for _ in range(8):
            cluster.submit(counter, "add", 1)
        cluster.run()
        assert cluster.read_attr(counter, "value") == 8
