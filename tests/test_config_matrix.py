"""Cross-feature configuration matrix: every extension composed with
every protocol must stay correct.

The individual features have their own suites; this module guards the
*combinations* (shadow recovery under RC, prefetch with per-class
protocols, object grain with multicast, ...), where integration bugs
hide.
"""

import pytest

from repro import check_conflict_serializability, check_serializability
from repro.runtime import Cluster, ClusterConfig
from repro.workload import WorkloadParams, generate_workload, run_workload

MATRIX_PARAMS = WorkloadParams(
    num_objects=8, num_classes=3, num_roots=18,
    pages_min=1, pages_max=4, max_depth=2, abort_probability=0.1,
)


def run_config(**overrides):
    seed = overrides.pop("seed", 77)
    overrides.setdefault("num_nodes", 4)
    workload = generate_workload(MATRIX_PARAMS, seed=seed)
    config = ClusterConfig(seed=seed, **overrides)
    cluster = Cluster(config)
    run = run_workload(cluster, workload)
    assert run.committed + run.failed == MATRIX_PARAMS.num_roots
    replay = check_serializability(cluster)
    assert replay.equivalent, replay.state_mismatches[:3]
    graph = check_conflict_serializability(cluster)
    assert graph.equivalent, graph.state_mismatches[:3]
    return cluster


class TestProtocolFeatureMatrix:
    @pytest.mark.parametrize("protocol",
                             ["cotec", "otec", "lotec", "hlotec", "rc"])
    def test_shadow_recovery(self, protocol):
        run_config(protocol=protocol, recovery="shadow")

    @pytest.mark.parametrize("protocol",
                             ["cotec", "otec", "lotec", "hlotec", "rc"])
    def test_object_grain(self, protocol):
        run_config(protocol=protocol, transfer_grain="object")

    @pytest.mark.parametrize("protocol", ["lotec", "hlotec", "rc"])
    def test_prefetch_pages(self, protocol):
        run_config(protocol=protocol, prefetch="locks+pages")

    @pytest.mark.parametrize("protocol", ["cotec", "otec"])
    def test_prefetch_locks_with_exhaustive_protocols(self, protocol):
        run_config(protocol=protocol, prefetch="locks")

    def test_everything_at_once(self):
        cluster = run_config(
            protocol="lotec",
            recovery="shadow",
            transfer_grain="object",
            prefetch="locks+pages",
            class_protocols=(("Synth0", "rc"), ("Synth1", "hlotec")),
            allow_recursive_reads=True,
            gdo_cache_enabled=True,
        )
        assert cluster.protocol.name == "hlotec+lotec+rc"

    def test_no_cache_no_prefetch_single_node(self):
        run_config(protocol="lotec", gdo_cache_enabled=False, num_nodes=1)

    def test_multicast_rc_with_shadow(self):
        config = ClusterConfig(num_nodes=4, seed=78, protocol="rc",
                               recovery="shadow")
        config = config.with_network(config.network.with_multicast(True))
        workload = generate_workload(MATRIX_PARAMS, seed=78)
        cluster = Cluster(config)
        run = run_workload(cluster, workload)
        assert run.committed > 0
        assert check_serializability(cluster).equivalent
