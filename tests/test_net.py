"""Unit tests for the network substrate: messages, sizes, delivery,
accounting, and the paper's presets."""

import pytest

from repro.net import (
    ETHERNET_10M,
    FAST_ETHERNET_100M,
    GIGABIT_1G,
    Message,
    MessageCategory,
    Network,
    NetworkConfig,
    NetworkStats,
    SOFTWARE_COSTS,
    SizeModel,
    preset_network,
)
from repro.sim import Environment
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId, ObjectId


N0, N1, N2 = NodeId(0), NodeId(1), NodeId(2)


def msg(src=N0, dst=N1, category=MessageCategory.PAGE_DATA, size=1000,
        object_id=None):
    return Message(src=src, dst=dst, category=category, size_bytes=size,
                   object_id=object_id)


class TestMessage:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            msg(size=-1)

    def test_local_detection(self):
        assert msg(src=N0, dst=N0).is_local
        assert not msg(src=N0, dst=N1).is_local

    def test_data_categories(self):
        assert MessageCategory.PAGE_DATA.is_consistency_data
        assert MessageCategory.UPDATE_PUSH.is_consistency_data
        assert not MessageCategory.LOCK_REQUEST.is_consistency_data
        assert not MessageCategory.PAGE_MAP.is_consistency_data


class TestSizeModel:
    def test_defaults_positive(self):
        sizes = SizeModel()
        assert sizes.lock_request() > 0
        assert sizes.control() > 0

    def test_grant_scales_with_entries(self):
        sizes = SizeModel()
        small = sizes.lock_grant(holder_entries=1, page_map_entries=1)
        big = sizes.lock_grant(holder_entries=10, page_map_entries=20)
        assert big > small
        assert big == sizes.header_bytes + 10 * sizes.holder_entry_bytes \
            + 20 * sizes.page_map_entry_bytes

    def test_page_data_dominated_by_pages(self):
        sizes = SizeModel(page_bytes=4096)
        assert sizes.page_data(3) == sizes.header_bytes + 3 * 4096

    def test_release_piggybacks_dirty_entries(self):
        sizes = SizeModel()
        assert sizes.lock_release(5) - sizes.lock_release(0) == \
            5 * sizes.page_map_entry_bytes

    def test_object_data_uses_raw_bytes(self):
        sizes = SizeModel()
        assert sizes.object_data(100) == sizes.header_bytes + 100

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            SizeModel(header_bytes=-1)


class TestNetworkConfig:
    def test_transfer_time_components(self):
        config = NetworkConfig(bandwidth_bps=1e6, software_cost_s=1e-3,
                               propagation_s=1e-6)
        # 1000 bytes at 1 Mbps = 8 ms serialization.
        assert config.transfer_time(1000) == pytest.approx(1e-3 + 8e-3 + 1e-6)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(bandwidth_bps=0, software_cost_s=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(bandwidth_bps=1e6, software_cost_s=-1)

    def test_with_software_cost(self):
        faster = ETHERNET_10M.with_software_cost(1e-6)
        assert faster.software_cost_s == 1e-6
        assert faster.bandwidth_bps == ETHERNET_10M.bandwidth_bps

    def test_presets_match_paper_bitrates(self):
        assert ETHERNET_10M.bandwidth_bps == 10e6
        assert FAST_ETHERNET_100M.bandwidth_bps == 100e6
        assert GIGABIT_1G.bandwidth_bps == 1e9

    def test_software_cost_sweep_values(self):
        assert SOFTWARE_COSTS == {
            "100us": 100e-6, "20us": 20e-6, "5us": 5e-6,
            "1us": 1e-6, "500ns": 500e-9,
        }

    def test_preset_network_lookup(self):
        config = preset_network("1Gbps", "500ns")
        assert config.bandwidth_bps == 1e9
        assert config.software_cost_s == 500e-9

    def test_preset_network_unknown(self):
        with pytest.raises(KeyError):
            preset_network("2Mbps")
        with pytest.raises(KeyError):
            preset_network("1Gbps", "7us")


class TestNetworkDelivery:
    def setup_method(self):
        self.env = Environment()
        self.net = Network(
            self.env,
            NetworkConfig(bandwidth_bps=8e6, software_cost_s=1e-3,
                          propagation_s=0.0),
        )

    def test_delivery_takes_transfer_time(self):
        message = msg(size=1000)  # 1 ms serialization at 8 Mbps
        done = self.net.send(message)
        self.env.run()
        assert done.value is message
        assert message.deliver_time == pytest.approx(2e-3)

    def test_local_message_is_free_and_instant(self):
        message = msg(src=N0, dst=N0)
        done = self.net.send(message)
        assert done.triggered
        assert self.net.stats.total_messages == 0

    def test_stats_recorded_on_send(self):
        self.net.send(msg(size=500))
        assert self.net.stats.total_messages == 1
        assert self.net.stats.total_bytes == 500

    def test_charge_returns_time_without_event(self):
        before = self.env.peek()
        elapsed = self.net.charge(msg(size=1000))
        assert elapsed == pytest.approx(2e-3)
        assert self.env.peek() == before  # nothing scheduled
        assert self.net.stats.total_messages == 1

    def test_charge_local_is_free(self):
        assert self.net.charge(msg(src=N1, dst=N1)) == 0.0
        assert self.net.stats.total_messages == 0


class TestMulticast:
    def setup_method(self):
        self.env = Environment()

    def _net(self, multicast):
        return Network(
            self.env,
            NetworkConfig(bandwidth_bps=8e6, software_cost_s=1e-3,
                          propagation_s=0.0, multicast=multicast),
        )

    def template(self):
        return msg(src=N0, dst=N1, size=1000)

    def test_unicast_group_charges_per_destination(self):
        net = self._net(multicast=False)
        delay = net.charge_group(self.template(), [N1, N2])
        assert net.stats.total_messages == 2
        assert delay == pytest.approx(2 * (1e-3 + 1e-3))

    def test_multicast_group_charges_once(self):
        net = self._net(multicast=True)
        delay = net.charge_group(self.template(), [N1, N2])
        assert net.stats.total_messages == 1
        assert delay == pytest.approx(1e-3 + 1e-3)

    def test_group_skips_sender(self):
        net = self._net(multicast=False)
        assert net.charge_group(self.template(), [N0]) == 0.0
        assert net.stats.total_messages == 0

    def test_with_multicast_copy(self):
        config = NetworkConfig(bandwidth_bps=1e6, software_cost_s=0)
        assert not config.multicast
        enabled = config.with_multicast(True)
        assert enabled.multicast
        assert enabled.with_software_cost(1e-6).multicast


class TestNetworkStats:
    def test_per_category_accounting(self):
        stats = NetworkStats()
        stats.record(msg(category=MessageCategory.LOCK_REQUEST, size=50), 0.1)
        stats.record(msg(category=MessageCategory.PAGE_DATA, size=4000), 0.2)
        assert stats.category_bytes(MessageCategory.LOCK_REQUEST) == 50
        assert stats.category_messages(MessageCategory.PAGE_DATA) == 1
        assert stats.consistency_bytes() == 4000
        assert stats.total_time == pytest.approx(0.3)

    def test_per_object_accounting(self):
        stats = NetworkStats()
        oid = ObjectId(7)
        stats.record(msg(category=MessageCategory.PAGE_DATA, size=4000,
                         object_id=oid), 0.5)
        stats.record(msg(category=MessageCategory.LOCK_GRANT, size=60,
                         object_id=oid), 0.1)
        stats.record(msg(category=MessageCategory.PAGE_DATA, size=100), 0.1)
        assert stats.object_bytes(oid) == 4060
        assert stats.object_messages(oid) == 2
        assert stats.object_time(oid) == pytest.approx(0.6)
        traffic = stats.by_object[oid]
        assert traffic.data_bytes == 4000  # grant excluded from data bytes
        assert traffic.data_messages == 1

    def test_unknown_object_zeroes(self):
        stats = NetworkStats()
        assert stats.object_bytes(ObjectId(99)) == 0
        assert stats.object_time(ObjectId(99)) == 0.0
        assert stats.object_messages(ObjectId(99)) == 0

    def test_snapshot_is_plain_data(self):
        stats = NetworkStats()
        stats.record(msg(), 0.1)
        snap = stats.snapshot()
        assert snap["total_messages"] == 1
        assert snap["by_category_bytes"] == {"page_data": 1000}


class TestNodeTraffic:
    def test_per_node_send_receive(self):
        stats = NetworkStats()
        stats.record(msg(src=N0, dst=N1, size=100), 0.1)
        stats.record(msg(src=N0, dst=N2, size=200), 0.1)
        stats.record(msg(src=N2, dst=N0, size=50), 0.1)
        n0 = stats.by_node[N0]
        assert n0.sent_bytes == 300 and n0.sent_messages == 2
        assert n0.received_bytes == 50 and n0.received_messages == 1
        assert stats.by_node[N1].received_bytes == 100
        assert stats.by_node[N2].sent_bytes == 50

    def test_accounted_through_network_send_and_charge(self):
        env = Environment()
        net = Network(env, NetworkConfig(bandwidth_bps=8e6,
                                         software_cost_s=1e-3))
        net.send(msg(src=N0, dst=N1, size=400))
        net.charge(msg(src=N1, dst=N2, size=600))
        env.run()
        assert net.stats.by_node[N0].sent_bytes == 400
        assert net.stats.by_node[N1].received_bytes == 400
        assert net.stats.by_node[N1].sent_bytes == 600
        assert net.stats.by_node[N2].received_bytes == 600

    def test_local_messages_not_accounted_per_node(self):
        env = Environment()
        net = Network(env, NetworkConfig(bandwidth_bps=8e6,
                                         software_cost_s=1e-3))
        net.send(msg(src=N0, dst=N0, size=400))
        net.charge(msg(src=N1, dst=N1, size=600))
        assert net.stats.by_node == {}

    def test_per_node_totals_sum_to_aggregate(self):
        stats = NetworkStats()
        stats.record(msg(src=N0, dst=N1, size=100), 0.1)
        stats.record(msg(src=N1, dst=N2, size=250), 0.1)
        stats.record(msg(src=N2, dst=N0, size=75), 0.1)
        sent = sum(t.sent_bytes for t in stats.by_node.values())
        received = sum(t.received_bytes for t in stats.by_node.values())
        assert sent == received == stats.total_bytes == 425
        assert sum(t.sent_messages for t in stats.by_node.values()) == 3
        assert sum(t.received_messages for t in stats.by_node.values()) == 3

    def test_imbalance_even(self):
        stats = NetworkStats()
        stats.record(msg(src=N0, dst=N1, size=100), 0.1)
        stats.record(msg(src=N1, dst=N0, size=100), 0.1)
        assert stats.node_imbalance() == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        stats = NetworkStats()
        stats.record(msg(src=N0, dst=N1, size=300), 0.1)
        stats.record(msg(src=N0, dst=N2, size=300), 0.1)
        assert stats.node_imbalance() > 1.0

    def test_imbalance_empty_is_one(self):
        assert NetworkStats().node_imbalance() == 1.0

    def test_snapshot_includes_imbalance(self):
        stats = NetworkStats()
        stats.record(msg(), 0.1)
        assert "node_imbalance" in stats.snapshot()
