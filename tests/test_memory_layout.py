"""Unit + property tests for the attribute-to-page layout engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.util.errors import ConfigurationError


def layout_of(*specs, page_size=100):
    return ObjectLayout(specs, page_size=page_size)


class TestAttributeSpec:
    def test_scalar_defaults(self):
        spec = AttributeSpec(name="x", size_bytes=8)
        assert not spec.is_array
        assert spec.total_bytes == 8

    def test_array_totals(self):
        spec = AttributeSpec(name="a", size_bytes=10, count=5)
        assert spec.is_array
        assert spec.total_bytes == 50

    @pytest.mark.parametrize("bad", [
        dict(name="1bad", size_bytes=8),
        dict(name="x", size_bytes=0),
        dict(name="x", size_bytes=8, count=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            AttributeSpec(**bad)


class TestLayoutBasics:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectLayout([], page_size=100)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            layout_of(AttributeSpec("x", 8), page_size=0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            layout_of(AttributeSpec("x", 8), AttributeSpec("x", 8))

    def test_sequential_offsets(self):
        layout = layout_of(AttributeSpec("a", 30), AttributeSpec("b", 50))
        assert layout.offset_of("a") == 0
        assert layout.offset_of("b") == 30
        assert layout.total_bytes == 80

    def test_page_count_rounds_up(self):
        layout = layout_of(AttributeSpec("a", 150))
        assert layout.page_count == 2

    def test_small_object_is_one_page(self):
        assert layout_of(AttributeSpec("a", 10)).page_count == 1

    def test_unknown_attribute_raises(self):
        layout = layout_of(AttributeSpec("a", 10))
        with pytest.raises(KeyError):
            layout.attribute("nope")
        with pytest.raises(KeyError):
            layout.attribute_pages("nope")
        with pytest.raises(KeyError):
            layout.slot_pages("nope", 0)


class TestPageMapping:
    def test_attribute_within_one_page(self):
        layout = layout_of(AttributeSpec("a", 40), AttributeSpec("b", 40))
        assert layout.attribute_pages("a") == frozenset({0})
        assert layout.attribute_pages("b") == frozenset({0})

    def test_attribute_spanning_pages(self):
        layout = layout_of(AttributeSpec("a", 90), AttributeSpec("b", 90))
        assert layout.attribute_pages("a") == frozenset({0})
        assert layout.attribute_pages("b") == frozenset({0, 1})

    def test_array_elements_on_distinct_pages(self):
        layout = layout_of(AttributeSpec("arr", size_bytes=100, count=4))
        assert layout.attribute_pages("arr") == frozenset({0, 1, 2, 3})
        assert layout.slot_pages("arr", 0) == frozenset({0})
        assert layout.slot_pages("arr", 3) == frozenset({3})

    def test_element_straddling_page_boundary(self):
        layout = layout_of(AttributeSpec("pad", 60),
                           AttributeSpec("arr", size_bytes=60, count=2))
        assert layout.slot_pages("arr", 0) == frozenset({0, 1})
        assert layout.slot_pages("arr", 1) == frozenset({1})

    def test_pages_for_attributes_union(self):
        layout = layout_of(AttributeSpec("a", 90), AttributeSpec("b", 90),
                           AttributeSpec("c", 90))
        assert layout.pages_for_attributes(["a", "c"]) == frozenset({0, 1, 2})

    def test_all_pages(self):
        layout = layout_of(AttributeSpec("a", 250))
        assert layout.all_pages() == frozenset({0, 1, 2})

    def test_slots_on_page_includes_partials(self):
        layout = layout_of(AttributeSpec("a", 90), AttributeSpec("b", 90))
        assert set(layout.slots_on_page(0)) == {("a", 0), ("b", 0)}
        assert set(layout.slots_on_page(1)) == {("b", 0)}

    def test_slots_on_pages_dedup(self):
        layout = layout_of(AttributeSpec("a", 150))
        assert layout.slots_on_pages([0, 1]) == (("a", 0),)

    def test_slots_on_page_out_of_range(self):
        layout = layout_of(AttributeSpec("a", 10))
        with pytest.raises(KeyError):
            layout.slots_on_page(5)

    def test_object_bytes_on_page_partial_tail(self):
        layout = layout_of(AttributeSpec("a", 150))
        assert layout.object_bytes_on_page(0) == 100
        assert layout.object_bytes_on_page(1) == 50
        with pytest.raises(KeyError):
            layout.object_bytes_on_page(2)

    def test_initial_values_cover_all_slots(self):
        layout = layout_of(AttributeSpec("x", 8, default=3),
                           AttributeSpec("arr", 8, count=3, default="e"))
        values = layout.initial_values()
        assert values[("x", 0)] == 3
        assert values[("arr", 2)] == "e"
        assert len(values) == 4


@st.composite
def layouts(draw):
    page_size = draw(st.sampled_from([64, 100, 256, 4096]))
    count = draw(st.integers(1, 6))
    specs = []
    for index in range(count):
        if draw(st.booleans()):
            specs.append(AttributeSpec(f"s{index}",
                                       draw(st.integers(1, 3 * page_size))))
        else:
            specs.append(
                AttributeSpec(f"a{index}", draw(st.integers(1, page_size)),
                              count=draw(st.integers(2, 8)))
            )
    return ObjectLayout(specs, page_size=page_size)


class TestLayoutProperties:
    @given(layouts())
    @settings(max_examples=60)
    def test_every_byte_belongs_to_a_page(self, layout):
        assert layout.page_count * layout.page_size >= layout.total_bytes
        assert (layout.page_count - 1) * layout.page_size < max(
            layout.total_bytes, 1
        )

    @given(layouts())
    @settings(max_examples=60)
    def test_slot_pages_consistent_with_page_slots(self, layout):
        for spec in layout.attributes:
            for index in range(spec.count):
                slot = (spec.name, index)
                for page in layout.slot_pages(spec.name, index):
                    assert slot in layout.slots_on_page(page)
        for page in range(layout.page_count):
            for slot in layout.slots_on_page(page):
                assert page in layout.slot_pages(*slot)

    @given(layouts())
    @settings(max_examples=60)
    def test_attribute_pages_are_union_of_slot_pages(self, layout):
        for spec in layout.attributes:
            union = frozenset()
            for index in range(spec.count):
                union |= layout.slot_pages(spec.name, index)
            assert layout.attribute_pages(spec.name) == union

    @given(layouts())
    @settings(max_examples=60)
    def test_object_bytes_sum_to_total(self, layout):
        total = sum(
            layout.object_bytes_on_page(page)
            for page in range(layout.page_count)
        )
        assert total == layout.total_bytes
