"""Unit tests for the "compiler": AST access analysis and prediction."""

import pytest

from repro.analysis import ALL_ATTRIBUTES, AccessSets, analyze_method, predict
from repro.analysis.prediction import PredictionStats
from repro.memory.layout import AttributeSpec, ObjectLayout


def analyze(func, helpers=None):
    return analyze_method(func, class_methods=helpers or {})


class TestLoadsAndStores:
    def test_plain_read(self):
        def m(self, ctx):
            return self.x + self.y

        result = analyze(m)
        assert result.reads == {"x", "y"}
        assert result.writes == frozenset()

    def test_plain_write(self):
        def m(self, ctx, v):
            self.x = v

        result = analyze(m)
        assert result.writes == {"x"}
        assert result.reads == frozenset()

    def test_augassign_reads_and_writes(self):
        def m(self, ctx):
            self.x += 1

        result = analyze(m)
        assert result.reads == {"x"}
        assert result.writes == {"x"}

    def test_delete_counts_as_write(self):
        def m(self, ctx):
            del self.x

        assert analyze(m).writes == {"x"}

    def test_all_control_paths_unioned(self):
        def m(self, ctx, flag):
            if flag:
                self.a = 1
            else:
                self.b = self.c

        result = analyze(m)
        assert result.writes == {"a", "b"}
        assert result.reads == {"c"}

    def test_loops_and_nested_blocks(self):
        def m(self, ctx, n):
            for _ in range(n):
                while self.x > 0:
                    self.y = self.z

        result = analyze(m)
        assert result.reads == {"x", "z"}
        assert result.writes == {"y"}


class TestSubscripts:
    def test_element_read(self):
        def m(self, ctx, i):
            return self.arr[i]

        result = analyze(m)
        assert result.reads == {"arr"}
        assert result.writes == frozenset()

    def test_element_write(self):
        def m(self, ctx, i, v):
            self.arr[i] = v

        result = analyze(m)
        assert "arr" in result.writes

    def test_element_augassign(self):
        def m(self, ctx, i):
            self.arr[i] += 1

        result = analyze(m)
        assert "arr" in result.reads and "arr" in result.writes

    def test_index_expression_analyzed(self):
        def m(self, ctx):
            return self.arr[self.cursor]

        result = analyze(m)
        assert result.reads == {"arr", "cursor"}


class TestEscapes:
    def test_getattr_degrades_reads(self):
        def m(self, ctx, name):
            return getattr(self, name)

        assert analyze(m).reads is ALL_ATTRIBUTES

    def test_setattr_degrades_writes(self):
        def m(self, ctx, name, v):
            setattr(self, name, v)

        result = analyze(m)
        assert result.writes is ALL_ATTRIBUTES

    def test_bare_self_escape_degrades_everything(self):
        def m(self, ctx, sink):
            sink.append(self)

        result = analyze(m)
        assert result.reads is ALL_ATTRIBUTES
        assert result.writes is ALL_ATTRIBUTES

    def test_unanalyzable_callable_degrades(self):
        result = analyze_method(len)  # no Python source
        assert result.reads is ALL_ATTRIBUTES

    def test_resolve_replaces_sentinel(self):
        sets = AccessSets(reads=ALL_ATTRIBUTES, writes=frozenset({"x"}))
        resolved = sets.resolve({"x", "y"})
        assert resolved.reads == {"x", "y"}
        assert resolved.writes == {"x"}
        assert resolved.is_exact


class TestHelperCalls:
    def test_helper_accesses_unioned(self):
        def helper(self, amount):
            self.total += amount

        def m(self, ctx, amount):
            self.count += 1
            self.helper(amount)

        result = analyze(m, helpers={"helper": helper})
        assert result.writes == {"count", "total", "helper"} - {"helper"} \
            or result.writes == {"count", "total"}
        assert "total" in result.writes
        assert "count" in result.reads

    def test_mutually_recursive_helpers_terminate(self):
        def ping(self):
            self.a = 1
            self.pong()

        def pong(self):
            self.b = 2
            self.ping()

        result = analyze(ping, helpers={"ping": ping, "pong": pong})
        assert {"a", "b"} <= set(result.writes)

    def test_unknown_callee_name_stays_in_reads(self):
        def m(self, ctx):
            self.mystery()

        result = analyze(m)
        assert "mystery" in result.reads  # resolved away later by schema


class TestGeneratorBodies:
    def test_yield_bodies_analyzed(self):
        def m(self, ctx, other):
            before = self.x
            result = yield ctx.invoke(other, "get")
            self.y = before + result

        sets = analyze(m)
        assert sets.reads == {"x"}
        assert sets.writes == {"y"}


class TestPrediction:
    def make_layout(self):
        return ObjectLayout(
            [AttributeSpec("a", 90), AttributeSpec("b", 90),
             AttributeSpec("c", 90)],
            page_size=100,
        )

    def test_maps_attrs_to_pages(self):
        layout = self.make_layout()
        prediction = predict(
            AccessSets(reads=frozenset({"a"}), writes=frozenset({"c"})), layout
        )
        assert prediction.read_pages == frozenset({0})
        assert prediction.write_pages == frozenset({1, 2})
        assert prediction.pages == frozenset({0, 1, 2})
        assert prediction.is_update

    def test_read_only_is_not_update(self):
        layout = self.make_layout()
        prediction = predict(
            AccessSets(reads=frozenset({"b"}), writes=frozenset()), layout
        )
        assert not prediction.is_update
        assert prediction.pages == frozenset({0, 1})

    def test_all_sentinel_means_every_page(self):
        layout = self.make_layout()
        prediction = predict(
            AccessSets(reads=ALL_ATTRIBUTES, writes=ALL_ATTRIBUTES), layout
        )
        assert prediction.pages == layout.all_pages()

    def test_stats_merge_and_rates(self):
        stats = PredictionStats(predicted_pages=10, transferred_pages=8,
                                demand_fetches=2, acquisitions=4,
                                over_predicted_pages=2)
        other = PredictionStats(acquisitions=4, demand_fetches=2,
                                transferred_pages=2)
        stats.merge(other)
        assert stats.acquisitions == 8
        assert stats.demand_fetch_rate == pytest.approx(0.5)
        assert stats.waste_rate == pytest.approx(0.2)

    def test_rates_zero_safe(self):
        stats = PredictionStats()
        assert stats.demand_fetch_rate == 0.0
        assert stats.waste_rate == 0.0
