"""Property-based end-to-end correctness: any random workload, any
protocol, must be serializable and conservative.

These are the reproduction's strongest tests: hypothesis explores the
workload parameter space (object counts, sizes, skew, nesting) and for
every sample we check the §4.3 correctness obligations — final state
equivalent to a serial execution in commit order, and conservative
access prediction.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import check_serializability
from repro.runtime import Cluster, ClusterConfig
from repro.workload import WorkloadParams, generate_workload, run_workload


@st.composite
def workload_params(draw):
    pages_min = draw(st.integers(1, 4))
    return WorkloadParams(
        num_objects=draw(st.integers(2, 10)),
        num_classes=draw(st.integers(1, 3)),
        pages_min=pages_min,
        pages_max=pages_min + draw(st.integers(0, 4)),
        num_roots=draw(st.integers(1, 14)),
        max_depth=draw(st.integers(0, 3)),
        mean_branch=draw(st.floats(0.0, 3.0)),
        update_fraction=draw(st.floats(0.0, 1.0)),
        access_fraction=(0.2, draw(st.floats(0.4, 1.0))),
        write_fraction=draw(st.floats(0.1, 1.0)),
        skew=draw(st.floats(0.0, 1.5)),
        mean_interarrival_s=draw(st.sampled_from([0.0, 0.0002, 0.002])),
    )


COMMON_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("protocol", ["cotec", "otec", "lotec", "rc"])
class TestRandomWorkloads:
    @given(params=workload_params(), seed=st.integers(0, 10_000))
    @settings(**COMMON_SETTINGS)
    def test_serializable_and_complete(self, protocol, params, seed):
        workload = generate_workload(params, seed=seed)
        cluster = Cluster(
            ClusterConfig(num_nodes=3, protocol=protocol, seed=seed)
        )
        run = run_workload(cluster, workload)
        # Retries may fail only if the budget runs out; tolerate but
        # require most work to commit.
        assert run.committed + run.failed == params.num_roots
        report = check_serializability(cluster)
        assert report.equivalent, (
            f"{protocol}: {report.state_mismatches[:3]} "
            f"{report.result_mismatches[:3]}"
        )


class TestPredictionConservatism:
    @given(params=workload_params(), seed=st.integers(0, 10_000))
    @settings(**COMMON_SETTINGS)
    def test_writes_always_covered(self, params, seed):
        """The predicted write set must cover every actual write (the
        §4.1 conservatism requirement; reads may demand-fetch, writes
        must never be missed)."""
        workload = generate_workload(params, seed=seed)
        cluster = Cluster(
            ClusterConfig(num_nodes=3, protocol="lotec", seed=seed,
                          audit_accesses=True)
        )
        run_workload(cluster, workload)
        assert cluster.audit, "audit must record invocations"
        for record in cluster.audit:
            assert record.writes_conservative, record
            assert record.conservative, record
        assert cluster.prediction_stats.write_misses == 0
