"""Coverage for remaining public API surface: scheduler policies,
round-trip estimation, result helpers, and stats summaries."""

import pytest

from repro.bench.experiments import ExperimentResult
from repro.net.message import Message, MessageCategory
from repro.net.network import Network, NetworkConfig
from repro.runtime.scheduler import Scheduler
from repro.sim import Environment
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG

NODES = [NodeId(0), NodeId(1), NodeId(2)]


class TestScheduler:
    def test_round_robin_cycles(self):
        scheduler = Scheduler(NODES, "round_robin", SeededRNG(1))
        picks = [scheduler.pick_node() for _ in range(6)]
        assert picks == NODES + NODES

    def test_random_is_seeded(self):
        a = Scheduler(NODES, "random", SeededRNG(5))
        b = Scheduler(NODES, "random", SeededRNG(5))
        assert [a.pick_node() for _ in range(10)] == \
            [b.pick_node() for _ in range(10)]

    def test_least_loaded_prefers_idle(self):
        scheduler = Scheduler(NODES, "least_loaded", SeededRNG(1))
        first = scheduler.pick_node()
        scheduler.notify_start(first)
        second = scheduler.pick_node()
        assert second != first
        scheduler.notify_start(second)
        scheduler.notify_end(first)
        assert scheduler.pick_node() == first

    def test_load_snapshot(self):
        scheduler = Scheduler(NODES, "round_robin", SeededRNG(1))
        scheduler.notify_start(NODES[1])
        assert scheduler.load_snapshot()[NODES[1]] == 1

    def test_end_without_start_rejected(self):
        scheduler = Scheduler(NODES, "round_robin", SeededRNG(1))
        with pytest.raises(ConfigurationError):
            scheduler.notify_end(NODES[0])

    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler([], "round_robin", SeededRNG(1))

    def test_unknown_policy_at_pick(self):
        scheduler = Scheduler(NODES, "round_robin", SeededRNG(1))
        scheduler.policy = "bogus"
        with pytest.raises(ConfigurationError):
            scheduler.pick_node()


class TestRoundTripEstimate:
    def test_round_trip_sums_both_legs(self):
        env = Environment()
        net = Network(env, NetworkConfig(bandwidth_bps=8e6,
                                         software_cost_s=1e-3,
                                         propagation_s=0.0))
        request = Message(src=NODES[0], dst=NODES[1],
                          category=MessageCategory.LOCK_REQUEST,
                          size_bytes=1000)
        # 1000B at 8Mbps = 1ms each way + 1ms software each way.
        assert net.round_trip(request, response_size=1000) == \
            pytest.approx(4e-3)
        # Estimation is free: nothing recorded.
        assert net.stats.total_messages == 0


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment="demo", x_label="x",
            series={"a": {"p": 1, "q": 2}, "b": {"p": 3, "q": "n/a"}},
        )

    def test_totals_skips_non_numeric(self):
        totals = self.make().totals()
        assert totals == {"a": 3, "b": 3}

    def test_render_mentions_title_and_series(self):
        text = self.make().render()
        assert text.startswith("demo")
        assert "a" in text and "b" in text and "n/a" in text


class TestClusterSummaryIntegration:
    def test_summary_has_node_imbalance(self):
        from conftest import Counter, make_cluster

        cluster = make_cluster()
        counter = cluster.create(Counter)
        for node in cluster.nodes:
            cluster.call(counter, "add", 1, node=node)
        summary = cluster.stats_summary()
        assert summary["network"]["node_imbalance"] >= 1.0
        assert cluster.network_stats.by_node  # per-node data collected
