"""Tests for the precedence-graph (conflict-serializability) oracle."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import check_conflict_serializability, check_serializability
from repro.gdo.entry import LockMode
from repro.runtime import Cluster, ClusterConfig
from repro.util.ids import ObjectId
from repro.workload import WorkloadParams, generate_workload, run_workload

from conftest import Counter, make_cluster


class TestOracleOnRealRuns:
    @pytest.mark.parametrize("protocol",
                             ["cotec", "otec", "lotec", "hlotec", "rc"])
    def test_contended_runs_are_conflict_serializable(self, protocol):
        params = WorkloadParams(num_objects=6, num_classes=2, num_roots=25,
                                pages_min=1, pages_max=3, skew=1.0)
        workload = generate_workload(params, seed=41)
        cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol,
                                        seed=41))
        run_workload(cluster, workload)
        assert check_conflict_serializability(cluster).equivalent

    def test_grant_history_recorded(self, cluster):
        counter = cluster.create(Counter)
        cluster.call(counter, "add", 1)
        cluster.call(counter, "get")
        history = cluster.lockmgr.grant_history[counter.object_id]
        assert len(history) == 2
        assert history[0][1] is LockMode.WRITE
        assert history[1][1] is LockMode.READ

    def test_aborted_families_excluded(self):
        from repro import TransactionAborted

        cluster = make_cluster(seed=1)
        counter = cluster.create(Counter)
        with pytest.raises(TransactionAborted):
            cluster.call(counter, "fail_after_write", 1)
        cluster.call(counter, "add", 1)
        report = check_conflict_serializability(cluster)
        assert report.equivalent
        # The aborted family appears in the raw history but not in the
        # graph (only one committed family exists).
        assert len(cluster.lockmgr.grant_history[counter.object_id]) == 2

    def test_agrees_with_replay_oracle(self):
        params = WorkloadParams(num_objects=8, num_classes=3, num_roots=30,
                                pages_min=1, pages_max=4,
                                abort_probability=0.1)
        workload = generate_workload(params, seed=42)
        cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec",
                                        seed=42))
        run_workload(cluster, workload)
        assert check_serializability(cluster).equivalent
        assert check_conflict_serializability(cluster).equivalent


class TestOracleDetectsCycles:
    def test_injected_cycle_detected(self):
        """Forge a grant history with a W-W cycle between two committed
        families: the oracle must flag it."""
        cluster = make_cluster(seed=1)
        a = cluster.create(Counter)
        b = cluster.create(Counter)
        cluster.call(a, "add", 1)  # commits family; gives us serials
        cluster.call(b, "add", 1)
        first = cluster.commit_log[0].root_serial
        second = cluster.commit_log[1].root_serial
        cluster.lockmgr.grant_history[a.object_id] = [
            (first, LockMode.WRITE, 0.0), (second, LockMode.WRITE, 1.0),
        ]
        cluster.lockmgr.grant_history[b.object_id] = [
            (second, LockMode.WRITE, 0.5), (first, LockMode.WRITE, 1.5),
        ]
        report = check_conflict_serializability(cluster)
        assert not report.equivalent
        assert "cycle" in report.state_mismatches[0]

    def test_rw_anti_dependency_closes_cycle(self):
        """Reader-then-writer must order reader before writer: a forged
        history where the edges only work out via an anti-dependency."""
        cluster = make_cluster(seed=1)
        a = cluster.create(Counter)
        b = cluster.create(Counter)
        cluster.call(a, "add", 1)
        cluster.call(b, "add", 1)
        first = cluster.commit_log[0].root_serial
        second = cluster.commit_log[1].root_serial
        cluster.lockmgr.grant_history[a.object_id] = [
            (first, LockMode.READ, 0.0),     # first reads a
            (second, LockMode.WRITE, 1.0),   # second overwrites a
        ]
        cluster.lockmgr.grant_history[b.object_id] = [
            (second, LockMode.READ, 0.5),    # second reads b
            (first, LockMode.WRITE, 1.5),    # first overwrites b
        ]
        report = check_conflict_serializability(cluster)
        assert not report.equivalent

    def test_read_read_never_conflicts(self):
        cluster = make_cluster(seed=1)
        a = cluster.create(Counter)
        cluster.call(a, "get")
        cluster.call(a, "get")
        first = cluster.commit_log[0].root_serial
        second = cluster.commit_log[1].root_serial
        cluster.lockmgr.grant_history[a.object_id] = [
            (first, LockMode.READ, 0.0), (second, LockMode.READ, 1.0),
            (first, LockMode.READ, 2.0),
        ]
        assert check_conflict_serializability(cluster).equivalent


class TestOracleProperty:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_runs_acyclic(self, seed):
        params = WorkloadParams(num_objects=5, num_classes=2, num_roots=12,
                                pages_min=1, pages_max=3, skew=1.2)
        workload = generate_workload(params, seed=seed)
        cluster = Cluster(ClusterConfig(num_nodes=3, protocol="lotec",
                                        seed=seed))
        run_workload(cluster, workload)
        assert check_conflict_serializability(cluster).equivalent
