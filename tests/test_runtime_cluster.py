"""Unit/integration tests for the Cluster facade and configuration."""

import pytest

from repro import Cluster, ClusterConfig, ConfigurationError
from repro.net.presets import preset_network

from conftest import Counter, Ledger, make_cluster


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(num_nodes=0),
        dict(page_size=16),
        dict(transfer_grain="byte"),
        dict(max_retries=-1),
        dict(retry_backoff_s=-0.1),
        dict(scheduler="fifo"),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**bad)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            Cluster(ClusterConfig(protocol="magic"))

    def test_with_protocol_copies(self):
        config = ClusterConfig(protocol="cotec", num_nodes=5)
        other = config.with_protocol("lotec")
        assert other.protocol == "lotec"
        assert other.num_nodes == 5
        assert config.protocol == "cotec"

    def test_with_network_copies(self):
        config = ClusterConfig()
        net = preset_network("1Gbps", "500ns")
        assert config.with_network(net).network is net

    def test_page_size_synced_into_size_model(self):
        config = ClusterConfig(page_size=1024)
        assert config.sizes.page_bytes == 1024


class TestClusterLifecycle:
    def test_nodes_created(self):
        cluster = make_cluster(nodes=6)
        assert len(cluster.nodes) == 6
        assert len(cluster.stores) == 6

    def test_layout_cache_shared_across_instances(self, cluster):
        a = cluster.create(Counter)
        b = cluster.create(Counter)
        assert a.meta.layout is b.meta.layout

    def test_creation_round_robin_spreads(self, cluster):
        handles = [cluster.create(Counter) for _ in range(8)]
        creators = {handle.meta.creator_node for handle in handles}
        assert creators == set(cluster.nodes)

    def test_handle_lookup(self, cluster):
        handle = cluster.create(Counter)
        assert cluster.handle(handle.object_id) == handle

    def test_handle_equality_and_hash(self, cluster):
        a = cluster.create(Counter)
        again = cluster.handle(a.object_id)
        assert a == again and hash(a) == hash(again)
        assert a != cluster.create(Counter)

    def test_tickets_tracked(self, cluster):
        counter = cluster.create(Counter)
        cluster.submit(counter, "add", 1)
        cluster.submit(counter, "add", 2)
        assert len(cluster.tickets()) == 2


class TestStateAccess:
    def test_read_object_full_state(self, cluster):
        ledger = cluster.create(Ledger)
        cluster.call(ledger, "bump_alpha", 5)
        cluster.call(ledger, "log_entry", 3, 44)
        state = cluster.read_object(ledger)
        assert state["alpha"] == 5
        assert state["beta"] == 0
        assert state["log"][3] == 44
        assert len(state["log"]) == 16

    def test_state_digest_covers_all_objects(self, cluster):
        cluster.create(Counter)
        cluster.create(Ledger)
        digest = cluster.state_digest()
        assert set(digest) == {0, 1}

    def test_stats_summary_shape(self, cluster):
        counter = cluster.create(Counter)
        cluster.call(counter, "add", 1)
        summary = cluster.stats_summary()
        assert summary["protocol"] == "lotec"
        assert summary["transactions"]["commits"] == 1
        assert "by_category_bytes" in summary["network"]
        assert summary["prediction"]["acquisitions"] >= 1


class TestDeterminism:
    def _run(self, seed):
        cluster = make_cluster(seed=seed)
        counters = [cluster.create(Counter) for _ in range(3)]
        for index in range(10):
            cluster.submit(counters[index % 3], "add", index)
        cluster.run()
        return (
            cluster.env.now,
            cluster.network_stats.total_bytes,
            cluster.network_stats.total_messages,
            cluster.state_digest(),
            [record.label for record in cluster.commit_log],
        )

    def test_identical_seed_identical_run(self):
        assert self._run(42) == self._run(42)

    def test_different_seed_may_differ(self):
        # Scheduling is seed-derived; the two runs at least share the
        # committed work even when ordering differs.
        a, b = self._run(1), self._run(2)
        assert a[3].keys() == b[3].keys()
