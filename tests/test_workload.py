"""Tests for the synthetic workload generator (§5's randomized
nested transactions)."""

import pytest

from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRNG
from repro.workload import (
    MEDIUM_HIGH,
    SCENARIOS,
    WorkloadParams,
    generate_workload,
    mix,
    run_workload,
)
from repro.workload.synth import SyntheticClassFactory


SMALL = WorkloadParams(num_objects=8, num_classes=3, num_roots=12,
                       pages_min=1, pages_max=3, max_depth=2)


class TestParams:
    @pytest.mark.parametrize("bad", [
        dict(num_objects=0),
        dict(pages_min=0),
        dict(pages_min=5, pages_max=2),
        dict(access_fraction=(0.0, 0.5)),
        dict(access_fraction=(0.8, 0.5)),
        dict(update_fraction=1.5),
        dict(write_fraction=0.0),
        dict(skew=-1),
        dict(mean_branch=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            WorkloadParams(**bad)

    def test_scaled_shrinks_roots(self):
        assert MEDIUM_HIGH.scaled(0.1).num_roots == \
            max(1, int(MEDIUM_HIGH.num_roots * 0.1))

    def test_paper_scenarios_match_figure_text(self):
        assert SCENARIOS["medium-high"].pages_max == 5
        assert SCENARIOS["large-high"].pages_min == 10
        assert SCENARIOS["large-high"].pages_max == 20
        assert SCENARIOS["medium-moderate"].num_objects == 100
        assert SCENARIOS["medium-high"].num_objects == 20


class TestSyntheticClasses:
    def test_class_shape(self):
        factory = SyntheticClassFactory(SeededRNG(1), page_size=4096)
        info = factory.make_class("C", pages=5, access_fraction=(0.3, 0.6),
                                  write_fraction=0.5)
        layout = info.schema.make_layout(4096)
        assert 4 <= layout.page_count <= 6
        assert info.update_methods and info.read_methods
        for name in info.update_methods:
            spec = info.schema.method_spec(name)
            assert spec.is_update
            assert spec.access.writes <= spec.access.reads
        for name in info.read_methods:
            assert not info.schema.method_spec(name).is_update

    def test_methods_access_subsets(self):
        factory = SyntheticClassFactory(SeededRNG(2), page_size=4096)
        info = factory.make_class("C", pages=10, access_fraction=(0.2, 0.4),
                                  write_fraction=0.5)
        total = len(info.schema.attributes)
        for spec in info.schema.methods.values():
            assert len(spec.access.reads) < total

    def test_mix_is_order_sensitive(self):
        assert mix(mix(0, 1), 2) != mix(mix(0, 2), 1)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_workload(SMALL, seed=9)
        b = generate_workload(SMALL, seed=9)
        assert a.plans == b.plans
        assert a.arrival_offsets == b.arrival_offsets
        assert a.object_classes == b.object_classes

    def test_different_seeds_differ(self):
        a = generate_workload(SMALL, seed=9)
        b = generate_workload(SMALL, seed=10)
        assert a.plans != b.plans

    def test_plans_respect_depth_and_objects(self):
        workload = generate_workload(SMALL, seed=9)
        assert len(workload.plans) == SMALL.num_roots
        for plan in workload.plans:
            assert plan.depth() <= SMALL.max_depth + 1
            assert all(0 <= i < SMALL.num_objects
                       for i in plan.objects_touched())

    def test_no_recursion_on_any_path(self):
        workload = generate_workload(
            WorkloadParams(num_objects=4, num_classes=2, num_roots=30,
                           skew=2.0, max_depth=4, mean_branch=3.0),
            seed=3,
        )

        def check(node, path):
            assert node.obj_index not in path
            for child in node.children:
                check(child, path | {node.obj_index})

        for plan in workload.plans:
            check(plan, set())

    def test_methods_exist_on_assigned_classes(self):
        workload = generate_workload(SMALL, seed=4)

        def check(node):
            info = workload.class_of(node.obj_index)
            assert node.method_name in info.schema.methods
            for child in node.children:
                check(child)

        for plan in workload.plans:
            check(plan)

    def test_arrivals_monotonic(self):
        workload = generate_workload(SMALL, seed=4)
        assert workload.arrival_offsets == sorted(workload.arrival_offsets)

    def test_skew_concentrates_on_hot_objects(self):
        hot = generate_workload(
            WorkloadParams(num_objects=20, num_roots=200, skew=1.2,
                           max_depth=0),
            seed=5,
        )
        uniform = generate_workload(
            WorkloadParams(num_objects=20, num_roots=200, skew=0.0,
                           max_depth=0),
            seed=5,
        )
        hot_zero = sum(1 for p in hot.plans if p.obj_index == 0)
        uniform_zero = sum(1 for p in uniform.plans if p.obj_index == 0)
        assert hot_zero > 2 * uniform_zero


class TestExecution:
    def test_runs_identically_shaped_on_each_protocol(self):
        workload = generate_workload(SMALL, seed=6)
        states = []
        for protocol in ("cotec", "otec", "lotec", "rc"):
            cluster = Cluster(ClusterConfig(num_nodes=3, protocol=protocol,
                                            seed=6))
            run = run_workload(cluster, workload)
            assert run.failed == 0
            states.append(cluster.state_digest())
        # Committed work is the same workload; all protocols must agree
        # on the final state because commit order is deterministic here.
        # (Commit orders can differ between protocols in general; for
        # these parameters they do not.)
        for digest in states[1:]:
            assert set(digest) == set(states[0])

    def test_summary_fields(self):
        workload = generate_workload(SMALL, seed=6)
        cluster = Cluster(ClusterConfig(num_nodes=3, protocol="lotec", seed=6))
        run = run_workload(cluster, workload)
        summary = run.summary()
        assert summary["protocol"] == "lotec"
        assert summary["committed"] == cluster.txn_stats.commits
        assert "network" in summary

    def test_serializable_under_every_protocol(self):
        from repro import check_serializability

        workload = generate_workload(SMALL, seed=8)
        for protocol in ("cotec", "otec", "lotec", "rc"):
            cluster = Cluster(ClusterConfig(num_nodes=3, protocol=protocol,
                                            seed=8))
            run_workload(cluster, workload)
            assert check_serializability(cluster).equivalent, protocol


class TestCustomPlans:
    def base(self):
        from repro.workload import generate_workload

        return generate_workload(SMALL, seed=9)

    def plan(self, obj=0, method=None, children=(), salt=1):
        from repro.workload import PlanNode

        workload = self.base()
        method = method or workload.class_of(obj).update_methods[0]
        return workload, PlanNode(obj_index=obj, method_name=method,
                                  salt=salt, children=tuple(children))

    def test_with_plans_replaces_plans(self):
        workload, plan = self.plan()
        custom = workload.with_plans([plan, plan])
        assert len(custom.plans) == 2
        assert custom.arrival_offsets == [0.0, 0.0]
        assert custom.classes is workload.classes

    def test_with_plans_runs_on_cluster(self):
        from repro.workload import PlanNode

        workload = self.base()
        leaf_method = workload.class_of(1).update_methods[0]
        root_method = workload.class_of(0).update_methods[0]
        plan = PlanNode(
            obj_index=0, method_name=root_method, salt=3,
            children=(PlanNode(obj_index=1, method_name=leaf_method,
                               salt=4),),
        )
        custom = workload.with_plans([plan])
        cluster = Cluster(ClusterConfig(num_nodes=2, protocol="lotec",
                                        seed=9))
        run = run_workload(cluster, custom)
        assert run.committed == 1

    def test_rejects_unknown_object(self):
        workload, plan = self.plan()
        from repro.workload import PlanNode

        bad = PlanNode(obj_index=999, method_name="m1", salt=1)
        with pytest.raises(ValueError, match="references object"):
            workload.with_plans([bad])

    def test_rejects_unknown_method(self):
        workload = self.base()
        from repro.workload import PlanNode

        bad = PlanNode(obj_index=0, method_name="nope", salt=1)
        with pytest.raises(ValueError, match="no method"):
            workload.with_plans([bad])

    def test_rejects_recursive_plan(self):
        workload = self.base()
        from repro.workload import PlanNode

        method = workload.class_of(0).update_methods[0]
        bad = PlanNode(
            obj_index=0, method_name=method, salt=1,
            children=(PlanNode(obj_index=0, method_name=method, salt=2),),
        )
        with pytest.raises(ValueError, match="recursively"):
            workload.with_plans([bad])

    def test_rejects_mismatched_offsets(self):
        workload, plan = self.plan()
        with pytest.raises(ValueError, match="offsets"):
            workload.with_plans([plan], arrival_offsets=[0.0, 1.0])
