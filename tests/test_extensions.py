"""Integration tests for the paper's announced extensions: shadow
recovery, per-class protocols, multicast, and optimistic prefetching."""

import pytest

from repro import (
    Attr,
    ConfigurationError,
    TransactionAborted,
    check_serializability,
    method,
    shared_class,
)
from repro.net.message import MessageCategory
from repro.runtime import Cluster, ClusterConfig
from repro.workload import WorkloadParams, generate_workload, run_workload

from conftest import Counter, Ledger, make_cluster

SMALL = WorkloadParams(num_objects=8, num_classes=3, num_roots=16,
                       pages_min=1, pages_max=4, max_depth=2)


class TestShadowRecovery:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(recovery="journal")

    def test_abort_rolls_back_with_shadows(self):
        cluster = make_cluster(recovery="shadow")
        counter = cluster.create(Counter, initial={"value": 5})
        with pytest.raises(TransactionAborted):
            cluster.call(counter, "fail_after_write", 100)
        assert cluster.read_attr(counter, "value") == 5

    def test_equivalent_final_state_to_undo(self):
        workload = generate_workload(SMALL, seed=21)
        digests = []
        for recovery in ("undo", "shadow"):
            cluster = Cluster(
                ClusterConfig(num_nodes=4, seed=21, recovery=recovery)
            )
            run = run_workload(cluster, workload)
            assert run.failed == 0
            assert check_serializability(cluster).equivalent
            digests.append(cluster.state_digest())
        assert digests[0] == digests[1]

    def test_nested_abort_with_shadows(self):
        from conftest import Orchestrator

        cluster = make_cluster(recovery="shadow")
        source = cluster.create(Counter, initial={"value": 1})
        sink = cluster.create(Counter)
        boss = cluster.create(Orchestrator)
        cluster.call(boss, "safe_transfer", source, sink, 9)
        assert cluster.read_attr(source, "value") == 1
        assert cluster.read_attr(sink, "value") == 9


class TestPerClassProtocols:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(class_protocols=("Counter",))
        with pytest.raises(ConfigurationError):
            ClusterConfig(class_protocols=(("Counter", 3),))

    def test_dispatch_by_class(self):
        cluster = make_cluster(
            protocol="lotec", class_protocols=(("Counter", "rc"),)
        )
        counter = cluster.create(Counter)
        ledger = cluster.create(Ledger)
        suite = cluster.protocol
        assert suite.for_meta(counter.meta).name == "rc"
        assert suite.for_meta(ledger.meta).name == "lotec"
        assert suite.name == "lotec+rc"

    def test_rc_class_pushes_lotec_class_does_not(self):
        cluster = make_cluster(
            protocol="lotec", class_protocols=(("Counter", "rc"),), seed=2
        )
        counter = cluster.create(Counter, node=cluster.nodes[0])
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        # Warm a replica of each at node 1.
        cluster.call(counter, "get", node=cluster.nodes[1])
        cluster.call(ledger, "read_gamma", node=cluster.nodes[1])
        cluster.call(counter, "add", 1, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[0])
        stats = cluster.network_stats
        # The RC-managed counter got its update pushed to the replica...
        assert stats.category_messages(MessageCategory.UPDATE_PUSH) == 1
        counter_traffic = stats.by_object[counter.object_id]
        assert counter_traffic.data_messages >= 1
        # ...while all of the UPDATE_PUSH traffic belongs to the counter
        # (none to the LOTEC-managed ledger).
        assert stats.category_bytes(MessageCategory.UPDATE_PUSH) <= \
            counter_traffic.bytes

    def test_mixed_protocols_serializable(self):
        workload = generate_workload(SMALL, seed=22)
        cluster = Cluster(ClusterConfig(
            num_nodes=4, protocol="lotec", seed=22,
            class_protocols=(("Synth0", "rc"), ("Synth1", "cotec")),
        ))
        run = run_workload(cluster, workload)
        assert run.failed == 0
        assert check_serializability(cluster).equivalent

    def test_duplicate_class_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            make_cluster(class_protocols=(("A", "rc"), ("A", "cotec")))


class TestMulticast:
    def test_group_charge_counts_once(self):
        config = ClusterConfig()
        network_config = config.network.with_multicast(True)
        cluster = Cluster(config.with_network(network_config))
        assert cluster.network.config.multicast

    def test_rc_pushes_cheaper_with_multicast(self):
        def run(multicast):
            config = ClusterConfig(num_nodes=4, protocol="rc", seed=5)
            config = config.with_network(config.network.with_multicast(multicast))
            cluster = Cluster(config)
            counter = cluster.create(Counter, node=cluster.nodes[0])
            for node in cluster.nodes[1:]:
                cluster.call(counter, "get", node=node)  # three replicas
            cluster.call(counter, "add", 1, node=cluster.nodes[0])
            return cluster.network_stats.category_messages(
                MessageCategory.UPDATE_PUSH
            )

        assert run(False) == 3
        assert run(True) == 1

    def test_multicast_preserves_correctness(self):
        workload = generate_workload(SMALL, seed=23)
        config = ClusterConfig(num_nodes=4, protocol="rc", seed=23)
        config = config.with_network(config.network.with_multicast(True))
        cluster = Cluster(config)
        run = run_workload(cluster, workload)
        assert run.failed == 0
        assert check_serializability(cluster).equivalent


@shared_class
class Runner:
    """Root driver whose args name exactly the objects it will touch —
    the prefetcher's conservative target prediction is then precise."""

    hops = Attr(size=8, default=0)

    @method
    def visit(self, ctx, targets, amount):
        for target in targets:
            yield ctx.invoke(target, "add", amount)
        self.hops += 1
        return self.hops


class TestPrefetch:
    def make_cluster(self, mode, seed=6):
        return make_cluster(protocol="lotec", prefetch=mode, seed=seed)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(prefetch="always")

    @pytest.mark.parametrize("mode", ["locks", "locks+pages"])
    def test_prefetch_correct_results(self, mode):
        cluster = self.make_cluster(mode)
        counters = [cluster.create(Counter) for _ in range(4)]
        runner = cluster.create(Runner)
        cluster.call(runner, "visit", tuple(counters), 3)
        for counter in counters:
            assert cluster.read_attr(counter, "value") == 3
        assert cluster.lock_stats.prefetch_granted >= 1

    def test_prefetched_locks_served_locally(self):
        baseline = self.make_cluster("off")
        prefetched = self.make_cluster("locks+pages")
        for cluster in (baseline, prefetched):
            counters = [cluster.create(Counter) for _ in range(4)]
            runner = cluster.create(Runner)
            cluster.call(runner, "visit", tuple(counters), 1)
        # With prefetch the sub-transactions find retained locks and
        # acquire locally instead of globally.
        assert prefetched.lock_stats.local_acquisitions > \
            baseline.lock_stats.local_acquisitions

    def test_prefetch_denied_on_busy_lock_no_block(self):
        cluster = self.make_cluster("locks")
        counter = cluster.create(Counter)
        runner = cluster.create(Runner)
        # Saturate the counter with writers, interleaving runner roots:
        # prefetch requests that find the lock busy must give up, never
        # deadlock, and all work must still commit.
        for index in range(6):
            cluster.submit(counter, "add", 1)
            cluster.submit(runner, "visit", (counter,), 1)
        cluster.run()
        assert cluster.read_attr(counter, "value") == 12
        assert cluster.lock_stats.prefetch_denied >= 1

    @pytest.mark.parametrize("mode", ["off", "locks", "locks+pages"])
    def test_prefetch_serializable_on_random_workload(self, mode):
        workload = generate_workload(SMALL, seed=24)
        cluster = Cluster(ClusterConfig(
            num_nodes=4, protocol="lotec", seed=24, prefetch=mode,
        ))
        run = run_workload(cluster, workload)
        assert run.committed + run.failed == SMALL.num_roots
        assert check_serializability(cluster).equivalent

    def test_prefetch_with_cotec_stays_current(self):
        # Exhaustive protocols must not see stale pages even when the
        # lock came from a prefetch (deferred transfer at first use).
        cluster = make_cluster(protocol="cotec", prefetch="locks", seed=7)
        counters = [cluster.create(Counter) for _ in range(3)]
        runner = cluster.create(Runner)
        cluster.call(counters[0], "add", 5, node=cluster.nodes[2])
        cluster.call(runner, "visit", tuple(counters), 1,
                     node=cluster.nodes[1])
        assert cluster.read_attr(counters[0], "value") == 6
