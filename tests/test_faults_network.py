"""Network-layer fault injection: drops, retransmission, duplication,
jitter, and the synchronous charge path."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net import Message, MessageCategory, Network, NetworkConfig
from repro.sim import Environment
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG

N0, N1 = NodeId(0), NodeId(1)

#: 1 ms serialization for a 1000-byte message, plus 1 ms software cost.
CONFIG = NetworkConfig(bandwidth_bps=8e6, software_cost_s=1e-3,
                       propagation_s=0.0)
TRANSFER = 2e-3


def msg(size=1000):
    return Message(src=N0, dst=N1, category=MessageCategory.PAGE_DATA,
                   size_bytes=size)


def faulty_net(plan, seed=1):
    env = Environment()
    injector = FaultInjector(plan, SeededRNG(seed))
    return env, Network(env, CONFIG, injector=injector), injector


class TestRetransmission:
    def test_certain_drops_still_deliver(self):
        # drop_probability=1.0 drops every attempt inside the limit;
        # attempt == limit is then lossless, so exactly `limit` drops
        # precede one delivery.
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=3,
                         retransmit_timeout_s=0.001)
        env, net, injector = faulty_net(plan)
        message = msg()
        done = net.send(message)
        env.run()
        assert done.triggered and done.value is message
        assert injector.stats.messages_dropped == 3
        assert injector.stats.retransmissions == 3
        # Every attempt occupies the wire and is accounted.
        assert net.stats.total_messages == 4
        assert net.stats.total_bytes == 4000

    def test_delivery_time_includes_retransmit_timeouts(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, net, _ = faulty_net(plan)
        message = msg()
        net.send(message)
        env.run()
        # Two lost attempts (transfer + timeout each), then one delivery.
        expected = 2 * (TRANSFER + 0.001) + TRANSFER
        assert message.deliver_time == pytest.approx(expected)

    def test_no_drops_matches_clean_network(self):
        env, net, injector = faulty_net(FaultPlan())
        message = msg()
        net.send(message)
        env.run()
        assert message.deliver_time == pytest.approx(TRANSFER)
        assert injector.stats.snapshot() == {
            key: 0 for key in injector.stats.snapshot()
        }


class TestDuplication:
    def test_duplicate_accounted_twice(self):
        plan = FaultPlan(duplicate_probability=1.0)
        env, net, injector = faulty_net(plan)
        done = net.send(msg())
        env.run()
        assert done.triggered
        # One logical send, two wire copies — and exactly one delivery
        # event (the duplicate is redundant traffic, not a double fire).
        assert net.stats.total_messages == 2
        assert injector.stats.messages_duplicated == 1


class TestJitter:
    def test_jitter_delays_delivery(self):
        plan = FaultPlan(delay_jitter_s=0.005)
        env, net, injector = faulty_net(plan)
        message = msg()
        net.send(message)
        env.run()
        assert TRANSFER <= message.deliver_time <= TRANSFER + 0.005
        assert message.deliver_time == pytest.approx(
            TRANSFER + injector.stats.delay_injected_s)


class TestChargePath:
    def test_charge_adds_retransmit_cost(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, net, injector = faulty_net(plan)
        elapsed = net.charge(msg())
        assert elapsed == pytest.approx(2 * (TRANSFER + 0.001) + TRANSFER)
        assert injector.stats.messages_dropped == 2
        assert net.stats.total_messages == 3
        # charge is synchronous: nothing was scheduled on the clock.
        assert env.peek() == float("inf")

    def test_charge_never_blocks_on_crash_window(self):
        from repro.faults import CrashEvent

        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=10.0),
        ))
        env, net, _ = faulty_net(plan)
        # The destination is down for the whole run, but charge's clock
        # is frozen: it must complete rather than retransmit forever.
        assert net.charge(msg()) == pytest.approx(TRANSFER)
