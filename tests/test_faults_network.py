"""Network-layer fault injection: drops, retransmission, duplication,
jitter, and the synchronous charge path."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net import Message, MessageCategory, Network, NetworkConfig
from repro.sim import Environment
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG

N0, N1 = NodeId(0), NodeId(1)

#: 1 ms serialization for a 1000-byte message, plus 1 ms software cost.
CONFIG = NetworkConfig(bandwidth_bps=8e6, software_cost_s=1e-3,
                       propagation_s=0.0)
TRANSFER = 2e-3


def msg(size=1000):
    return Message(src=N0, dst=N1, category=MessageCategory.PAGE_DATA,
                   size_bytes=size)


def faulty_net(plan, seed=1):
    env = Environment()
    injector = FaultInjector(plan, SeededRNG(seed))
    return env, Network(env, CONFIG, injector=injector), injector


class TestRetransmission:
    def test_certain_drops_still_deliver(self):
        # drop_probability=1.0 drops every attempt inside the limit;
        # attempt == limit is then lossless, so exactly `limit` drops
        # precede one delivery.
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=3,
                         retransmit_timeout_s=0.001)
        env, net, injector = faulty_net(plan)
        message = msg()
        done = net.send(message)
        env.run()
        assert done.triggered and done.value is message
        assert injector.stats.messages_dropped == 3
        assert injector.stats.retransmissions == 3
        # Every attempt occupies the wire and is accounted.
        assert net.stats.total_messages == 4
        assert net.stats.total_bytes == 4000

    def test_delivery_time_includes_retransmit_timeouts(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, net, _ = faulty_net(plan)
        message = msg()
        net.send(message)
        env.run()
        # Two lost attempts (transfer + escalating backoff timeout
        # each: base, then 2x base), then one delivery.
        expected = (TRANSFER + 0.001) + (TRANSFER + 0.002) + TRANSFER
        assert message.deliver_time == pytest.approx(expected)

    def test_no_drops_matches_clean_network(self):
        env, net, injector = faulty_net(FaultPlan())
        message = msg()
        net.send(message)
        env.run()
        assert message.deliver_time == pytest.approx(TRANSFER)
        assert injector.stats.snapshot() == {
            key: 0 for key in injector.stats.snapshot()
        }


class TestDuplication:
    def test_duplicate_accounted_twice(self):
        plan = FaultPlan(duplicate_probability=1.0)
        env, net, injector = faulty_net(plan)
        done = net.send(msg())
        env.run()
        assert done.triggered
        # One logical send, two wire copies — and exactly one delivery
        # event (the duplicate is redundant traffic, not a double fire).
        assert net.stats.total_messages == 2
        assert injector.stats.messages_duplicated == 1


class TestJitter:
    def test_jitter_delays_delivery(self):
        plan = FaultPlan(delay_jitter_s=0.005)
        env, net, injector = faulty_net(plan)
        message = msg()
        net.send(message)
        env.run()
        assert TRANSFER <= message.deliver_time <= TRANSFER + 0.005
        assert message.deliver_time == pytest.approx(
            TRANSFER + injector.stats.delay_injected_s)


class TestChargePath:
    def test_charge_adds_retransmit_cost(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, net, injector = faulty_net(plan)
        elapsed = net.charge(msg())
        assert elapsed == pytest.approx(
            (TRANSFER + 0.001) + (TRANSFER + 0.002) + TRANSFER)
        assert injector.stats.messages_dropped == 2
        assert net.stats.total_messages == 3
        # charge is synchronous: nothing was scheduled on the clock.
        assert env.peek() == float("inf")

    def test_charge_never_blocks_on_crash_window(self):
        from repro.faults import CrashEvent

        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=10.0),
        ))
        env, net, _ = faulty_net(plan)
        # The destination is down for the whole run, but charge's clock
        # is frozen: it must complete rather than retransmit forever.
        assert net.charge(msg()) == pytest.approx(TRANSFER)


class TestSendTimePreservation:
    def test_send_time_pins_first_attempt(self):
        # Retransmissions must not overwrite send_time: the message's
        # latency (deliver - send) spans every retransmit turnaround.
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, net, _ = faulty_net(plan)
        message = msg()

        def late_send():
            yield env.timeout(0.5)  # start late, not at t=0
            net.send(message)

        env.run_process(late_send())
        env.run()
        assert message.send_time == pytest.approx(0.5)
        assert message.deliver_time - message.send_time == pytest.approx(
            (TRANSFER + 0.001) + (TRANSFER + 0.002) + TRANSFER)

    def test_attempts_accounted_in_stats(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=3,
                         retransmit_timeout_s=0.001)
        env, net, _ = faulty_net(plan)
        net.send(msg())
        clean = msg()
        clean.wire_id = None
        net.send(clean)
        env.run()
        # First message: 3 drops + 1 delivery = 4 attempts; the second
        # message's draws are keyed by its own wire id, so with this
        # seed it also retries independently of the first.
        stats = net.stats
        assert stats.total_attempts == sum(
            attempts * count for attempts, count in stats.by_attempts.items()
        )
        assert sum(stats.by_attempts.values()) == 2
        assert stats.by_attempts[4] >= 1
        assert stats.snapshot()["total_attempts"] == stats.total_attempts


class TestSendChargeParity:
    """Drop + duplicate + jitter draws are keyed per (wire id, attempt),
    so the asynchronous send loop and the synchronous charge loop make
    byte-identical accounting decisions for the same wire messages."""

    PLAN = FaultPlan(drop_probability=0.3, duplicate_probability=0.25,
                     delay_jitter_s=0.002, retransmit_limit=4,
                     retransmit_timeout_s=0.001)

    def run_send(self, count, seed=9):
        env, net, injector = faulty_net(self.PLAN, seed=seed)
        messages = [msg() for _ in range(count)]
        for message in messages:
            net.send(message)
        env.run()
        return net, injector, messages

    def run_charge(self, count, seed=9):
        env, net, injector = faulty_net(self.PLAN, seed=seed)
        messages = [msg() for _ in range(count)]
        for message in messages:
            net.charge(message)
        return net, injector, messages

    def test_accounting_is_byte_identical_across_paths(self):
        sent_net, sent_inj, sent = self.run_send(20)
        charged_net, charged_inj, charged = self.run_charge(20)
        # Same wire ids in the same order -> same keyed draws -> the
        # two paths agree message by message...
        for sent_msg, charged_msg in zip(sent, charged):
            assert sent_msg.wire_id == charged_msg.wire_id
            assert sent_msg.attempts == charged_msg.attempts
            assert sent_msg.deliver_time == pytest.approx(
                charged_msg.deliver_time)
        # ...and in aggregate, down to the exact bytes and fault tally
        # (total_time is a float sum whose order differs between the
        # event loop and the synchronous loop — 1-ulp tolerance).
        sent_snapshot = sent_net.stats.snapshot()
        charged_snapshot = charged_net.stats.snapshot()
        assert sent_snapshot.keys() == charged_snapshot.keys()
        for key, value in sent_snapshot.items():
            if isinstance(value, float):
                assert value == pytest.approx(charged_snapshot[key]), key
            else:
                assert value == charged_snapshot[key], key
        assert sent_inj.stats.snapshot() == pytest.approx(
            charged_inj.stats.snapshot())
        # The scenario exercised all three fault kinds.
        assert sent_inj.stats.messages_dropped > 0
        assert sent_inj.stats.messages_duplicated > 0
        assert sent_inj.stats.delay_injected_s > 0

    def test_duplicate_of_dropped_attempt_accounted_on_both_paths(self):
        # Drop and duplicate can hit the same attempt; both wire
        # copies burn accounted time on either path.
        plan = FaultPlan(drop_probability=1.0, duplicate_probability=1.0,
                         retransmit_limit=1, retransmit_timeout_s=0.001)
        env, net, _ = faulty_net(plan)
        done = net.send(msg())
        env.run()
        assert done.triggered
        # Attempt 0 (dropped, duplicated) + attempt 1 (delivered,
        # duplicated) = 4 wire copies.
        assert net.stats.total_messages == 4
        env2, charge_net, _ = faulty_net(plan)
        charge_net.charge(msg())
        assert charge_net.stats.total_messages == 4
        assert charge_net.stats.snapshot() == net.stats.snapshot()
