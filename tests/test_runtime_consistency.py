"""Integration tests: data actually moves correctly between nodes
under every consistency protocol."""

import pytest

from repro import ProtocolError, check_serializability
from repro.net.message import MessageCategory

from conftest import Counter, Ledger, make_cluster


class TestCrossNodeVisibility:
    def test_update_visible_from_every_node(self, any_protocol_cluster):
        cluster = any_protocol_cluster
        counter = cluster.create(Counter, node=cluster.nodes[0])
        cluster.call(counter, "add", 5, node=cluster.nodes[1])
        # Read from every other node in turn: each must see 5 + its adds.
        expected = 5
        for node in cluster.nodes:
            assert cluster.call(counter, "get", node=node) == expected
            expected = cluster.call(counter, "add", 1, node=node)
        assert cluster.read_attr(counter, "value") == 5 + len(cluster.nodes)

    def test_pingpong_increments_never_lost(self, any_protocol_cluster):
        cluster = any_protocol_cluster
        counter = cluster.create(Counter)
        for index in range(12):
            cluster.call(counter, "add", 1,
                         node=cluster.nodes[index % len(cluster.nodes)])
        assert cluster.read_attr(counter, "value") == 12

    def test_multi_page_attributes_move_independently(self, any_protocol_cluster):
        cluster = any_protocol_cluster
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 3, node=cluster.nodes[1])
        cluster.call(ledger, "bump_beta", 4, node=cluster.nodes[2])
        cluster.call(ledger, "log_entry", 7, 11, node=cluster.nodes[3])
        assert cluster.call(ledger, "sum_all", node=cluster.nodes[0]) == 18
        state = cluster.read_object(ledger)
        assert state["alpha"] == 3 and state["beta"] == 4
        assert state["log"][7] == 11


class TestProtocolTrafficShape:
    def run_handoffs(self, protocol):
        cluster = make_cluster(protocol=protocol, seed=2)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        # Alternate single-attribute updates from two other nodes: each
        # handoff moves only what the protocol decides to move.
        for index in range(6):
            node = cluster.nodes[1 + index % 2]
            cluster.call(ledger, "bump_alpha", 1, node=node)
        return cluster

    def test_bytes_ordering_cotec_otec_lotec(self):
        data = {
            protocol: self.run_handoffs(protocol)
            .network_stats.consistency_bytes()
            for protocol in ("cotec", "otec", "lotec")
        }
        assert data["cotec"] >= data["otec"] >= data["lotec"]
        assert data["lotec"] < data["cotec"]

    def test_lotec_moves_only_predicted_pages(self):
        cluster = self.run_handoffs("lotec")
        sizes = cluster.config.sizes
        stats = cluster.network_stats
        page_messages = stats.category_messages(MessageCategory.PAGE_DATA)
        page_bytes = stats.category_bytes(MessageCategory.PAGE_DATA)
        # bump_alpha touches one page: every data message carries 1 page.
        assert page_bytes == page_messages * sizes.page_data(1)

    def test_cotec_ships_whole_object_every_handoff(self):
        cluster = self.run_handoffs("cotec")
        ledger_pages = 4  # 3x3000B + 16x500B on 4096B pages
        sizes = cluster.config.sizes
        stats = cluster.network_stats
        per_handoff = sizes.page_data(ledger_pages)
        assert stats.category_bytes(MessageCategory.PAGE_DATA) >= \
            5 * per_handoff  # 6 handoffs, first from creator node included

    def test_rc_pushes_updates_eagerly(self):
        cluster = make_cluster(protocol="rc", seed=2)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        # Warm caches at two other nodes.
        cluster.call(counter, "get", node=cluster.nodes[1])
        cluster.call(counter, "get", node=cluster.nodes[2])
        before = cluster.network_stats.category_messages(
            MessageCategory.UPDATE_PUSH
        )
        cluster.call(counter, "add", 1, node=cluster.nodes[1])
        after = cluster.network_stats.category_messages(
            MessageCategory.UPDATE_PUSH
        )
        # Pushed to the two other caching sites (creator + reader).
        assert after - before == 2

    def test_rc_readers_find_local_copy_current(self):
        cluster = make_cluster(protocol="rc", seed=2)
        counter = cluster.create(Counter, node=cluster.nodes[0])
        cluster.call(counter, "get", node=cluster.nodes[1])  # cold fetch
        cluster.call(counter, "add", 1, node=cluster.nodes[0])
        before = cluster.network_stats.category_messages(
            MessageCategory.PAGE_DATA
        )
        assert cluster.call(counter, "get", node=cluster.nodes[1]) == 1
        after = cluster.network_stats.category_messages(
            MessageCategory.PAGE_DATA
        )
        assert after == before  # push already made the copy current


class TestDemandFetch:
    def test_unpredicted_read_demand_fetched_under_lotec(self):
        cluster = make_cluster(protocol="lotec", seed=4)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        # Dirty gamma's page remotely so node 2's copy of it is stale.
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[2])
        cluster.call(ledger, "bump_beta", 2, node=cluster.nodes[1])

        # Node 2 now acquires via bump_alpha (predicts alpha's page
        # only), then the family's sum_all needs beta/gamma/log pages
        # that were never transferred -> demand fetches.
        from repro import Attr, method, shared_class

        @shared_class
        class Driver:
            n = Attr(size=8, default=0)

            @method
            def go(self, ctx, ledger):
                yield ctx.invoke(ledger, "bump_alpha", 1)
                total = yield ctx.invoke(ledger, "sum_all")
                self.n += 1
                return total

        driver = cluster.create(Driver, node=cluster.nodes[2])
        total = cluster.call(driver, "go", ledger, node=cluster.nodes[2])
        assert total == 4  # alpha bumped twice (1+1), beta 2, gamma 0
        assert cluster.prediction_stats.demand_fetches > 0

    def test_exhaustive_protocols_never_demand_fetch(self):
        for protocol in ("cotec", "otec"):
            cluster = make_cluster(protocol=protocol, seed=4)
            ledger = cluster.create(Ledger)
            for index in range(6):
                node = cluster.nodes[index % len(cluster.nodes)]
                cluster.call(ledger, "bump_alpha", 1, node=node)
                cluster.call(ledger, "sum_all", node=node)
            assert cluster.prediction_stats.demand_fetches == 0


class TestStaleDetection:
    def test_stale_access_raises_for_exhaustive_protocol(self):
        """If OTEC somehow left a page stale, the access layer must
        refuse rather than silently read old data."""
        cluster = make_cluster(protocol="otec", seed=5)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[1])
        # Corrupt node 0's copy: pretend its page is older than it is.
        oid = ledger.object_id
        entry = cluster.directory.entry(oid)
        page = next(iter(ledger.meta.layout.attribute_pages("alpha")))
        entry.page_map[page].version += 5  # force staleness everywhere
        with pytest.raises(ProtocolError, match="stale"):
            cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[0])


class TestObjectGrainTransfers:
    def test_object_grain_ships_fewer_bytes(self):
        def run(grain):
            cluster = make_cluster(protocol="lotec", seed=6,
                                   transfer_grain=grain)
            counter = cluster.create(Counter, node=cluster.nodes[0])
            for index in range(6):
                cluster.call(counter, "add", 1,
                             node=cluster.nodes[index % 4])
            assert cluster.read_attr(counter, "value") == 6
            return cluster.network_stats.consistency_bytes()

        # Counter's data is 16 bytes on a 4096-byte page: object grain
        # avoids shipping the page padding (false sharing, §4.2).
        assert run("object") < run("page") / 10
