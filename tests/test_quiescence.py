"""Quiescence invariants: when the simulation drains, nothing is left
holding, retaining, waiting, or blocked — every completed run returns
the lock system to a clean state."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runtime import Cluster, ClusterConfig
from repro.workload import WorkloadParams, generate_workload, run_workload


def assert_quiescent(cluster):
    assert cluster.lockmgr._blocked == {}
    for object_id, entry in cluster.directory.entries().items():
        assert entry.is_free, (object_id, entry.holders, entry.retainers)
        assert not entry.has_waiters(), object_id
        assert entry.lock_state.value == "free"
    assert cluster.directory.deadlock.edges() == {}
    # Every root's deferred delay was consumed.
    for record in cluster.commit_log:
        assert record.time >= 0


@pytest.mark.parametrize("protocol", ["cotec", "otec", "lotec", "hlotec", "rc"])
def test_quiescent_after_contended_run(protocol):
    params = WorkloadParams(num_objects=6, num_classes=2, num_roots=25,
                            pages_min=1, pages_max=4, skew=1.0)
    workload = generate_workload(params, seed=17)
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol, seed=17))
    run_workload(cluster, workload)
    assert_quiescent(cluster)


@pytest.mark.parametrize("prefetch", ["locks", "locks+pages"])
def test_quiescent_with_prefetch(prefetch):
    params = WorkloadParams(num_objects=10, num_classes=3, num_roots=20,
                            pages_min=1, pages_max=3)
    workload = generate_workload(params, seed=18)
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec", seed=18,
                                    prefetch=prefetch))
    run_workload(cluster, workload)
    assert_quiescent(cluster)


def test_quiescent_after_faulty_run():
    params = WorkloadParams(num_objects=8, num_classes=2, num_roots=30,
                            pages_min=1, pages_max=3,
                            abort_probability=0.3)
    workload = generate_workload(params, seed=19)
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec", seed=19))
    run_workload(cluster, workload)
    assert_quiescent(cluster)


@given(seed=st.integers(0, 10_000),
       skew=st.floats(0, 2),
       roots=st.integers(1, 18))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_quiescence_property(seed, skew, roots):
    params = WorkloadParams(num_objects=5, num_classes=2, num_roots=roots,
                            pages_min=1, pages_max=3, skew=skew,
                            abort_probability=0.1)
    workload = generate_workload(params, seed=seed)
    cluster = Cluster(ClusterConfig(num_nodes=3, protocol="lotec",
                                    seed=seed))
    run_workload(cluster, workload)
    assert_quiescent(cluster)
