"""Tests for the user-facing TxnContext surface and executor timing."""

import pytest

from repro import Attr, ProtocolError, method, shared_class
from repro.util.ids import TxnId

from conftest import Counter, Ledger, make_cluster


@shared_class
class Introspector:
    seen_node = Attr(size=8, default=0)
    seen_time = Attr(size=8, default=0)

    @method
    def observe(self, ctx):
        self.seen_node = ctx.node.value
        self.seen_time = int(ctx.now * 1e9)
        return (ctx.txn_id, ctx.node, ctx.now)


class TestContextProperties:
    def test_txn_identity_exposed(self):
        cluster = make_cluster()
        probe = cluster.create(Introspector)
        txn_id, node, now = cluster.call(probe, "observe",
                                         node=cluster.nodes[2])
        assert isinstance(txn_id, TxnId)
        assert txn_id.is_root
        assert node == cluster.nodes[2]
        assert now >= 0.0
        assert cluster.read_attr(probe, "seen_node") == 2

    def test_sub_txn_gets_child_identity(self):
        @shared_class
        class Wrapper:
            x = Attr(size=8, default=0)

            @method
            def wrap(self, ctx, probe):
                child_result = yield ctx.invoke(probe, "observe")
                return (ctx.txn_id, child_result[0])

        cluster = make_cluster()
        probe = cluster.create(Introspector)
        wrapper = cluster.create(Wrapper)
        parent_id, child_id = cluster.call(wrapper, "wrap", probe)
        assert parent_id.is_root
        assert not child_id.is_root
        assert child_id.root == parent_id.serial

    def test_cross_object_direct_access_refused(self):
        """The proxy of one object must not be usable to reach another
        object's slots (other objects only via ctx.invoke)."""
        cluster = make_cluster()
        ledger = cluster.create(Ledger)
        counter = cluster.create(Counter)
        ctx_holder = {}

        @shared_class
        class Thief:
            x = Attr(size=8, default=0)

            @method
            def steal(self, ctx, victim_meta):
                ctx_holder["ctx"] = ctx
                return self.x

        thief = cluster.create(Thief)
        cluster.call(thief, "steal", None)
        ctx = ctx_holder["ctx"]
        with pytest.raises(ProtocolError, match="ctx.invoke"):
            ctx.read_slot(counter.meta, ("value", 0))


class TestDemandFetchDelayAccounting:
    def test_deferred_delay_advances_clock(self):
        """A LOTEC demand fetch charges its network time at the next
        suspension point: the commit happens later than a run where
        everything was predicted."""
        cluster = make_cluster(protocol="lotec", seed=4)
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_beta", 2, node=cluster.nodes[1])

        @shared_class
        class Driver:
            n = Attr(size=8, default=0)

            @method
            def go(self, ctx, target):
                yield ctx.invoke(target, "bump_alpha", 1)
                total = yield ctx.invoke(target, "sum_all")
                self.n += 1
                return total

        driver = cluster.create(Driver, node=cluster.nodes[2])
        before_fetches = cluster.prediction_stats.demand_fetches
        start = cluster.env.now
        cluster.call(driver, "go", ledger, node=cluster.nodes[2])
        elapsed = cluster.env.now - start
        fetches = cluster.prediction_stats.demand_fetches - before_fetches
        assert fetches > 0
        # Every fetch's round trip is at least two software costs.
        min_delay = fetches * 2 * cluster.config.network.software_cost_s
        assert elapsed > min_delay


class TestRetryBackoff:
    def test_retries_are_spaced_in_time(self):
        """Deadlock retries wait an exponential, jittered backoff: the
        retried commit lands later than the conflict-free path."""
        from repro import Attr, method, shared_class

        @shared_class
        class Grabber:
            done = Attr(size=8, default=0)

            @method
            def both(self, ctx, first, second):
                yield ctx.invoke(first, "add", 1)
                yield ctx.invoke(second, "add", 1)
                self.done += 1

        cluster = make_cluster(protocol="lotec", seed=3,
                               retry_backoff_s=0.05)
        a = cluster.create(Counter, node=cluster.nodes[0])
        b = cluster.create(Counter, node=cluster.nodes[1])
        g1 = cluster.create(Grabber, node=cluster.nodes[2])
        g2 = cluster.create(Grabber, node=cluster.nodes[3])
        cluster.submit(g1, "both", a, b, node=cluster.nodes[2])
        cluster.submit(g2, "both", b, a, node=cluster.nodes[3])
        cluster.run()
        assert cluster.read_attr(a, "value") == 2
        if cluster.lock_stats.deadlocks:
            # With a 50ms backoff base, the victim's retry pushes the
            # end of the run past the backoff floor.
            assert cluster.env.now > 0.05
