"""Golden-digest regression: the Transport refactor is byte-invisible.

These SHA-256 digests were captured from the pre-refactor ``Network``
on the standard scenario and verified unchanged after ``SimTransport``
replaced it.  Any future change that perturbs the simulation
backend's event schedule, accounting order, or trace serialization —
however subtly — flips the digest and fails here, pointing straight
at a behavioural (not just cosmetic) divergence.

The digests cover the *JSONL event body only* (no clock header), so
they are independent of the trace-file framing.
"""

import hashlib

import pytest

from repro.obs.export import events_to_jsonl
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

# (scale, seed) -> (sha256 of events_to_jsonl, event count, commits)
# Re-captured when root ``txn.start`` instants were added to the trace
# (crash-recovery PR): the commit counts — the behavioural invariant —
# were unchanged by that re-capture.
GOLDENS = {
    (0.1, 11): (
        "e3a3011633b237f6c7911b362354da3c8d377ecc5c8c3bf76b90dba0d694ec3b",
        646, 12,
    ),
    (0.25, 2): (
        "a9e31efd2377dbba6371da80be2e6f5bf11a5c2e1e85f4d80962988ce4527604",
        3197, 30,
    ),
}


def run_digest(scale, seed):
    params = SCENARIOS["medium-high"].scaled(scale)
    workload = generate_workload(params, seed=seed)
    cluster = Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed,
        audit_accesses=False, trace=True,
    ))
    run = run_workload(cluster, workload)
    jsonl = events_to_jsonl(cluster.tracer.events)
    digest = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
    return digest, len(cluster.tracer.events), run.committed


def test_small_scale_trace_digest_is_golden():
    scale_seed = (0.1, 11)
    assert run_digest(*scale_seed) == GOLDENS[scale_seed]


@pytest.mark.slow
def test_medium_scale_trace_digest_is_golden():
    scale_seed = (0.25, 2)
    assert run_digest(*scale_seed) == GOLDENS[scale_seed]
