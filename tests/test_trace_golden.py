"""Golden-digest regression: the Transport refactor is byte-invisible.

These SHA-256 digests were captured from the pre-refactor ``Network``
on the standard scenario and verified unchanged after ``SimTransport``
replaced it.  Any future change that perturbs the simulation
backend's event schedule, accounting order, or trace serialization —
however subtly — flips the digest and fails here, pointing straight
at a behavioural (not just cosmetic) divergence.

The digests cover the *JSONL event body only* (no clock header), so
they are independent of the trace-file framing.
"""

import hashlib

import pytest

from repro.obs.export import events_to_jsonl
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

# (scale, seed) -> (sha256 of events_to_jsonl, event count, commits)
GOLDENS = {
    (0.1, 11): (
        "7786886c52dca73f88753422fc2d88550c3d9415635c5edee8d964ba427e9ccf",
        632, 12,
    ),
    (0.25, 2): (
        "abed2ed75dffca53dc031cca23a0c69f7ddbec4cddce3002fbf84d765861206c",
        3116, 30,
    ),
}


def run_digest(scale, seed):
    params = SCENARIOS["medium-high"].scaled(scale)
    workload = generate_workload(params, seed=seed)
    cluster = Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed,
        audit_accesses=False, trace=True,
    ))
    run = run_workload(cluster, workload)
    jsonl = events_to_jsonl(cluster.tracer.events)
    digest = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
    return digest, len(cluster.tracer.events), run.committed


def test_small_scale_trace_digest_is_golden():
    scale_seed = (0.1, 11)
    assert run_digest(*scale_seed) == GOLDENS[scale_seed]


@pytest.mark.slow
def test_medium_scale_trace_digest_is_golden():
    scale_seed = (0.25, 2)
    assert run_digest(*scale_seed) == GOLDENS[scale_seed]
