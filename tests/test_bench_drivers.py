"""Fast tests of the experiment drivers and the ASCII reporting."""

import pytest

from repro.bench import (
    format_series_table,
    format_table,
    run_bytes_figure,
    run_claims_messages,
    run_gdo_cache_ablation,
    run_object_grain_ablation,
    run_rc_ablation,
    run_time_figure,
)

TINY = dict(seed=3, scale=0.08, num_nodes=3)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "count"], [["alpha", 12345], ["b", 7]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "12,345" in lines[2]
        assert len(lines) == 4

    def test_format_series_table(self):
        text = format_series_table(
            "title", "x", {"s1": {"a": 1, "b": 2}, "s2": {"a": 3}}
        )
        assert text.startswith("title")
        assert "s1" in text and "s2" in text
        # Missing points render empty, not crash.
        assert "b" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.0001234], [1.5], [2.0]])
        assert "1.234e-04" in text
        assert "1.5" in text


class TestBytesFigureDriver:
    def test_same_axis_across_protocols(self):
        result = run_bytes_figure("medium-high", objects_shown=6, **TINY)
        axes = [tuple(points) for points in result.series.values()]
        assert len(set(axes)) == 1
        assert len(axes[0]) <= 6

    def test_meta_totals_present(self):
        result = run_bytes_figure("medium-high", objects_shown=4, **TINY)
        for key in ("total_data_bytes", "total_messages", "committed"):
            assert set(result.meta[key]) == {"cotec", "otec", "lotec"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_bytes_figure("nope", **TINY)

    def test_totals_helper(self):
        result = run_bytes_figure("medium-high", objects_shown=4, **TINY)
        totals = result.totals()
        for protocol, total in totals.items():
            assert total == sum(result.series[protocol].values())

    def test_render_contains_objects(self):
        result = run_bytes_figure("medium-high", objects_shown=3, **TINY)
        text = result.render()
        assert "cotec" in text and "O" in text


class TestTimeFigureDriver:
    def test_sweep_points(self):
        result = run_time_figure(
            "100Mbps", software_costs=["100us", "500ns"], **TINY
        )
        for series in result.series.values():
            assert list(series) == ["100us", "500ns"]
            assert all(value >= 0 for value in series.values())

    def test_times_fall_with_cheaper_messaging(self):
        result = run_time_figure(
            "1Gbps", software_costs=["100us", "500ns"], **TINY
        )
        for series in result.series.values():
            assert series["100us"] >= series["500ns"]

    def test_unknown_bandwidth_rejected(self):
        with pytest.raises(KeyError):
            run_time_figure("9Mbps", **TINY)


class TestAblationDrivers:
    def test_rc_driver_has_five_protocols(self):
        result = run_rc_ablation(**TINY)
        assert set(result.series["data_bytes"]) == {
            "cotec", "otec", "lotec", "hlotec", "rc",
        }

    def test_object_grain_driver(self):
        result = run_object_grain_ablation(**TINY)
        assert set(result.series["data_bytes"]) == {"page", "object"}
        assert result.series["mean_data_message_bytes"]["object"] <= \
            result.series["mean_data_message_bytes"]["page"]

    def test_gdo_cache_driver(self):
        result = run_gdo_cache_ablation(**TINY)
        assert result.series["local_ops"]["uncached"] == 0
        assert result.series["cache_hit_rate"]["uncached"] == 0

    def test_claims_messages_driver(self):
        result = run_claims_messages(**TINY)
        for metric in ("messages", "bytes", "mean_message_bytes"):
            assert set(result.series[metric]) == {"cotec", "otec", "lotec"}


class TestBarChart:
    def test_chart_scales_to_peak(self):
        from repro.bench import format_bar_chart

        text = format_bar_chart(
            "t", {"a": {"x": 100, "y": 50}, "b": {"x": 0}}, width=10
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "##########" in lines[2]   # the peak fills the width
        # zero-valued bar renders empty but still shows its value
        assert "| 0" in lines[3]
        assert lines[5].count("#") == 5   # half the peak, half the bar

    def test_chart_handles_empty_series(self):
        from repro.bench import format_bar_chart

        assert format_bar_chart("t", {}) == "t"

    def test_result_render_chart(self):
        result = run_bytes_figure("medium-high", objects_shown=3, **TINY)
        chart = result.render_chart(width=20)
        assert "cotec" in chart and "#" in chart
