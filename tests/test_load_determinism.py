"""Seed hygiene for the open-loop load engine: every arrival draw
comes from ``SeededRNG(seed).derive("load")``, so (scenario, seed,
scale) fully determines the load — byte-identical across repeats, and
untouched by fault plans riding the same master seed."""

from repro.faults import FAULT_PRESETS, FaultPlan
from repro.gdo import MigrationConfig
from repro.load import build_load, run_load
from repro.obs import events_to_jsonl
from repro.runtime import Cluster, ClusterConfig
from repro.workload import workload_fingerprint


def traced_run(faults=None, migration=None, seed=5, scale=0.25):
    load = build_load("zipf-smoke", seed=seed, scale=scale)
    cluster = Cluster(ClusterConfig(
        num_nodes=load.scenario.clients, seed=seed, protocol="lotec",
        trace=True, faults=faults, migration=migration,
    ))
    run = run_load(cluster, load)
    return load, cluster, run


class TestRepeatsAreByteIdentical:
    def test_same_seed_same_load(self):
        first = build_load("zipf-smoke", seed=9, scale=0.5)
        second = build_load("zipf-smoke", seed=9, scale=0.5)
        assert first.workload.arrival_offsets == \
            second.workload.arrival_offsets
        assert first.clients == second.clients
        assert workload_fingerprint(first.workload) == \
            workload_fingerprint(second.workload)

    def test_same_seed_same_trace_with_migration(self):
        _, cluster_a, _ = traced_run(migration=MigrationConfig())
        _, cluster_b, _ = traced_run(migration=MigrationConfig())
        assert events_to_jsonl(cluster_a.trace_events) == \
            events_to_jsonl(cluster_b.trace_events)
        assert cluster_a.migration_stats.snapshot() == \
            cluster_b.migration_stats.snapshot()

    def test_different_seed_different_arrivals(self):
        first = build_load("zipf-smoke", seed=5, scale=0.5)
        second = build_load("zipf-smoke", seed=6, scale=0.5)
        assert first.workload.arrival_offsets != \
            second.workload.arrival_offsets
        assert workload_fingerprint(first.workload) != \
            workload_fingerprint(second.workload)


class TestFaultPlansCannotPerturbTheLoad:
    def test_fault_plan_leaves_the_schedule_untouched(self):
        # The load is generated before (and independently of) the
        # cluster, so a fault plan on the same master seed must not
        # shift a single arrival or plan tree.
        load_calm, _, _ = traced_run(faults=None)
        load_chaos, _, _ = traced_run(faults=FAULT_PRESETS["chaos"])
        assert load_calm.workload.arrival_offsets == \
            load_chaos.workload.arrival_offsets
        assert workload_fingerprint(load_calm.workload) == \
            workload_fingerprint(load_chaos.workload)

    def test_zero_probability_plan_matches_no_plan(self):
        # Mirrors tests/test_faults_determinism.py for the load path:
        # an all-zero FaultPlan draws nothing and injects nothing, so
        # the run is byte-identical to faults=None.
        _, cluster_plan, run_plan = traced_run(faults=FaultPlan())
        _, cluster_none, run_none = traced_run(faults=None)
        assert events_to_jsonl(cluster_plan.trace_events) == \
            events_to_jsonl(cluster_none.trace_events)
        summary_plan, summary_none = run_plan.summary(), run_none.summary()
        assert summary_plan.pop("faults")["plan"] == "custom"
        assert summary_none.pop("faults")["plan"] is None
        assert summary_plan == summary_none
        # Migration off in both: the summary key says so explicitly.
        assert summary_plan["migration"] is None
