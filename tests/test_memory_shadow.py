"""Unit tests for shadow-page recovery (§4.1's alternative to undo)."""

import pytest

from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.memory.shadow import ShadowLog
from repro.memory.store import NodeStore
from repro.util.ids import NodeId, ObjectId

OID = ObjectId(0)


@pytest.fixture
def store():
    layout = ObjectLayout(
        [AttributeSpec("x", 60), AttributeSpec("y", 60),
         AttributeSpec("z", 60)],
        page_size=100,  # x on p0; y on p0-1; z on p1
    )
    node_store = NodeStore(NodeId(0))
    node_store.create_object(OID, layout,
                             values={("x", 0): 1, ("y", 0): 2, ("z", 0): 3})
    return node_store


def write(store, log, slot, value):
    layout = store.layout_of(OID)
    pages = layout.slot_pages(*slot)
    log.before_write(store, OID, slot, pages)
    store.write_slot(OID, slot, value)


class TestShadowLog:
    def test_restores_all_writes(self, store):
        log = ShadowLog()
        write(store, log, ("x", 0), 100)
        write(store, log, ("z", 0), 300)
        assert log.apply(store) == 2  # x shadowed page 0, z shadowed page 1
        assert store.read_slot(OID, ("x", 0)) == 1
        assert store.read_slot(OID, ("z", 0)) == 3

    def test_one_snapshot_per_page(self, store):
        log = ShadowLog()
        write(store, log, ("x", 0), 10)
        write(store, log, ("x", 0), 20)
        write(store, log, ("x", 0), 30)
        # x occupies one page; y shares it -> one shadow, page 0.
        assert log.pages_shadowed == 1
        log.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 1

    def test_snapshot_taken_before_first_write_only(self, store):
        log = ShadowLog()
        write(store, log, ("x", 0), 10)
        # A later write to y touches pages 0 and 1; page 0 already
        # shadowed with the ORIGINAL x -> restore yields originals.
        write(store, log, ("y", 0), 20)
        log.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 1
        assert store.read_slot(OID, ("y", 0)) == 2

    def test_page_restore_covers_colocated_slots(self, store):
        """Restoring a shadowed page must put back *every* slot on it,
        including ones written after the snapshot without their own
        before_write (same page, so already covered)."""
        log = ShadowLog()
        write(store, log, ("x", 0), 10)   # shadows page 0 (holds x and y-head)
        store.write_slot(OID, ("y", 0), 777)  # unannounced co-located write
        log.apply(store)
        assert store.read_slot(OID, ("y", 0)) == 2

    def test_merge_child_prefers_parent_snapshot(self, store):
        parent, child = ShadowLog(), ShadowLog()
        write(store, parent, ("x", 0), 10)   # parent snapshot: x=1
        write(store, child, ("x", 0), 20)    # child snapshot: x=10
        parent.merge_child(child)
        assert len(child) == 0
        parent.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 1

    def test_merge_child_adopts_new_pages(self, store):
        parent, child = ShadowLog(), ShadowLog()
        write(store, parent, ("x", 0), 10)
        write(store, child, ("z", 0), 30)
        parent.merge_child(child)
        parent.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 1
        assert store.read_slot(OID, ("z", 0)) == 3

    def test_restores_slot_absence(self, store):
        layout = store.layout_of(OID)
        remote = NodeStore(NodeId(1))
        remote.register_object(OID, layout)
        # Only page 0 is present remotely; slot z absent.
        remote.install_pages(OID, store.extract_pages(OID, [0]))
        log = ShadowLog()
        pages = layout.slot_pages("z", 0)
        log.before_write(remote, OID, ("z", 0), pages)
        remote.write_slot(OID, ("z", 0), 99)
        log.apply(remote)
        present, _ = remote.peek_slot(OID, ("z", 0))
        assert not present

    def test_touched_objects(self, store):
        log = ShadowLog()
        write(store, log, ("x", 0), 10)
        assert log.touched_objects() == (OID,)
