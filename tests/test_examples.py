"""Smoke tests: every example application runs end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600, check=True,
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "mean hit ratio" in out
    assert "committed roots" in out


def test_bank_branches():
    out = run_example("bank_branches.py")
    assert out.count("True") >= 4  # all four protocols serializable
    assert "lotec" in out


def test_cad_assembly():
    out = run_example("cad_assembly.py")
    assert "cotec" in out and "lotec" in out
    # The three mass values must agree across protocols.
    masses = [line.split()[1] for line in out.splitlines()
              if line.strip().startswith(("cotec", "otec", "lotec"))]
    assert len(set(masses)) == 1


def test_order_processing():
    out = run_example("order_processing.py")
    assert out.count("True") >= 4
    assert "tps" in out


def test_mixed_protocols():
    out = run_example("mixed_protocols.py")
    assert "pure lotec" in out and "mixed" in out


@pytest.mark.slow
def test_network_sweep_quick_mode():
    out = run_example("network_sweep.py")
    assert "total message time" in out
    assert "OTEC saves" in out


def test_prefetch_latency():
    out = run_example("prefetch_latency.py")
    assert "locks+pages" in out
    assert "hides" in out
