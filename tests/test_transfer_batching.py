"""Per-owner request coalescing: one multi-object gather pays the
software startup cost once per owner, and batching changes message
counts and timing only — never which pages move or what they hold."""

import pytest

from repro.analysis.prediction import AccessPrediction
from repro.core import make_protocol
from repro.core.transfer import GatherTarget, gather_many
from repro.gdo.entry import PageMapEntry
from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.memory.store import NodeStore
from repro.net.message import MessageCategory
from repro.net.network import Network, NetworkConfig
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.objects.schema import ClassSchema
from repro.obs.tracer import Tracer
from repro.sim import Environment
from repro.util.ids import NodeId, ObjectId

from conftest import Counter, Orchestrator, make_cluster

N0, N1, N2 = NodeId(0), NodeId(1), NodeId(2)

LAYOUT = ObjectLayout(
    [AttributeSpec("a", 90), AttributeSpec("b", 90), AttributeSpec("c", 90)],
    page_size=100,
)


def _meta(object_id, home):
    schema = ClassSchema("T", LAYOUT.attributes, methods={"m": None})
    return ObjectMeta(object_id=object_id, schema=schema, layout=LAYOUT,
                      home_node=home, creator_node=home)


def page_map(owners, versions):
    return {
        page: PageMapEntry(owner=owner, version=version)
        for page, (owner, version) in enumerate(zip(owners, versions))
    }


class TestGatherManyBatching:
    """Unit-level: two whole objects owned by one node, gathered to N0."""

    def make_world(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        network = Network(env, NetworkConfig(bandwidth_bps=100e6,
                                             software_cost_s=1e-5),
                          tracer=tracer)
        sizes = SizeModel(page_bytes=100)
        stores = {node: NodeStore(node) for node in (N0, N1)}
        metas = []
        for raw in (1, 2):
            object_id = ObjectId(raw)
            stores[N1].create_object(object_id, LAYOUT)
            stores[N0].register_object(object_id, LAYOUT)
            metas.append(_meta(object_id, N1))
        return env, network, sizes, stores, metas

    def gather(self, env, network, sizes, stores, metas, batch):
        targets = [
            GatherTarget(meta=meta,
                         page_map=page_map([N1, N1, N1], [1, 1, 1]),
                         pages=(0, 1, 2))
            for meta in metas
        ]

        def proc():
            shipped = yield from gather_many(
                env, network, sizes, stores, N0, targets, batch=batch,
            )
            return shipped

        return env.run_process(proc())

    def test_common_owner_coalesces_to_one_wire_pair(self):
        env, network, sizes, stores, metas = self.make_world()
        shipped = self.gather(env, network, sizes, stores, metas, batch=True)
        assert shipped == {ObjectId(1): [0, 1, 2], ObjectId(2): [0, 1, 2]}
        stats = network.stats
        assert stats.total_messages == 2
        assert stats.by_category_messages[MessageCategory.PAGE_REQUEST] == 1
        assert stats.by_category_messages[MessageCategory.PAGE_DATA] == 1
        # Batched sizing: one header plus a per-object manifest entry,
        # instead of one full header per object.
        assert stats.by_category_bytes[MessageCategory.PAGE_REQUEST] == \
            sizes.header_bytes + 2 * sizes.request_entry(3)
        assert stats.by_category_bytes[MessageCategory.PAGE_DATA] == \
            sizes.header_bytes + 2 * sizes.data_entry(3)
        # The two messages saved (one request + one response) land in
        # the batching counter, and the batch is a trace event.
        counters = network.tracer.metrics.snapshot()["counters"]
        assert sum(
            counters["transfer.messages_saved_by_batching"].values()
        ) == 2
        batches = [event for event in network.tracer.events
                   if event.name == "transfer.batch"]
        assert len(batches) == 1
        assert batches[0].args["objects"] == ["O1", "O2"]
        assert batches[0].args["saved_messages"] == 2

    def test_unbatched_pays_one_pair_per_object(self):
        env, network, sizes, stores, metas = self.make_world()
        shipped = self.gather(env, network, sizes, stores, metas, batch=False)
        assert shipped == {ObjectId(1): [0, 1, 2], ObjectId(2): [0, 1, 2]}
        stats = network.stats
        assert stats.total_messages == 4
        assert stats.by_category_messages[MessageCategory.PAGE_REQUEST] == 2
        # Legacy wire format, byte-identical to the classic pair.
        assert stats.by_category_bytes[MessageCategory.PAGE_REQUEST] == \
            2 * sizes.page_request(3)
        assert stats.by_category_bytes[MessageCategory.PAGE_DATA] == \
            2 * sizes.page_data(3)

    def test_per_object_attribution_covers_batched_bytes(self):
        env, network, sizes, stores, metas = self.make_world()
        self.gather(env, network, sizes, stores, metas, batch=True)
        stats = network.stats
        attributed = sum(stats.object_bytes(meta.object_id)
                         for meta in metas)
        assert attributed == stats.total_bytes

    def test_both_modes_install_identical_pages(self):
        batched = self.make_world()
        unbatched = self.make_world()
        self.gather(*batched, batch=True)
        self.gather(*unbatched, batch=False)
        for world in (batched, unbatched):
            stores = world[3]
            for raw in (1, 2):
                assert stores[N0].resident_pages(ObjectId(raw)) == \
                    stores[N1].resident_pages(ObjectId(raw))


class TestClusterBatching:
    """A multi-object prefetch whose targets share an owner must emit
    exactly one PAGE_REQUEST/PAGE_DATA pair (the acceptance bar)."""

    def run_fanout(self, batch):
        cluster = make_cluster(protocol="lotec", seed=3, trace=True,
                               prefetch="locks+pages",
                               batch_transfers=batch)
        counters = [cluster.create(Counter, node=cluster.nodes[1])
                    for _ in range(2)]
        orchestrator = cluster.create(Orchestrator, node=cluster.nodes[0])
        cluster.call(orchestrator, "fanout", tuple(counters), 1,
                     node=cluster.nodes[0])
        for counter in counters:
            assert cluster.read_attr(counter, "value") == 1
        return cluster

    def test_common_owner_prefetch_emits_exactly_one_pair(self):
        cluster = self.run_fanout(batch=True)
        by_category = cluster.network.stats.by_category_messages
        assert by_category[MessageCategory.PAGE_REQUEST] == 1
        assert by_category[MessageCategory.PAGE_DATA] == 1
        counters = cluster.metrics.snapshot()["counters"]
        assert sum(
            counters["transfer.messages_saved_by_batching"].values()
        ) == 2

    def test_unbatched_prefetch_pays_one_pair_per_object(self):
        cluster = self.run_fanout(batch=False)
        by_category = cluster.network.stats.by_category_messages
        assert by_category[MessageCategory.PAGE_REQUEST] == 2
        assert by_category[MessageCategory.PAGE_DATA] == 2
        counters = cluster.metrics.snapshot()["counters"]
        assert "transfer.messages_saved_by_batching" not in counters


class TestBatchingProperty:
    """Batched and unbatched gathers move identical page sets into
    identical stores; only timing and message counts may differ.
    Swept across both transfer grains and all four protocols."""

    OBJECTS = {
        # object id -> (page owners, page-map versions, value of "a")
        1: ((N1, N1, N1), (2, 2, 2), 11),
        2: ((N1, N1, N1), (3, 3, 3), 22),
        3: ((N2, N2, N2), (2, 2, 2), 33),
        4: ((N1, N1, N2), (2, 2, 4), 44),
    }

    def make_world(self):
        env = Environment()
        network = Network(env, NetworkConfig(bandwidth_bps=100e6,
                                             software_cost_s=1e-5))
        sizes = SizeModel(page_bytes=100)
        stores = {node: NodeStore(node) for node in (N0, N1, N2)}
        metas = {}
        for raw, (owners, versions, value) in self.OBJECTS.items():
            object_id = ObjectId(raw)
            stores[N0].create_object(object_id, LAYOUT)
            for node in (N1, N2):
                stores[node].register_object(object_id, LAYOUT)
            for page, (owner, version) in enumerate(zip(owners, versions)):
                stores[owner].install_pages(
                    object_id, stores[N0].extract_pages(object_id, [page]))
                stores[owner].set_page_version(object_id, page, version)
            # Distinct payload on page 0 at its owner, so content (not
            # just version numbers) must survive the transfer.
            stores[owners[0]].write_slot(object_id, ("a", 0), value)
            metas[raw] = _meta(object_id, owners[0])
        return env, network, sizes, stores, metas

    def run_gather(self, protocol_name, grain, batch):
        env, network, sizes, stores, metas = self.make_world()
        protocol = make_protocol(protocol_name, env=env, network=network,
                                 sizes=sizes, stores=stores)
        prediction = AccessPrediction(
            read_pages=frozenset(LAYOUT.all_pages()), write_pages=frozenset())
        targets = []
        for raw, (owners, versions, _value) in sorted(self.OBJECTS.items()):
            object_id = ObjectId(raw)
            mapping = page_map(owners, versions)
            local = {
                page: stores[N0].page_version(object_id, page)
                for page in stores[N0].resident_pages(object_id)
            }
            wanted = protocol.select_pages(metas[raw], mapping, local,
                                           prediction)
            targets.append(GatherTarget(meta=metas[raw], page_map=mapping,
                                        pages=tuple(sorted(wanted))))

        def proc():
            shipped = yield from gather_many(
                env, network, sizes, stores, N0, targets,
                grain=grain, batch=batch,
            )
            return shipped

        shipped = env.run_process(proc())
        return shipped, network.stats, stores

    @pytest.mark.parametrize("protocol", ["cotec", "otec", "lotec", "rc"])
    @pytest.mark.parametrize("grain", ["page", "object"])
    def test_batched_equals_unbatched_modulo_messages(self, protocol, grain):
        batched, batched_stats, batched_stores = \
            self.run_gather(protocol, grain, batch=True)
        unbatched, unbatched_stats, unbatched_stores = \
            self.run_gather(protocol, grain, batch=False)
        # Identical page sets shipped...
        assert batched == unbatched
        # ...into identical stores: same resident versions everywhere,
        # same payload bytes at the acquiring node.
        for raw, (_owners, _versions, value) in self.OBJECTS.items():
            object_id = ObjectId(raw)
            for node in (N0, N1, N2):
                assert batched_stores[node].resident_pages(object_id) == \
                    unbatched_stores[node].resident_pages(object_id)
            assert batched_stores[N0].read_slot(object_id, ("a", 0)) == \
                unbatched_stores[N0].read_slot(object_id, ("a", 0)) == value
        # Only message counts may differ — and only downward.
        assert batched_stats.by_category_messages[
            MessageCategory.PAGE_REQUEST
        ] <= unbatched_stats.by_category_messages[
            MessageCategory.PAGE_REQUEST
        ]
        assert batched_stats.total_messages <= unbatched_stats.total_messages
