"""Unit tests for the optimistic pre-acquisition path in the lock
manager and the supporting entry demotion."""

import pytest

from repro.gdo.entry import LockMode, LockState
from repro.util.errors import ProtocolError

from conftest import Counter, make_cluster


def test_demote_entry_level():
    from repro.gdo.entry import DirectoryEntry
    from repro.util.ids import NodeId, ObjectId, TxnId

    class Stub:
        def __init__(self, serial):
            self.id = TxnId(serial=serial, root=serial)
            self.node = NodeId(0)
            self.parent = None

        def is_ancestor_of(self, other):
            return False

    entry = DirectoryEntry(ObjectId(0), home_node=NodeId(0), page_count=1,
                           creator_node=NodeId(0))
    txn = Stub(1)
    entry.grant(txn, LockMode.WRITE)
    entry.demote_to_retained(txn)
    assert not entry.holders
    assert entry.retainers[txn.id] is LockMode.WRITE
    assert entry.lock_state is LockState.RETAINED
    # Re-acquisition by the retaining transaction itself is allowed.
    from repro.gdo.entry import GrantDecision

    assert entry.decide(txn, LockMode.WRITE) is GrantDecision.GRANTED
    with pytest.raises(ProtocolError):
        entry.demote_to_retained(Stub(2))


class TestTryPrefetch:
    def setup_method(self):
        self.cluster = make_cluster(protocol="lotec", seed=1)
        self.counter = self.cluster.create(Counter,
                                           node=self.cluster.nodes[0])

    def _prefetch(self, node):
        from repro.txn.transaction import Transaction

        txn = Transaction(self.cluster.alloc.next_root_txn(), node)
        result = {}

        def proc():
            snapshot = yield from self.cluster.lockmgr.try_prefetch(
                txn, self.counter.object_id, LockMode.WRITE
            )
            result["snapshot"] = snapshot

        self.cluster.env.run_process(proc())
        return txn, result["snapshot"]

    def test_free_lock_prefetched_and_retained(self):
        txn, snapshot = self._prefetch(self.cluster.nodes[1])
        entry = self.cluster.directory.entry(self.counter.object_id)
        assert snapshot is not None
        assert txn.id in entry.retainers
        assert not entry.holders
        assert self.counter.object_id in txn.lock_objects
        assert self.cluster.lock_stats.prefetch_granted == 1

    def test_busy_lock_not_prefetched(self):
        first_txn, _ = self._prefetch(self.cluster.nodes[1])
        second_txn, snapshot = self._prefetch(self.cluster.nodes[2])
        assert snapshot is None
        assert second_txn.id not in self.cluster.directory.entry(
            self.counter.object_id
        ).retainers
        assert self.counter.object_id not in second_txn.lock_objects
        assert self.cluster.lock_stats.prefetch_denied == 1

    def test_prefetch_charges_messages(self):
        before = self.cluster.network_stats.total_messages
        self._prefetch(self.cluster.nodes[1])
        after = self.cluster.network_stats.total_messages
        assert after - before == 2  # request + grant

    def test_denied_prefetch_charges_nack(self):
        self._prefetch(self.cluster.nodes[1])
        before = self.cluster.network_stats.total_messages
        self._prefetch(self.cluster.nodes[2])
        after = self.cluster.network_stats.total_messages
        assert after - before == 2  # request + control NACK

    def test_prefetch_already_owned_is_noop(self):
        txn, _ = self._prefetch(self.cluster.nodes[1])
        result = {}

        def proc():
            result["again"] = yield from self.cluster.lockmgr.try_prefetch(
                txn, self.counter.object_id, LockMode.WRITE
            )

        self.cluster.env.run_process(proc())
        assert result["again"] is None
        assert self.cluster.lock_stats.prefetch_granted == 1
