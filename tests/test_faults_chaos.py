"""End-to-end chaos runs: every shipped preset must terminate, stay
serializable, and surface its fault accounting in summary and trace."""

import pytest

from repro import check_serializability
from repro.faults import FAULT_PRESETS
from repro.obs.tracer import CAT_FAULT
from repro.runtime import Cluster, ClusterConfig
from repro.workload import SCENARIOS, generate_workload, run_workload


def chaos_run(plan, trace=True):
    workload = generate_workload(SCENARIOS["medium-high"].scaled(0.2), seed=5)
    cluster = Cluster(ClusterConfig(
        num_nodes=4, seed=5, protocol="lotec", trace=trace, faults=plan,
    ))
    return cluster, run_workload(cluster, workload)


@pytest.mark.parametrize("preset", sorted(FAULT_PRESETS))
def test_preset_terminates_and_stays_serializable(preset):
    cluster, run = chaos_run(FAULT_PRESETS[preset])
    assert run.committed > 0
    report = check_serializability(cluster)
    assert report.equivalent, (
        report.state_mismatches + report.result_mismatches
    )


class TestFaultAccounting:
    def test_lossy_net_counts_drops_and_retransmissions(self):
        cluster, run = chaos_run(FAULT_PRESETS["lossy-net"])
        stats = cluster.fault_stats
        assert stats.messages_dropped > 0
        assert stats.retransmissions > 0
        summary = run.summary()
        assert summary["messages_dropped"] == stats.messages_dropped
        assert summary["retransmissions"] == stats.retransmissions
        assert summary["faults"]["plan"] == "lossy-net"
        # Every drop and retransmission is a trace event too.
        names = [event.name for event in cluster.trace_events
                 if event.category == CAT_FAULT]
        assert any(name.startswith("fault.drop ") for name in names)
        assert any(name.startswith("fault.retransmit ") for name in names)

    def test_dup_delay_counts_duplicates_and_jitter(self):
        cluster, _run = chaos_run(FAULT_PRESETS["dup-delay"])
        stats = cluster.fault_stats
        assert stats.messages_duplicated > 0
        assert stats.delay_injected_s > 0

    def test_lock_timeout_preset_times_out_and_retries(self):
        cluster, run = chaos_run(FAULT_PRESETS["lock-timeout"])
        stats = cluster.fault_stats
        assert stats.lock_timeouts > 0
        assert cluster.lock_stats.lock_timeouts == stats.lock_timeouts
        # Timed-out families were retried, not lost: the workload still
        # commits work.
        assert run.committed > 0

    def test_crash_preset_aborts_and_recovers(self):
        cluster, run = chaos_run(FAULT_PRESETS["crash-recover"])
        stats = cluster.fault_stats
        assert stats.crashes == 1
        assert stats.recoveries == 1
        assert stats.crash_aborted_families > 0
        summary = run.summary()
        assert summary["crash_aborted_families"] == \
            stats.crash_aborted_families
        assert cluster.txn_stats.aborts_crash == stats.crash_aborted_families
        names = [event.name for event in cluster.trace_events
                 if event.category == CAT_FAULT]
        assert any(name.startswith("fault.node_crash") for name in names)
        assert any(name.startswith("fault.node_recover") for name in names)

    def test_chaos_metrics_mirror_stats(self):
        cluster, _run = chaos_run(FAULT_PRESETS["chaos"])
        stats = cluster.fault_stats
        counters = cluster.metrics.snapshot()["counters"]

        def total(name):
            return sum(counters.get(name, {}).values())

        assert total("fault.drops") == stats.messages_dropped
        assert total("fault.retransmissions") == stats.retransmissions
        assert total("fault.crashes") == stats.crashes
        assert total("fault.lock_timeouts") == stats.lock_timeouts


class TestConflictOracleUnderChaos:
    def test_chaos_run_is_conflict_serializable(self):
        from repro import check_conflict_serializability

        cluster, _run = chaos_run(FAULT_PRESETS["chaos"], trace=False)
        assert check_conflict_serializability(cluster).equivalent
