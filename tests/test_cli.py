"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in EXPERIMENTS:
            assert experiment in out
        assert "medium-high" in out


class TestExperiment:
    def test_runs_and_prints_table(self, capsys):
        code = main(["experiment", "abl-gdocache",
                     "--scale", "0.1", "--seed", "2", "--nodes", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached" in out and "uncached" in out

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        code = main(["experiment", "msg-count", "--scale", "0.1",
                     "--seed", "2", "--json", str(target)])
        assert code == 0
        data = json.loads(target.read_text())
        assert data["x_label"] == "metric"
        assert set(data["series"]["messages"]) == {"cotec", "otec", "lotec"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_every_registered_id_is_callable(self):
        # The registry must only name real drivers (smoke: signature
        # check through a tiny run for the cheapest ones is covered
        # above; here we just confirm the mapping values are callables).
        assert all(callable(fn) for fn in EXPERIMENTS.values())
        assert {"fig2", "fig8", "tab-speedup", "abl-recovery",
                "abl-prefetch"} <= set(EXPERIMENTS)


class TestCompare:
    def test_compare_prints_all_protocols(self, capsys):
        code = main(["compare", "--scenario", "medium-high",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3"])
        assert code == 0
        out = capsys.readouterr().out
        for protocol in ("cotec", "otec", "lotec", "rc"):
            assert protocol in out
        assert "data bytes" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--scenario", "tiny-high"])


class TestChartFlag:
    def test_chart_rendering(self, capsys):
        code = main(["experiment", "abl-gdocache", "--scale", "0.08",
                     "--seed", "2", "--nodes", "3", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "|" in out and "#" in out


class TestMainModule:
    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "fig2" in result.stdout
