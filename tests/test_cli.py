"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in EXPERIMENTS:
            assert experiment in out
        assert "medium-high" in out


class TestExperiment:
    def test_runs_and_prints_table(self, capsys):
        code = main(["experiment", "abl-gdocache", "--no-cache",
                     "--scale", "0.1", "--seed", "2", "--nodes", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached" in out and "uncached" in out

    def test_out_writes_versioned_json(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        code = main(["experiment", "msg-count", "--no-cache",
                     "--scale", "0.1", "--seed", "2",
                     "--out", str(target)])
        assert code == 0
        data = json.loads(target.read_text())
        assert data["schema"] == 1
        assert data["x_label"] == "metric"
        assert set(data["series"]["messages"]) == {"cotec", "otec", "lotec"}

    def test_removed_json_alias_rejected(self, tmp_path):
        # --json PATH was a deprecated alias for --out PATH; it was
        # removed in 1.2.0 and must now be an argparse error.
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "msg-count", "--no-cache",
                  "--scale", "0.1", "--seed", "2",
                  "--json", str(tmp_path / "result.json")])
        assert excinfo.value.code == 2

    def test_cache_round_trip(self, tmp_path, capsys):
        argv = ["experiment", "abl-gdocache", "--scale", "0.1",
                "--seed", "2", "--nodes", "3",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "cache").is_dir()
        assert main(argv) == 0          # second run served from cache
        assert capsys.readouterr().out == first

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_every_registered_id_is_callable(self):
        # The registry must only name real drivers (smoke: signature
        # check through a tiny run for the cheapest ones is covered
        # above; here we just confirm the mapping values are callables).
        assert all(callable(fn) for fn in EXPERIMENTS.values())
        assert {"fig2", "fig8", "tab-speedup", "abl-recovery",
                "abl-prefetch"} <= set(EXPERIMENTS)


class TestCompare:
    def test_compare_prints_all_protocols(self, capsys):
        code = main(["compare", "--scenario", "medium-high",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3"])
        assert code == 0
        out = capsys.readouterr().out
        for protocol in ("cotec", "otec", "lotec", "rc"):
            assert protocol in out
        assert "data bytes" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--scenario", "tiny-high"])


class TestVersion:
    def test_version_subcommand(self, capsys):
        import repro

        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == repro.__version__

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_dunder_version_matches_metadata(self):
        import repro

        try:
            from importlib.metadata import version
            expected = version("repro")
        except Exception:
            expected = "1.2.0"  # source-tree fallback
        assert repro.__version__ == expected


class TestTrace:
    def test_trace_writes_artifacts_and_summary(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["trace", "medium-high", "--scale", "0.08",
                     "--seed", "2", "--nodes", "3",
                     "--trace-dir", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "total bytes" in out
        assert "root commits" in out

        jsonl = out_dir / "medium-high-lotec.jsonl"
        chrome = out_dir / "medium-high-lotec.chrome.json"
        assert jsonl.exists() and chrome.exists()

        # The Chrome export must be valid trace_event JSON.
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        for record in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(record)

        # The JSONL log holds one JSON object per line, led by the
        # clock-domain header (virtual clock: the sim transport).
        lines = [line for line in jsonl.read_text().splitlines() if line]
        assert lines
        assert all(isinstance(json.loads(line), dict) for line in lines)
        assert json.loads(lines[0]) == {
            "trace_header": {"schema": 1, "clock": "virtual"}
        }

    def test_trace_summary_matches_network_stats(self, tmp_path, capsys):
        from repro.runtime.cluster import Cluster
        from repro.runtime.config import ClusterConfig
        from repro.workload.generator import generate_workload
        from repro.workload.params import SCENARIOS
        from repro.workload.runner import run_workload

        code = main(["trace", "medium-high", "--scale", "0.08",
                     "--seed", "2", "--nodes", "3",
                     "--trace-dir", str(tmp_path / "run")])
        assert code == 0
        out = capsys.readouterr().out

        # Re-run the identical deterministic scenario and check the
        # byte total printed by the summary is NetworkStats', exactly.
        params = SCENARIOS["medium-high"].scaled(0.08)
        workload = generate_workload(params, seed=2)
        cluster = Cluster(ClusterConfig(
            num_nodes=3, protocol="lotec", seed=2,
            audit_accesses=False, trace=True,
        ))
        run_workload(cluster, workload)
        assert f"{cluster.network_stats.total_bytes:,}" in out

    def test_trace_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "tiny-high"])


class TestOutputFormats:
    def test_format_chart(self, capsys):
        code = main(["experiment", "abl-gdocache", "--no-cache",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3",
                     "--format", "chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "|" in out and "#" in out

    def test_format_json_on_stdout(self, capsys):
        code = main(["experiment", "abl-gdocache", "--no-cache",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3",
                     "--format", "json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1
        assert "series" in data

    def test_removed_chart_alias_rejected(self):
        # --chart was a deprecated alias for --format chart; removed
        # in 1.2.0.
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "abl-gdocache", "--no-cache",
                  "--scale", "0.08", "--seed", "2", "--nodes", "3",
                  "--chart"])
        assert excinfo.value.code == 2

    def test_compare_writes_json(self, tmp_path, capsys):
        target = tmp_path / "compare.json"
        code = main(["compare", "--scenario", "medium-high",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3",
                     "--out", str(target)])
        assert code == 0
        data = json.loads(target.read_text())
        assert data["schema"] == 1
        assert set(data["series"]["committed"]) == {
            "cotec", "otec", "lotec", "rc",
        }
        assert "deadlocks" in data["series"]


class TestBench:
    def test_bench_writes_one_file_per_experiment(self, tmp_path, capsys):
        out_dir = tmp_path / "bench"
        code = main(["bench", "abl-gdocache", "abl-dsd",
                     "--scale", "0.08", "--seed", "2", "--nodes", "3",
                     "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
                     "--out-dir", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "abl-gdocache" in out and "abl-dsd" in out
        assert "4 cluster runs: 4 executed (jobs=2)" in out
        for eid in ("abl-gdocache", "abl-dsd"):
            data = json.loads((out_dir / f"BENCH_{eid}.json").read_text())
            assert data["schema"] == 1

    def test_bench_second_run_is_all_cache_hits(self, tmp_path, capsys):
        argv = ["bench", "abl-gdocache",
                "--scale", "0.08", "--seed", "2", "--nodes", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--out-dir", str(tmp_path / "bench")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "0 executed" in capsys.readouterr().out

    def test_bench_unknown_id_rejected(self, tmp_path, capsys):
        code = main(["bench", "fig99", "--no-cache",
                     "--out-dir", str(tmp_path)])
        assert code == 2
        assert "fig99" in capsys.readouterr().err


class TestChaos:
    def test_chaos_runs_and_gates_on_serializability(self, tmp_path, capsys):
        out_dir = tmp_path / "chaos"
        code = main(["chaos", "lossy-net", "--scale", "0.1",
                     "--seed", "5", "--trace-dir", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "serializability: OK" in out
        assert "messages dropped" in out
        assert "retransmissions" in out

        jsonl = out_dir / "medium-high-lotec-lossy-net.jsonl"
        chrome = out_dir / "medium-high-lotec-lossy-net.chrome.json"
        assert jsonl.exists() and chrome.exists()
        lines = [line for line in jsonl.read_text().splitlines() if line]
        assert any(
            json.loads(line).get("category") == "fault" for line in lines
        )

    def test_chaos_without_out_writes_nothing(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["chaos", "lock-timeout", "--scale", "0.1",
                     "--seed", "5"])
        assert code == 0
        assert "lock timeouts" in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_chaos_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "no-such-preset"])

    def test_chaos_configuration_error_is_one_line(self, capsys):
        # A crash preset on a 1-node cluster is a ConfigurationError;
        # the CLI must turn it into a single stderr line and exit 1,
        # never a traceback.
        code = main(["chaos", "crash-recover", "--nodes", "1",
                     "--scale", "0.1"])
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [line for line in captured.err.splitlines() if line]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: ")
        assert "Traceback" not in captured.err


class TestMainModule:
    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "fig2" in result.stdout
