"""Crash x protocol fuzz matrix (slow tier).

Every fault preset crossed with every protocol, five fuzz seeds each,
cycling through the adversarial tie-break policies: the run must stay
serializable and pass the reference model and every invariant checker.
Excluded from the default test run — select with ``-m slow``.
"""

import pytest

from repro.check import ALL_PROTOCOLS, run_campaign
from repro.faults import FAULT_PRESETS


@pytest.mark.slow
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("preset", sorted(FAULT_PRESETS))
def test_preset_protocol_matrix_is_clean(preset, protocol):
    result = run_campaign(
        seeds=5, protocols=(protocol,), presets=(preset,),
        scenario="medium-high", scale=0.25, nodes=4,
    )
    assert result.ok, [
        line for failure in result.failures
        for line in failure.report.failure_summary()
    ]
    assert result.tasks_run == 5


@pytest.mark.slow
@pytest.mark.parametrize("preset", [None] + sorted(FAULT_PRESETS))
def test_migration_preset_matrix_is_clean(preset):
    # Adaptive home migration rides every fault preset: entries moving
    # between homes mid-crash/mid-loss must stay invisible to the
    # reference model and all four invariant checkers.
    result = run_campaign(
        seeds=5, presets=(preset,), migration=True,
        scenario="medium-high", scale=0.25, nodes=4,
    )
    assert result.ok, [
        line for failure in result.failures
        for line in failure.report.failure_summary()
    ]
