"""Fault behaviour over the real TCP transport: stall detection on a
hung peer, duplicate-frame discard (including across a partition heal),
and cross-backend parity of the deterministic fault/recovery counters."""

import threading

import pytest

from repro.faults import CrashEvent, FaultPlan, PartitionEvent
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.sim.realtime import WallClockEnvironment
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.ids import NodeId

from conftest import Counter

N0, N1, N2, N3 = (NodeId(index) for index in range(4))


def tcp_cluster(faults=None, seed=7):
    return Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed, audit_accesses=False,
        transport="tcp", faults=faults,
    ))


class FakeSource:
    def __init__(self, count):
        self.count = count

    def pending(self):
        return self.count


class TestStallTimeout:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WallClockEnvironment(stall_timeout_s=0.0)

    def test_silent_source_raises_instead_of_hanging(self):
        env = WallClockEnvironment(stall_timeout_s=0.05)
        env.attach_source(FakeSource(count=1))
        with pytest.raises(ProtocolError, match="transport stalled"):
            env.run()

    def test_external_delivery_prevents_the_stall(self):
        env = WallClockEnvironment(stall_timeout_s=0.5)
        source = FakeSource(count=1)
        env.attach_source(source)
        fired = env.event()

        def deliver():
            source.count = 0
            fired.succeed(None)

        timer = threading.Timer(
            0.02, lambda: env.call_threadsafe(deliver))
        timer.start()
        try:
            env.run()  # returns promptly: the inbox wakeup beat the stall
        finally:
            timer.cancel()
        assert fired.triggered

    def test_hung_peer_surfaces_as_protocol_error(self):
        # A peer that accepts frames but never delivers them: the
        # in-flight count stays up while the engine runs dry, and the
        # run must fail loudly instead of blocking forever.
        cluster = tcp_cluster()
        cluster.env.stall_timeout_s = 0.2
        try:
            with cluster:
                counter = cluster.create(Counter, node=N0)
                cluster.network._deliver = lambda frame: None
                cluster.submit(counter, "add", 1, node=N1)
                with pytest.raises(ProtocolError, match="transport stalled"):
                    cluster.run()
        finally:
            del cluster.network._deliver  # restore for teardown


class TestDuplicateDiscard:
    def test_duplicate_frames_fire_one_delivery(self):
        plan = FaultPlan(duplicate_probability=1.0)
        cluster = tcp_cluster(faults=plan)
        with cluster:
            counter = cluster.create(Counter, node=N0)
            ticket = cluster.submit(counter, "add", 1, node=N1)
            cluster.run()
            assert ticket.result() == 1
            assert cluster.fault_stats.messages_duplicated > 0
            # Every wire copy crossed a socket and was accounted...
            assert (len(cluster.network.delivered_log)
                    == cluster.network.stats.total_messages)
            # ...but each logical message fired exactly once: the
            # duplicate copies found nothing pending to complete.
            assert cluster.network._pending == {}

    def test_discard_still_holds_across_a_partition_heal(self):
        # The first attempts die against the cut; after the heal a
        # duplicated retransmit crosses, and its second copy must be
        # discarded exactly like on a clean channel.
        plan = FaultPlan(
            duplicate_probability=1.0,
            retransmit_timeout_s=0.05,
            partitions=(PartitionEvent(group_a=(0,), at_s=0.0,
                                       heal_after_s=0.15),),
        )
        cluster = tcp_cluster(faults=plan)
        with cluster:
            counter = cluster.create(Counter, node=N0)
            ticket = cluster.submit(counter, "add", 1, node=N1)
            cluster.run()
            assert ticket.result() == 1
            stats = cluster.fault_stats
            assert stats.partition_dropped > 0
            assert stats.messages_duplicated > 0
            assert cluster.network._pending == {}


#: Wide-margin recovery gauntlet: the only transaction commits in the
#: first milliseconds, then the crash (250 ms), failover (260 ms),
#: rejoin (400 ms), and a partition window (500-550 ms) all pass with
#: nothing in flight — so every fault counter is deterministic and must
#: agree byte-for-byte between the virtual and wall clocks.
PARITY_PLAN = FaultPlan(
    failover_detect_s=0.01,
    crashes=(CrashEvent(node_index=0, at_s=0.25, down_for_s=0.15),),
    partitions=(PartitionEvent(group_a=(0, 1), at_s=0.5,
                               heal_after_s=0.05),),
)


def run_parity_scenario(transport, processes=False):
    cluster = Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=7, audit_accesses=False,
        transport=transport, transport_processes=processes,
        faults=PARITY_PLAN,
    ))
    with cluster:
        # Homed at N0 (round-robin by object id), pages at N1: the
        # crash takes out exactly the directory role.
        counter = cluster.create(Counter, node=N1)
        first = cluster.submit(counter, "add", 2, node=N2)
        cluster.run()  # drains the commit and the whole fault schedule
        assert first.result() == 2
        snapshot = cluster.fault_stats.snapshot()
        follow_up = cluster.submit(counter, "add", 3, node=N3)
        cluster.run()
        result = follow_up.result()
    return snapshot, result


class TestCrossBackendFaultParity:
    def test_fault_stats_identical_sim_vs_tcp(self):
        sim_snapshot, sim_result = run_parity_scenario("sim")
        tcp_snapshot, tcp_result = run_parity_scenario("tcp")
        assert sim_result == tcp_result == 5
        assert sim_snapshot == tcp_snapshot
        # The scenario exercised the whole recovery arc, not a no-op.
        assert sim_snapshot["crashes"] == 1
        assert sim_snapshot["recoveries"] == 1
        assert sim_snapshot["failovers"] == 1
        assert sim_snapshot["rejoin_reclaimed_homes"] == 1

    @pytest.mark.slow
    def test_fault_stats_identical_in_process_mode(self):
        sim_snapshot, sim_result = run_parity_scenario("sim")
        proc_snapshot, proc_result = run_parity_scenario(
            "tcp", processes=True)
        assert proc_result == sim_result
        assert proc_snapshot == sim_snapshot
