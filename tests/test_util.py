"""Unit tests for identifiers, seeded RNG streams, and errors."""

import pytest

from repro.util.errors import (
    DeadlockError,
    RecursiveInvocationError,
    ReproError,
    TransactionAborted,
)
from repro.util.ids import IdAllocator, NodeId, ObjectId, PageId, TxnId
from repro.util.rng import SeededRNG, derive_seed


class TestIds:
    def test_reprs(self):
        assert repr(NodeId(3)) == "N3"
        assert repr(ObjectId(5)) == "O5"
        assert repr(PageId(ObjectId(5), 2)) == "O5.p2"
        assert repr(TxnId(serial=4, root=4)) == "T4"
        assert repr(TxnId(serial=9, root=4)) == "T9/r4"

    def test_txn_family(self):
        root = TxnId(serial=1, root=1)
        child = TxnId(serial=2, root=1)
        stranger = TxnId(serial=3, root=3)
        assert root.is_root and not child.is_root
        assert child.same_family(root)
        assert not child.same_family(stranger)

    def test_ids_hashable_and_ordered(self):
        assert NodeId(1) < NodeId(2)
        assert len({ObjectId(1), ObjectId(1), ObjectId(2)}) == 2

    def test_allocator_monotonic(self):
        alloc = IdAllocator()
        assert alloc.next_node() == NodeId(0)
        assert alloc.next_node() == NodeId(1)
        root = alloc.next_root_txn()
        sub = alloc.next_sub_txn(root)
        assert root.is_root
        assert sub.root == root.serial
        assert sub.serial > root.serial

    def test_allocators_independent(self):
        a, b = IdAllocator(), IdAllocator()
        a.next_object()
        assert b.next_object() == ObjectId(0)


class TestRNG:
    def test_determinism(self):
        a, b = SeededRNG(5), SeededRNG(5)
        assert [a.randint(0, 100) for _ in range(10)] == \
            [b.randint(0, 100) for _ in range(10)]

    def test_derive_independent_streams(self):
        base = SeededRNG(5)
        x = base.derive("x").randint(0, 10**9)
        y = base.derive("y").randint(0, 10**9)
        assert x != y
        assert base.derive("x").randint(0, 10**9) == x

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_zipf_skew_direction(self):
        rng = SeededRNG(7)
        skewed = [rng.zipf_index(10, 1.5) for _ in range(500)]
        uniform = [rng.zipf_index(10, 0.0) for _ in range(500)]
        assert skewed.count(0) > uniform.count(0) * 1.5

    def test_zipf_bounds(self):
        rng = SeededRNG(7)
        draws = [rng.zipf_index(5, 0.9) for _ in range(200)]
        assert all(0 <= d < 5 for d in draws)
        with pytest.raises(ValueError):
            rng.zipf_index(0, 1.0)

    def test_maybe_probability_extremes(self):
        rng = SeededRNG(1)
        assert not any(rng.maybe(0.0) for _ in range(50))
        assert all(rng.maybe(1.0) for _ in range(50))

    def test_pareto_int_bounds(self):
        rng = SeededRNG(1)
        values = [rng.pareto_int(10, maximum=100) for _ in range(100)]
        assert all(10 <= v <= 100 for v in values)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(DeadlockError, TransactionAborted)
        assert issubclass(TransactionAborted, ReproError)
        assert issubclass(RecursiveInvocationError, ReproError)

    def test_deadlock_carries_cycle(self):
        error = DeadlockError(TxnId(1, 1), cycle=[1, 2])
        assert error.cycle == [1, 2]
        assert error.reason == "deadlock"

    def test_abort_reason(self):
        error = TransactionAborted(TxnId(1, 1), reason="user")
        assert "user" in str(error)
