"""Unit tests for the GDO directory entry: the O2PL rules of §4.1.

A tiny stub transaction type provides the id/node/ancestry interface
the entry needs, so every rule is exercised in isolation from the
runtime.
"""

import pytest

from repro.gdo.entry import (
    DirectoryEntry,
    GrantDecision,
    LockMode,
    LockState,
    Waiter,
)
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId, TxnId

N0, N1 = NodeId(0), NodeId(1)
R, W = LockMode.READ, LockMode.WRITE


class StubTxn:
    """Minimal transaction: id + node + ancestry."""

    _serial = iter(range(10_000))

    def __init__(self, node=N0, parent=None, root=None):
        serial = next(StubTxn._serial)
        if parent is not None:
            root = parent.id.root
        elif root is None:
            root = serial
        self.id = TxnId(serial=serial, root=root)
        self.node = node
        self.parent = parent

    def is_ancestor_of(self, other):
        probe = other.parent
        while probe is not None:
            if probe is self:
                return True
            probe = probe.parent
        return False

    def __repr__(self):
        return f"Stub{self.id!r}"


@pytest.fixture
def entry():
    return DirectoryEntry(ObjectId(0), home_node=N0, page_count=3,
                          creator_node=N0)


def family(node=N0):
    """A root with two children and one grandchild, all at one node."""
    root = StubTxn(node=node)
    child_a = StubTxn(node=node, parent=root)
    child_b = StubTxn(node=node, parent=root)
    grandchild = StubTxn(node=node, parent=child_a)
    return root, child_a, child_b, grandchild


class TestModes:
    def test_conflict_matrix(self):
        assert not R.conflicts_with(R)
        assert R.conflicts_with(W)
        assert W.conflicts_with(R)
        assert W.conflicts_with(W)


class TestBasicAcquisition:
    def test_free_lock_granted(self, entry):
        txn = StubTxn()
        assert entry.decide(txn, W) is GrantDecision.GRANTED
        entry.grant(txn, W)
        assert entry.lock_state is LockState.HELD_WRITE
        assert entry.holders[txn.id] is W

    def test_read_count_tracks_readers(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, R)
        entry.grant(b, R)
        assert entry.read_count == 2
        assert entry.lock_state is LockState.HELD_READ

    def test_cross_family_concurrent_readers(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, R)
        assert entry.decide(b, R) is GrantDecision.GRANTED

    def test_cross_family_writer_blocked_by_reader(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, R)
        assert entry.decide(b, W) is GrantDecision.WAIT_GLOBAL

    def test_cross_family_reader_blocked_by_writer(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, W)
        assert entry.decide(b, R) is GrantDecision.WAIT_GLOBAL

    def test_reentrant_read_under_write(self, entry):
        txn = StubTxn()
        entry.grant(txn, W)
        assert entry.decide(txn, R) is GrantDecision.GRANTED

    def test_upgrade_as_sole_holder(self, entry):
        txn = StubTxn()
        entry.grant(txn, R)
        assert entry.decide(txn, W) is GrantDecision.GRANTED
        entry.grant(txn, W)
        assert entry.holders[txn.id] is W

    def test_upgrade_blocked_by_other_reader(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, R)
        entry.grant(b, R)
        assert entry.decide(a, W) is GrantDecision.WAIT_GLOBAL

    def test_grant_read_after_write_keeps_write(self, entry):
        txn = StubTxn()
        entry.grant(txn, W)
        entry.grant(txn, R)
        assert entry.holders[txn.id] is W


class TestRule1Retention:
    def test_retained_lock_granted_to_descendant(self, entry):
        root, child_a, child_b, _ = family()
        entry.grant(child_a, W)
        entry.release_to_parent(child_a, root)
        assert entry.lock_state is LockState.RETAINED
        assert entry.decide(child_b, W) is GrantDecision.GRANTED

    def test_retained_lock_blocked_for_other_family(self, entry):
        root, child_a, _, _ = family()
        entry.grant(child_a, R)
        entry.release_to_parent(child_a, root)
        stranger = StubTxn(node=N1)
        assert entry.decide(stranger, R) is GrantDecision.WAIT_GLOBAL

    def test_retainer_must_be_ancestor(self, entry):
        root, child_a, child_b, grandchild = family()
        entry.grant(grandchild, W)
        entry.release_to_parent(grandchild, child_a)
        # child_a retains; child_b is not a descendant of child_a.
        assert entry.decide(child_b, W) is GrantDecision.WAIT_LOCAL
        # but a new child of child_a is.
        descendant = StubTxn(parent=child_a)
        assert entry.decide(descendant, W) is GrantDecision.GRANTED

    def test_retention_strengthens_not_weakens(self, entry):
        root, child_a, child_b, _ = family()
        entry.grant(child_a, W)
        entry.release_to_parent(child_a, root)
        entry.grant(child_b, R)
        entry.release_to_parent(child_b, root)
        assert entry.retainers[root.id] is W

    def test_release_to_parent_moves_retentions_up(self, entry):
        root, child_a, _, grandchild = family()
        entry.grant(grandchild, W)
        entry.release_to_parent(grandchild, child_a)
        entry.release_to_parent(child_a, root)
        assert list(entry.retainers) == [root.id]

    def test_release_to_parent_without_lock_raises(self, entry):
        root, child_a, _, _ = family()
        with pytest.raises(ProtocolError):
            entry.release_to_parent(child_a, root)


class TestRecursionPreclusion:
    def test_descendant_conflicting_with_ancestor_holder(self, entry):
        root, child_a, _, _ = family()
        entry.grant(root, W)
        assert entry.decide(child_a, W) is GrantDecision.RECURSIVE
        assert entry.decide(child_a, R) is GrantDecision.RECURSIVE

    def test_read_read_recursion_flag(self, entry):
        root, child_a, _, _ = family()
        entry.grant(root, R)
        assert entry.decide(child_a, R) is GrantDecision.RECURSIVE
        assert entry.decide(
            child_a, R, allow_recursive_reads=True
        ) is GrantDecision.GRANTED

    def test_write_recursion_never_allowed(self, entry):
        root, child_a, _, _ = family()
        entry.grant(root, R)
        assert entry.decide(
            child_a, W, allow_recursive_reads=True
        ) is GrantDecision.RECURSIVE


class TestAbortRelease:
    def test_abort_releases_unretained_lock(self, entry):
        txn = StubTxn()
        entry.grant(txn, W)
        assert entry.release_on_abort(txn) is True
        assert entry.is_free

    def test_abort_keeps_ancestor_retention(self, entry):
        root, child_a, child_b, _ = family()
        entry.grant(child_a, W)
        entry.release_to_parent(child_a, root)  # root retains
        entry.grant(child_b, W)                 # reacquired by sibling
        assert entry.release_on_abort(child_b) is False
        assert entry.retainers[root.id] is W

    def test_release_family_clears_everything(self, entry):
        root, child_a, _, _ = family()
        entry.grant(child_a, W)
        entry.release_to_parent(child_a, root)
        entry.grant(StubTxn(parent=root), R)
        entry.release_family(root.id.root)
        assert entry.is_free

    def test_release_family_spares_other_families(self, entry):
        a, b = StubTxn(), StubTxn()
        entry.grant(a, R)
        entry.grant(b, R)
        entry.release_family(a.id.root)
        assert b.id in entry.holders


class TestWaitingAndPump:
    def wake(self):
        class Wake:
            def __init__(self):
                self.fired = []

            def succeed(self, value=None):
                self.fired.append(("ok", value))

            def fail(self, exc):
                self.fired.append(("fail", exc))

            @property
            def triggered(self):
                return bool(self.fired)

        return Wake()

    def test_waiters_grouped_by_family(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        family_a_1, family_a_2 = StubTxn(node=N1), None
        family_a_2 = StubTxn(node=N1, root=family_a_1.id.root)
        entry.enqueue_global(Waiter(family_a_1, W, self.wake()))
        entry.enqueue_global(Waiter(family_a_2, R, self.wake()))
        entry.enqueue_global(Waiter(StubTxn(), W, self.wake()))
        assert len(entry.waiting_families) == 2
        assert entry.waiting_family_roots()[0] == family_a_1.id.root

    def test_pump_admits_next_family_fifo(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        first, second = StubTxn(node=N1), StubTxn(node=N1)
        entry.enqueue_global(Waiter(first, W, self.wake()))
        entry.enqueue_global(Waiter(second, W, self.wake()))
        entry.release_family(holder.id.root)
        woken = entry.pump()
        assert [w.txn for w in woken] == [first]
        assert entry.holders[first.id] is W
        # second still queued
        assert entry.waiting_family_roots() == (second.id.root,)

    def test_pump_admits_cross_family_reader_run(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        readers = [StubTxn(node=N1) for _ in range(3)]
        writer = StubTxn(node=N1)
        for reader in readers:
            entry.enqueue_global(Waiter(reader, R, self.wake()))
        entry.enqueue_global(Waiter(writer, W, self.wake()))
        entry.release_family(holder.id.root)
        woken = entry.pump()
        assert {w.txn.id for w in woken} == {r.id for r in readers}
        assert entry.read_count == 3

    def test_pump_respects_local_waiters_first(self, entry):
        root, child_a, child_b, grandchild = family()
        entry.grant(grandchild, W)
        entry.release_to_parent(grandchild, child_a)
        wake = self.wake()
        entry.enqueue_local(Waiter(child_b, W, wake))
        # child_a still retains: child_b must keep waiting.
        assert entry.pump() == []
        entry.release_to_parent(child_a, root)
        woken = entry.pump()
        assert [w.txn for w in woken] == [child_b]

    def test_remove_waiter(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        victim = StubTxn(node=N1)
        entry.enqueue_global(Waiter(victim, W, self.wake()))
        assert entry.remove_waiter(victim.id) is True
        assert entry.remove_waiter(victim.id) is False
        assert not entry.has_waiters()

    def test_remove_family_waiters(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        a = StubTxn(node=N1)
        a2 = StubTxn(node=N1, root=a.id.root)
        b = StubTxn(node=N1)
        entry.enqueue_global(Waiter(a, W, self.wake()))
        entry.enqueue_global(Waiter(a2, R, self.wake()))
        entry.enqueue_global(Waiter(b, W, self.wake()))
        dropped = entry.remove_family_waiters(a.id.root)
        assert {w.txn.id for w in dropped} == {a.id, a2.id}
        assert entry.waiting_family_roots() == (b.id.root,)

    def test_partial_family_admission_moves_rest_local(self, entry):
        holder = StubTxn()
        entry.grant(holder, W)
        fam_root = StubTxn(node=N1)
        fam_peer = StubTxn(node=N1, root=fam_root.id.root)
        entry.enqueue_global(Waiter(fam_root, W, self.wake()))
        entry.enqueue_global(Waiter(fam_peer, W, self.wake()))
        entry.release_family(holder.id.root)
        woken = entry.pump()
        assert [w.txn for w in woken] == [fam_root]
        assert [w.txn for w in entry.local_waiters] == [fam_peer]


class TestPageMap:
    def test_initial_ownership(self, entry):
        for page in range(3):
            assert entry.page_owner(page) == N0
            assert entry.latest_version(page) == 1

    def test_commit_bumps_dirty_versions(self, entry):
        entry.apply_commit(N1, dirty_pages=[0, 2], resident_versions={})
        assert entry.latest_version(0) == 2
        assert entry.page_owner(0) == N1
        assert entry.latest_version(1) == 1
        assert entry.page_owner(1) == N0

    def test_resident_claims_only_current_versions(self, entry):
        entry.apply_commit(N1, dirty_pages=[0], resident_versions={})
        # N0's copy of page 0 is now stale (version 1 < 2): no claim.
        entry.apply_commit(N0, dirty_pages=[], resident_versions={0: 1, 1: 1})
        assert entry.page_owner(0) == N1
        assert entry.page_owner(1) == N0

    def test_dirty_page_ignores_resident_entry(self, entry):
        entry.apply_commit(N1, dirty_pages=[1], resident_versions={1: 1})
        assert entry.latest_version(1) == 2
        assert entry.page_owner(1) == N1

    def test_snapshot_is_independent_copy(self, entry):
        snapshot = entry.page_map_snapshot()
        entry.apply_commit(N1, dirty_pages=[0], resident_versions={})
        assert snapshot[0].version == 1
        assert entry.latest_version(0) == 2

    def test_holder_entries_include_retainers(self, entry):
        root, child_a, _, _ = family()
        entry.grant(child_a, W)
        entry.release_to_parent(child_a, root)
        entry.grant(StubTxn(parent=root), R)
        pairs = entry.holder_entries()
        assert (root.id, N0) in pairs
        assert len(pairs) == 2
