"""Trace invariant checkers on hand-built and real traces."""

from repro.check import (
    check_commit_order,
    check_page_version_monotonic,
    check_retained_descendants,
    check_single_writer,
    run_invariants,
)

from conftest import Counter, make_cluster

from test_check_reference import (
    grant,
    inherit,
    prefetch,
    release,
    txn_end,
    wait_grant,
)


def install(obj, versions, ts=0.0):
    return {
        "name": f"transfer.install O{obj}", "category": "transfer",
        "phase": "i", "ts": ts,
        "args": {"object": f"O{obj}", "versions": versions},
    }


def checkers(violations):
    return [violation.checker for violation in violations]


class TestSingleWriter:
    def test_two_families_writing_one_object(self):
        trace = [grant("T0", 1, "W"), wait_grant("T5", 1, "W")]
        assert checkers(check_single_writer(trace)) == [
            "invariant.single-writer"
        ]

    def test_reader_present_while_writer_granted(self):
        trace = [grant("T0", 1, "R"), grant("T5", 1, "W")]
        assert len(check_single_writer(trace)) == 1

    def test_concurrent_readers_allowed(self):
        trace = [grant("T0", 1, "R"), grant("T5", 1, "R"),
                 grant("T9", 1, "R")]
        assert check_single_writer(trace) == []

    def test_release_clears_presence(self):
        trace = [grant("T0", 1, "W"), release(0, [1]),
                 grant("T5", 1, "W")]
        assert check_single_writer(trace) == []

    def test_same_family_is_never_a_conflict(self):
        trace = [grant("T0", 1, "W"),
                 grant("T1/r0", 1, "W", lineage=[0])]
        assert check_single_writer(trace) == []

    def test_crash_abort_clears_presence(self):
        trace = [
            grant("T0", 1, "W"),
            {"name": "fault.crash_abort", "category": "fault",
             "phase": "i", "ts": 0.0, "args": {"root": 0}},
            grant("T5", 1, "W"),
        ]
        assert check_single_writer(trace) == []


class TestRetainedDescendants:
    def test_foreign_family_admitted_under_retention(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T5", 1, "W")]
        assert checkers(check_retained_descendants(trace)) == [
            "invariant.retained-descendants"
        ]

    def test_descendant_admitted_under_retention(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T9/r0", 1, "W", lineage=[1, 0])]
        assert check_retained_descendants(trace) == []

    def test_read_retention_shares_with_foreign_readers(self):
        trace = [prefetch("T1/r0", 1, "R", lineage=[0]),
                 grant("T5", 1, "R")]
        assert check_retained_descendants(trace) == []
        writer = trace[:1] + [grant("T5", 1, "W")]
        assert len(check_retained_descendants(writer)) == 1

    def test_inherited_retention_keeps_the_held_mode(self):
        # A read hold pre-committed up the tree stays a *read*
        # retention — a foreign reader admitted afterwards is legal.
        trace = [grant("T1/r0", 1, "R", lineage=[0]),
                 inherit("T1/r0", "T0", [1]),
                 txn_end("T1/r0", "commit"),
                 grant("T5", 1, "R")]
        assert check_retained_descendants(trace) == []
        # The same choreography with a write hold still excludes.
        written = [grant("T1/r0", 1, "W", lineage=[0]),
                   inherit("T1/r0", "T0", [1]),
                   txn_end("T1/r0", "commit"),
                   grant("T5", 1, "R")]
        assert len(check_retained_descendants(written)) == 1

    def test_retention_moves_up_on_inherit(self):
        # After T1/r0 pre-commits, the *root* retains; a stranger is
        # still excluded, a child of the root is still admitted.
        prefix = [prefetch("T1/r0", 1, "W", lineage=[0]),
                  inherit("T1/r0", "T0", [1]),
                  txn_end("T1/r0", "commit")]
        stranger = prefix + [grant("T5", 1, "W")]
        assert len(check_retained_descendants(stranger)) == 1
        child = prefix + [grant("T2/r0", 1, "W", lineage=[0])]
        assert check_retained_descendants(child) == []

    def test_root_end_drops_family_retentions(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 inherit("T1/r0", "T0", [1]),
                 release(0, [1]),
                 txn_end("T0", "commit"),
                 grant("T5", 1, "W")]
        assert check_retained_descendants(trace) == []


class TestPageVersionMonotonic:
    def test_growing_versions_are_clean(self):
        trace = [install(1, {"0": 1, "1": 1}), install(1, {"0": 2}),
                 install(1, {"0": 2})]
        assert check_page_version_monotonic(trace) == []

    def test_regression_is_flagged(self):
        trace = [install(1, {"0": 3}), install(1, {"0": 2})]
        violations = check_page_version_monotonic(trace)
        assert checkers(violations) == ["invariant.page-version"]
        assert "stale" in violations[0].message

    def test_objects_and_pages_are_independent(self):
        trace = [install(1, {"0": 5}), install(2, {"0": 1}),
                 install(1, {"1": 1})]
        assert check_page_version_monotonic(trace) == []


class TestCommitOrder:
    def test_conflicting_grants_must_commit_in_order(self):
        trace = [
            grant("T0", 1, "W"), release(0, [1]),
            grant("T5", 1, "W"), release(5, [1]),
            txn_end("T5", "commit"), txn_end("T0", "commit"),
        ]
        assert checkers(check_commit_order(trace)) == [
            "invariant.commit-order"
        ]

    def test_matching_orders_are_clean(self):
        trace = [
            grant("T0", 1, "W"), release(0, [1]), txn_end("T0", "commit"),
            grant("T5", 1, "W"), release(5, [1]), txn_end("T5", "commit"),
        ]
        assert check_commit_order(trace) == []

    def test_read_read_order_is_unconstrained(self):
        trace = [
            grant("T0", 1, "R"), grant("T5", 1, "R"),
            txn_end("T5", "commit"), txn_end("T0", "commit"),
        ]
        assert check_commit_order(trace) == []

    def test_uncommitted_families_are_ignored(self):
        trace = [grant("T0", 1, "W"), grant("T5", 1, "W"),
                 txn_end("T5", "commit")]
        assert check_commit_order(trace) == []


class TestRunInvariants:
    def test_aggregates_every_checker(self):
        trace = [
            grant("T0", 1, "W"), wait_grant("T5", 1, "W"),
            install(2, {"0": 3}), install(2, {"0": 1}),
        ]
        tags = checkers(run_invariants(trace))
        assert "invariant.single-writer" in tags
        assert "invariant.page-version" in tags

    def test_live_cluster_trace_is_clean(self):
        cluster = make_cluster(protocol="lotec", seed=4, trace=True)
        counter = cluster.create(Counter)
        for node in cluster.nodes:
            cluster.submit(counter, "add", 1, node=node)
        cluster.run()
        assert run_invariants(cluster.trace_events) == []
