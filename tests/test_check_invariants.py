"""Trace invariant checkers on hand-built and real traces."""

from repro.check import (
    check_commit_order,
    check_liveness,
    check_page_version_monotonic,
    check_retained_descendants,
    check_single_writer,
    run_invariants,
)

from conftest import Counter, make_cluster

from test_check_reference import (
    grant,
    inherit,
    prefetch,
    release,
    txn_end,
    wait_grant,
)


def install(obj, versions, ts=0.0):
    return {
        "name": f"transfer.install O{obj}", "category": "transfer",
        "phase": "i", "ts": ts,
        "args": {"object": f"O{obj}", "versions": versions},
    }


def checkers(violations):
    return [violation.checker for violation in violations]


class TestSingleWriter:
    def test_two_families_writing_one_object(self):
        trace = [grant("T0", 1, "W"), wait_grant("T5", 1, "W")]
        assert checkers(check_single_writer(trace)) == [
            "invariant.single-writer"
        ]

    def test_reader_present_while_writer_granted(self):
        trace = [grant("T0", 1, "R"), grant("T5", 1, "W")]
        assert len(check_single_writer(trace)) == 1

    def test_concurrent_readers_allowed(self):
        trace = [grant("T0", 1, "R"), grant("T5", 1, "R"),
                 grant("T9", 1, "R")]
        assert check_single_writer(trace) == []

    def test_release_clears_presence(self):
        trace = [grant("T0", 1, "W"), release(0, [1]),
                 grant("T5", 1, "W")]
        assert check_single_writer(trace) == []

    def test_same_family_is_never_a_conflict(self):
        trace = [grant("T0", 1, "W"),
                 grant("T1/r0", 1, "W", lineage=[0])]
        assert check_single_writer(trace) == []

    def test_crash_abort_clears_presence(self):
        trace = [
            grant("T0", 1, "W"),
            {"name": "fault.crash_abort", "category": "fault",
             "phase": "i", "ts": 0.0, "args": {"root": 0}},
            grant("T5", 1, "W"),
        ]
        assert check_single_writer(trace) == []


class TestRetainedDescendants:
    def test_foreign_family_admitted_under_retention(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T5", 1, "W")]
        assert checkers(check_retained_descendants(trace)) == [
            "invariant.retained-descendants"
        ]

    def test_descendant_admitted_under_retention(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T9/r0", 1, "W", lineage=[1, 0])]
        assert check_retained_descendants(trace) == []

    def test_read_retention_shares_with_foreign_readers(self):
        trace = [prefetch("T1/r0", 1, "R", lineage=[0]),
                 grant("T5", 1, "R")]
        assert check_retained_descendants(trace) == []
        writer = trace[:1] + [grant("T5", 1, "W")]
        assert len(check_retained_descendants(writer)) == 1

    def test_inherited_retention_keeps_the_held_mode(self):
        # A read hold pre-committed up the tree stays a *read*
        # retention — a foreign reader admitted afterwards is legal.
        trace = [grant("T1/r0", 1, "R", lineage=[0]),
                 inherit("T1/r0", "T0", [1]),
                 txn_end("T1/r0", "commit"),
                 grant("T5", 1, "R")]
        assert check_retained_descendants(trace) == []
        # The same choreography with a write hold still excludes.
        written = [grant("T1/r0", 1, "W", lineage=[0]),
                   inherit("T1/r0", "T0", [1]),
                   txn_end("T1/r0", "commit"),
                   grant("T5", 1, "R")]
        assert len(check_retained_descendants(written)) == 1

    def test_retention_moves_up_on_inherit(self):
        # After T1/r0 pre-commits, the *root* retains; a stranger is
        # still excluded, a child of the root is still admitted.
        prefix = [prefetch("T1/r0", 1, "W", lineage=[0]),
                  inherit("T1/r0", "T0", [1]),
                  txn_end("T1/r0", "commit")]
        stranger = prefix + [grant("T5", 1, "W")]
        assert len(check_retained_descendants(stranger)) == 1
        child = prefix + [grant("T2/r0", 1, "W", lineage=[0])]
        assert check_retained_descendants(child) == []

    def test_root_end_drops_family_retentions(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 inherit("T1/r0", "T0", [1]),
                 release(0, [1]),
                 txn_end("T0", "commit"),
                 grant("T5", 1, "W")]
        assert check_retained_descendants(trace) == []


class TestPageVersionMonotonic:
    def test_growing_versions_are_clean(self):
        trace = [install(1, {"0": 1, "1": 1}), install(1, {"0": 2}),
                 install(1, {"0": 2})]
        assert check_page_version_monotonic(trace) == []

    def test_regression_is_flagged(self):
        trace = [install(1, {"0": 3}), install(1, {"0": 2})]
        violations = check_page_version_monotonic(trace)
        assert checkers(violations) == ["invariant.page-version"]
        assert "stale" in violations[0].message

    def test_objects_and_pages_are_independent(self):
        trace = [install(1, {"0": 5}), install(2, {"0": 1}),
                 install(1, {"1": 1})]
        assert check_page_version_monotonic(trace) == []


class TestCommitOrder:
    def test_conflicting_grants_must_commit_in_order(self):
        trace = [
            grant("T0", 1, "W"), release(0, [1]),
            grant("T5", 1, "W"), release(5, [1]),
            txn_end("T5", "commit"), txn_end("T0", "commit"),
        ]
        assert checkers(check_commit_order(trace)) == [
            "invariant.commit-order"
        ]

    def test_matching_orders_are_clean(self):
        trace = [
            grant("T0", 1, "W"), release(0, [1]), txn_end("T0", "commit"),
            grant("T5", 1, "W"), release(5, [1]), txn_end("T5", "commit"),
        ]
        assert check_commit_order(trace) == []

    def test_read_read_order_is_unconstrained(self):
        trace = [
            grant("T0", 1, "R"), grant("T5", 1, "R"),
            txn_end("T5", "commit"), txn_end("T0", "commit"),
        ]
        assert check_commit_order(trace) == []

    def test_uncommitted_families_are_ignored(self):
        trace = [grant("T0", 1, "W"), grant("T5", 1, "W"),
                 txn_end("T5", "commit")]
        assert check_commit_order(trace) == []


def txn_start(root, ts=0.0):
    return {
        "name": f"txn.start T{root}", "category": "txn", "phase": "i",
        "ts": ts, "args": {"txn": f"T{root}", "root": root},
    }


def crash(node, ts=0.0):
    return {
        "name": f"fault.node_crash N{node}", "category": "fault",
        "phase": "i", "ts": ts,
        "args": {"crashed_node": node, "down_for_s": 0.01},
    }


def recover(node, ts=0.0):
    return {
        "name": f"fault.node_recover N{node}", "category": "fault",
        "phase": "i", "ts": ts, "args": {"recovered_node": node},
    }


def crash_abort(root, node=1, ts=0.0):
    return {
        "name": f"fault.crash_abort T{root}", "category": "fault",
        "phase": "i", "ts": ts, "args": {"crashed_node": node, "root": root},
    }


def partition(group_a, ts=0.0):
    return {
        "name": f"fault.partition {list(group_a)}", "category": "fault",
        "phase": "i", "ts": ts,
        "args": {"group_a": list(group_a), "heal_after_s": 0.01},
    }


def partition_heal(group_a, ts=0.0):
    return {
        "name": f"fault.partition_heal {list(group_a)}", "category": "fault",
        "phase": "i", "ts": ts, "args": {"group_a": list(group_a)},
    }


class TestLiveness:
    def test_committed_and_aborted_families_are_live(self):
        trace = [
            txn_start(0), txn_start(7),
            txn_end("T0", "commit"), txn_end("T7", "abort"),
        ]
        assert check_liveness(trace) == []

    def test_unterminated_family_is_flagged_when_all_healed(self):
        trace = [
            crash(1), txn_start(3), recover(1),
            txn_start(4), txn_end("T4", "commit"),
        ]
        assert checkers(check_liveness(trace)) == ["invariant.liveness"]

    def test_crash_abort_counts_as_termination(self):
        trace = [txn_start(3), crash(1), crash_abort(3), recover(1)]
        assert check_liveness(trace) == []

    def test_unrecovered_crash_excuses_stuck_families(self):
        # Fail-stop without recovery: waiting forever on a dead node is
        # the expected behaviour, not a protocol bug.
        trace = [txn_start(3), crash(1)]
        assert check_liveness(trace) == []

    def test_unhealed_partition_excuses_stuck_families(self):
        trace = [txn_start(3), partition((0, 1))]
        assert check_liveness(trace) == []

    def test_healed_partition_does_not_excuse(self):
        trace = [txn_start(3), partition((0, 1)), partition_heal((0, 1))]
        assert checkers(check_liveness(trace)) == ["invariant.liveness"]

    def test_sub_transaction_spans_do_not_terminate_the_family(self):
        # Only the *root's* end span terminates; a child ending while
        # the root hangs is exactly the ghost-holder signature.
        trace = [
            txn_start(3), txn_end("T9/r3", "commit"),
        ]
        assert checkers(check_liveness(trace)) == ["invariant.liveness"]

    def test_one_open_window_among_many_healed_still_excuses(self):
        trace = [
            crash(1), recover(1), crash(2),  # second window never heals
            txn_start(3),
        ]
        assert check_liveness(trace) == []


class TestRunInvariants:
    def test_aggregates_every_checker(self):
        trace = [
            grant("T0", 1, "W"), wait_grant("T5", 1, "W"),
            install(2, {"0": 3}), install(2, {"0": 1}),
        ]
        tags = checkers(run_invariants(trace))
        assert "invariant.single-writer" in tags
        assert "invariant.page-version" in tags

    def test_live_cluster_trace_is_clean(self):
        cluster = make_cluster(protocol="lotec", seed=4, trace=True)
        counter = cluster.create(Counter)
        for node in cluster.nodes:
            cluster.submit(counter, "add", 1, node=node)
        cluster.run()
        assert run_invariants(cluster.trace_events) == []
