"""Unit tests for per-node stores, page shipment, and undo logs."""

import pytest

from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.memory.store import NodeStore
from repro.memory.undo import UndoLog
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId

N0, N1 = NodeId(0), NodeId(1)
OID = ObjectId(0)


@pytest.fixture
def layout():
    return ObjectLayout(
        [AttributeSpec("x", 60), AttributeSpec("y", 60),
         AttributeSpec("arr", 30, count=4)],
        page_size=100,
    )


@pytest.fixture
def store(layout):
    node_store = NodeStore(N0)
    node_store.create_object(OID, layout, values={("x", 0): 5})
    return node_store


class TestCreation:
    def test_create_sets_defaults_and_overrides(self, store):
        assert store.read_slot(OID, ("x", 0)) == 5
        assert store.read_slot(OID, ("y", 0)) == 0
        assert store.read_slot(OID, ("arr", 3)) == 0

    def test_create_marks_all_pages_version_one(self, store, layout):
        for page in range(layout.page_count):
            assert store.page_version(OID, page) == 1

    def test_double_create_rejected(self, store, layout):
        with pytest.raises(ProtocolError):
            store.create_object(OID, layout)

    def test_register_is_idempotent_and_empty(self, layout):
        store = NodeStore(N1)
        store.register_object(OID, layout)
        store.register_object(OID, layout)
        assert store.has_object(OID)
        assert store.resident_pages(OID) == {}
        assert store.page_version(OID, 0) == 0

    def test_unknown_object_raises(self):
        store = NodeStore(N1)
        with pytest.raises(ProtocolError):
            store.read_slot(OID, ("x", 0))
        with pytest.raises(ProtocolError):
            store.resident_pages(OID)


class TestShipment:
    def test_extract_and_install_round_trip(self, store, layout):
        remote = NodeStore(N1)
        remote.register_object(OID, layout)
        copies = store.extract_pages(OID, [0, 1])
        remote.install_pages(OID, copies)
        assert remote.read_slot(OID, ("x", 0)) == 5
        assert remote.page_version(OID, 0) == 1
        # Page 2 (tail of arr) was not shipped.
        assert remote.page_version(OID, 2) == 0

    def test_extract_includes_partial_slots(self, store, layout):
        # y spans pages 0-1 (offset 60..120); extracting page 1 alone
        # must still carry y's whole value.
        copies = store.extract_pages(OID, [1])
        (copy,) = copies
        assert ("y", 0) in copy.slot_values

    def test_extract_uncached_page_rejected(self, layout):
        empty = NodeStore(N1)
        empty.register_object(OID, layout)
        with pytest.raises(ProtocolError):
            empty.extract_pages(OID, [0])

    def test_stale_install_ignored(self, store, layout):
        remote = NodeStore(N1)
        remote.register_object(OID, layout)
        fresh = store.extract_pages(OID, [0])
        remote.install_pages(OID, fresh)
        remote.write_slot(OID, ("x", 0), 42)
        remote.set_page_version(OID, 0, 7)
        remote.install_pages(OID, fresh)  # version 1 < 7: must not clobber
        assert remote.read_slot(OID, ("x", 0)) == 42
        assert remote.page_version(OID, 0) == 7

    def test_equal_version_reinstall_ignored(self, store, layout):
        remote = NodeStore(N1)
        remote.register_object(OID, layout)
        copies = store.extract_pages(OID, [0])
        remote.install_pages(OID, copies)
        # An equal-version copy is identical by definition — and the
        # local copy may carry uncommitted writes: must not clobber.
        remote.write_slot(OID, ("x", 0), 777)
        remote.install_pages(OID, copies)
        assert remote.page_version(OID, 0) == 1
        assert remote.read_slot(OID, ("x", 0)) == 777


class TestWriteAndUndo:
    def test_write_returns_prior_state(self, store):
        had, old = store.write_slot(OID, ("x", 0), 9)
        assert had and old == 5

    def test_restore_slot(self, store):
        had, old = store.write_slot(OID, ("x", 0), 9)
        store.restore_slot(OID, ("x", 0), had, old)
        assert store.read_slot(OID, ("x", 0)) == 5

    def test_restore_missing_slot_removes_it(self, layout):
        store = NodeStore(N1)
        store.register_object(OID, layout)
        had, old = store.write_slot(OID, ("x", 0), 1)
        assert not had
        store.restore_slot(OID, ("x", 0), had, old)
        with pytest.raises(ProtocolError):
            store.read_slot(OID, ("x", 0))

    def test_undo_log_reverses_in_order(self, store):
        log = UndoLog()
        for value in (10, 20, 30):
            had, old = store.write_slot(OID, ("x", 0), value)
            log.record_write(OID, ("x", 0), had, old)
        assert store.read_slot(OID, ("x", 0)) == 30
        assert log.apply(store) == 3
        assert store.read_slot(OID, ("x", 0)) == 5
        assert len(log) == 0

    def test_undo_merge_child_order(self, store):
        parent, child = UndoLog(), UndoLog()
        had, old = store.write_slot(OID, ("x", 0), 100)   # parent write
        parent.record_write(OID, ("x", 0), had, old)
        had, old = store.write_slot(OID, ("x", 0), 200)   # child write
        child.record_write(OID, ("x", 0), had, old)
        parent.merge_child(child)
        assert len(child) == 0
        parent.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 5

    def test_touched_objects(self, store):
        log = UndoLog()
        other = ObjectId(9)
        log.record_write(OID, ("x", 0), True, 1)
        log.record_write(other, ("x", 0), True, 1)
        log.record_write(OID, ("y", 0), True, 1)
        assert log.touched_objects() == (OID, other)

    def test_snapshot_is_a_copy(self, store):
        snap = store.snapshot_object(OID)
        snap[("x", 0)] = 999
        assert store.read_slot(OID, ("x", 0)) == 5


class TestStoreMiscSurface:
    def test_cached_objects_listing(self, store, layout):
        other = ObjectId(5)
        store.register_object(other, layout)
        assert set(store.cached_objects()) == {OID, other}

    def test_layout_lookup(self, store, layout):
        assert store.layout_of(OID) is layout

    def test_peek_slot_states(self, store, layout):
        assert store.peek_slot(OID, ("x", 0)) == (True, 5)
        remote = NodeStore(N1)
        remote.register_object(OID, layout)
        assert remote.peek_slot(OID, ("x", 0)) == (False, None)

    def test_undo_before_write_captures_state(self, store):
        log = UndoLog()
        log.before_write(store, OID, ("x", 0), pages=[0])
        store.write_slot(OID, ("x", 0), 99)
        log.apply(store)
        assert store.read_slot(OID, ("x", 0)) == 5
