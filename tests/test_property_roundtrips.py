"""Property tests for serialization round trips and the size model."""

from hypothesis import given, settings, strategies as st

from repro.net.sizes import SizeModel
from repro.runtime.executor import _HandleRef, freeze_args, thaw_args
from repro.workload.generator import PlanNode
from repro.workload.traces import _freeze_from_json, _freeze_to_json


@st.composite
def plan_nodes(draw, depth=0):
    children = ()
    if depth < 2 and draw(st.booleans()):
        children = tuple(
            draw(plan_nodes(depth=depth + 1))
            for _ in range(draw(st.integers(1, 3)))
        )
    return PlanNode(
        obj_index=draw(st.integers(0, 50)),
        method_name=draw(st.sampled_from(["m0", "m1", "m2"])),
        salt=draw(st.integers(0, 2**31 - 1)),
        inject_abort=draw(st.booleans()),
        children=children,
    )


frozen_values = st.recursive(
    st.one_of(
        st.integers(-2**31, 2**31),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
        st.builds(_HandleRef, st.integers(0, 100)),
        plan_nodes(),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=3).map(tuple),
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=5), inner, max_size=3),
    ),
    max_leaves=12,
)


class TestFreezeJsonRoundTrip:
    @given(frozen_values)
    @settings(max_examples=120, deadline=None)
    def test_json_round_trip_preserves_structure(self, value):
        import json

        encoded = _freeze_to_json(value)
        json.dumps(encoded)  # must be valid JSON
        decoded = _freeze_from_json(json.loads(json.dumps(encoded)))
        assert decoded == value

    @given(frozen_values)
    @settings(max_examples=80, deadline=None)
    def test_freeze_thaw_identity_on_frozen_data(self, value):
        # freeze_args on already-frozen data (no live handles) is the
        # identity, and thaw with an identity resolver restores refs.
        assert freeze_args(value) == value
        assert thaw_args(value, lambda v: _HandleRef(v)) == value


class TestSizeModelProperties:
    @given(
        holders=st.integers(0, 100),
        pages=st.integers(0, 100),
        dirty=st.integers(0, 100),
    )
    @settings(max_examples=80)
    def test_sizes_monotone_and_positive(self, holders, pages, dirty):
        sizes = SizeModel()
        assert sizes.lock_grant(holders, pages) >= sizes.header_bytes
        assert sizes.lock_grant(holders + 1, pages) >= \
            sizes.lock_grant(holders, pages)
        assert sizes.lock_release(dirty + 1) > sizes.lock_release(dirty)
        assert sizes.page_data(pages + 1) > sizes.page_data(pages)

    @given(byte_count=st.integers(0, 5 * 4096), pages=st.integers(1, 5))
    @settings(max_examples=80)
    def test_object_grain_never_exceeds_page_grain(self, byte_count, pages):
        sizes = SizeModel()
        # Object data on n pages is at most n full pages of bytes.
        capped = min(byte_count, pages * sizes.page_bytes)
        assert sizes.object_data(capped) <= sizes.page_data(pages)
