"""The fault engine's central promise: the fault schedule is a pure
function of (seed, plan) — and a disabled plan changes nothing at all."""

from repro.faults import FAULT_PRESETS, FaultPlan
from repro.obs import events_to_jsonl
from repro.runtime import Cluster, ClusterConfig
from repro.workload import SCENARIOS, generate_workload, run_workload


def traced_run(faults, seed=5):
    workload = generate_workload(
        SCENARIOS["medium-high"].scaled(0.2), seed=seed
    )
    cluster = Cluster(ClusterConfig(
        num_nodes=4, seed=seed, protocol="lotec", trace=True, faults=faults,
    ))
    run = run_workload(cluster, workload)
    return cluster, run


class TestSchedulesAreReproducible:
    def test_same_plan_same_seed_byte_identical_traces(self):
        cluster_a, _ = traced_run(FAULT_PRESETS["chaos"])
        cluster_b, _ = traced_run(FAULT_PRESETS["chaos"])
        assert events_to_jsonl(cluster_a.trace_events) == \
            events_to_jsonl(cluster_b.trace_events)
        assert cluster_a.fault_stats.snapshot() == \
            cluster_b.fault_stats.snapshot()

    def test_different_seed_different_schedule(self):
        cluster_a, _ = traced_run(FAULT_PRESETS["lossy-net"], seed=5)
        cluster_b, _ = traced_run(FAULT_PRESETS["lossy-net"], seed=6)
        # Not a strict requirement fault-by-fault, but two seeds
        # producing the identical full trace would mean the seed is
        # not actually feeding the fault stream.
        assert events_to_jsonl(cluster_a.trace_events) != \
            events_to_jsonl(cluster_b.trace_events)


class TestDisabledFaultsAreInvisible:
    def test_zero_probability_plan_matches_no_plan(self):
        # A FaultPlan with every knob at zero must draw nothing from
        # the RNG and inject nothing: the run is byte-identical to one
        # built with faults=None (the NullInjector path).
        cluster_plan, run_plan = traced_run(FaultPlan())
        cluster_none, run_none = traced_run(None)
        assert events_to_jsonl(cluster_plan.trace_events) == \
            events_to_jsonl(cluster_none.trace_events)
        summary_plan, summary_none = run_plan.summary(), run_none.summary()
        # Only the plan *label* may differ ("custom" vs None); every
        # observable of the run itself must match.
        assert summary_plan.pop("faults")["plan"] == "custom"
        assert summary_none.pop("faults")["plan"] is None
        assert summary_plan == summary_none

    def test_null_run_reports_zero_faults(self):
        cluster, run = traced_run(None)
        assert all(
            value == 0
            for value in cluster.fault_stats.snapshot().values()
        )
        summary = run.summary()
        assert summary["messages_dropped"] == 0
        assert summary["faults"]["plan"] is None
