"""Unit tests for the instrumented ``self`` proxy and array views."""

import pytest

from repro import Array, Attr, ConfigurationError, method, shared_class

from conftest import make_cluster


@shared_class
class Gadget:
    name_code = Attr(size=8, default=7)
    slots = Array(size=16, count=5, default=0)

    @method
    def read_scalar(self, ctx):
        return self.name_code

    @method
    def write_scalar(self, ctx, value):
        self.name_code = value

    @method
    def array_ops(self, ctx):
        self.slots[0] = 10
        self.slots[-1] = 99  # negative indexing supported
        self.slots[1] += 5
        return len(self.slots), list(self.slots)

    @method
    def bad_attr_read(self, ctx):
        return self.ghost

    @method
    def bad_attr_write(self, ctx):
        self.ghost = 1

    @method
    def whole_array_write(self, ctx):
        self.slots = [1, 2, 3, 4, 5]

    @method
    def out_of_range(self, ctx):
        self.slots[5] = 1

    @method
    def bad_index_type(self, ctx):
        self.slots["x"] = 1

    @method
    def call_own_method(self, ctx):
        return self.read_scalar()


class TestProxy:
    def setup_method(self):
        self.cluster = make_cluster()
        self.gadget = self.cluster.create(Gadget)

    def test_scalar_round_trip(self):
        self.cluster.call(self.gadget, "write_scalar", 55)
        assert self.cluster.call(self.gadget, "read_scalar") == 55

    def test_array_semantics(self):
        length, values = self.cluster.call(self.gadget, "array_ops")
        assert length == 5
        assert values == [10, 5, 0, 0, 99]

    def test_unknown_attribute_read(self):
        with pytest.raises(AttributeError, match="ghost"):
            self.cluster.call(self.gadget, "bad_attr_read")

    def test_unknown_attribute_write(self):
        with pytest.raises(AttributeError, match="closed"):
            self.cluster.call(self.gadget, "bad_attr_write")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="assign elements"):
            self.cluster.call(self.gadget, "whole_array_write")

    def test_array_bounds_checked(self):
        with pytest.raises(IndexError):
            self.cluster.call(self.gadget, "out_of_range")

    def test_array_index_type_checked(self):
        with pytest.raises(TypeError, match="integer"):
            self.cluster.call(self.gadget, "bad_index_type")

    def test_direct_method_call_guidance(self):
        with pytest.raises(ConfigurationError, match="ctx.invoke"):
            self.cluster.call(self.gadget, "call_own_method")

    def test_repr_is_informative(self):
        from repro.objects.proxy import InstrumentedSelf
        from repro.runtime.context import TxnContext

        # repr must not trigger tracked attribute access.
        proxy_repr = None

        @shared_class
        class ReprProbe:
            x = Attr(size=8)

            @method
            def probe(self, ctx):
                nonlocal proxy_repr
                proxy_repr = repr(self)

        probe = self.cluster.create(ReprProbe)
        self.cluster.call(probe, "probe")
        assert "ReprProbe" in proxy_repr
