"""Tie-break policies: same-instant schedule perturbation.

The load-bearing property is the *default*: with no policy installed
(or the explicit ``"fifo"`` spec) the engine must order same-instant
events exactly as it always has, byte-identical at the trace level.
Everything else — lifo, the seeded random walk, the adversarial
policies — only reorders events *within* one instant and must itself
be deterministic, since a (seed, policy) pair names one reproducible
interleaving for the fuzzer.
"""

import pytest

from repro.check import trace_to_jsonl
from repro.check.events import event_dicts
from repro.runtime import Cluster, ClusterConfig
from repro.sim.engine import Environment
from repro.sim.tiebreak import (
    TIEBREAK_POLICIES,
    LifoTieBreak,
    RandomWalkTieBreak,
    ReaderFirstTieBreak,
    StarveNodeTieBreak,
    TieBreakPolicy,
    WriterFirstTieBreak,
    make_tiebreak,
    validate_tiebreak,
)
from repro.util.errors import ConfigurationError
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload


def fire_order(env, hints_list):
    """Trigger one event per hints dict at the same instant; run the
    engine and return the order in which they were processed."""
    order = []
    for label, hints in enumerate(hints_list):
        event = env.event(name=f"e{label}")
        if hints:
            event.hints = hints
        event.add_callback(lambda _e, label=label: order.append(label))
        event.succeed()
    env.run()
    return order


class TestEngineOrdering:
    def test_default_is_fifo(self):
        assert fire_order(Environment(), [{}] * 4) == [0, 1, 2, 3]

    def test_explicit_fifo_policy_matches_default(self):
        env = Environment(tiebreak=TieBreakPolicy())
        assert fire_order(env, [{}] * 4) == [0, 1, 2, 3]

    def test_lifo_reverses_same_instant_events(self):
        env = Environment(tiebreak=LifoTieBreak())
        assert fire_order(env, [{}] * 4) == [3, 2, 1, 0]

    def test_writer_first_promotes_write_hints(self):
        env = Environment(tiebreak=WriterFirstTieBreak())
        hints = [{"mode": "R"}, {"mode": "R"}, {"mode": "W"}, {}]
        # Writer first, unhinted middle, readers last.
        assert fire_order(env, hints) == [2, 3, 0, 1]

    def test_reader_first_mirrors_writer_first(self):
        env = Environment(tiebreak=ReaderFirstTieBreak())
        hints = [{"mode": "W"}, {"mode": "R"}, {}]
        assert fire_order(env, hints) == [1, 2, 0]

    def test_starve_node_demotes_one_node(self):
        env = Environment(tiebreak=StarveNodeTieBreak(1))
        hints = [{"node": 1}, {"node": 0}, {"node": 1}, {"node": 2}]
        assert fire_order(env, hints) == [1, 3, 0, 2]

    def test_causality_survives_any_policy(self):
        # LIFO reorders instants internally but a later timeout still
        # fires after every time-zero event.
        env = Environment(tiebreak=LifoTieBreak())
        order = []
        late = env.timeout(0.5)
        late.add_callback(lambda _e: order.append("late"))
        for label in range(3):
            event = env.event()
            event.add_callback(lambda _e, label=label: order.append(label))
            event.succeed()
        env.run()
        assert order == [2, 1, 0, "late"]

    def test_random_walk_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            env = Environment(tiebreak=RandomWalkTieBreak(seed=7))
            runs.append(fire_order(env, [{}] * 8))
        assert runs[0] == runs[1]
        other = fire_order(
            Environment(tiebreak=RandomWalkTieBreak(seed=8)), [{}] * 8
        )
        assert other != runs[0]  # 8! orderings; seeds 7/8 differ


class TestSpecParsing:
    @pytest.mark.parametrize("spec", TIEBREAK_POLICIES)
    def test_every_named_policy_validates(self, spec):
        validate_tiebreak(spec)

    @pytest.mark.parametrize("spec", ["bogus", "starve-node:x", "fifo:2"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            validate_tiebreak(spec)

    def test_fifo_builds_no_policy(self):
        assert make_tiebreak("fifo", seed=3, num_nodes=4) is None

    def test_starve_node_index_forms(self):
        explicit = make_tiebreak("starve-node:2", seed=0, num_nodes=4)
        assert explicit.node_index == 2
        derived = make_tiebreak("starve-node", seed=7, num_nodes=4)
        assert derived.node_index == 7 % 4
        with pytest.raises(ConfigurationError):
            make_tiebreak("starve-node:9", seed=0, num_nodes=4)

    def test_cluster_config_validates_spec(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=2, tiebreak="bogus")


def workload_trace(**overrides):
    config = ClusterConfig(num_nodes=4, protocol="lotec", seed=5,
                           audit_accesses=False, trace=True, **overrides)
    cluster = Cluster(config)
    params = SCENARIOS["medium-high"].scaled(0.125)
    run_workload(cluster, generate_workload(params, seed=5))
    return trace_to_jsonl(event_dicts(cluster.trace_events))


class TestWorkloadLevelRegression:
    def test_default_config_is_byte_identical_to_explicit_fifo(self):
        # The regression gate for the whole feature: threading a
        # tie-break hook through the engine must not move a single
        # event of the default schedule.
        assert workload_trace() == workload_trace(tiebreak="fifo")

    def test_random_policy_actually_perturbs(self):
        assert workload_trace(tiebreak="random") != workload_trace()

    def test_perturbed_runs_reproduce(self):
        first = workload_trace(tiebreak="random")
        second = workload_trace(tiebreak="random")
        assert first == second
