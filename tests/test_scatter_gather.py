"""Integration tests for Algorithm 4.5: gathering an object whose
up-to-date pages are scattered across several nodes (the situation
LOTEC's partial transfers create)."""

from repro.net.message import MessageCategory

from conftest import Ledger, make_cluster


class TestScatteredGather:
    def scatter(self, cluster):
        """Leave alpha's page at node 1 and the log tail at node 2.

        (alpha and the head of beta share page 0; the log array's last
        elements live on pages no scalar touches, so the two updates
        land on disjoint pages owned by different nodes.)"""
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 10, node=cluster.nodes[1])
        cluster.call(ledger, "log_entry", 15, 20, node=cluster.nodes[2])
        return ledger

    def test_pages_scatter_under_lotec(self):
        cluster = make_cluster(protocol="lotec", seed=3)
        ledger = self.scatter(cluster)
        entry = cluster.directory.entry(ledger.object_id)
        alpha_page = next(iter(ledger.meta.layout.attribute_pages("alpha")))
        tail_page = max(ledger.meta.layout.slot_pages("log", 15))
        assert entry.page_owner(alpha_page) == cluster.nodes[1]
        assert entry.page_owner(tail_page) == cluster.nodes[2]

    def test_gather_pulls_from_multiple_sources(self):
        cluster = make_cluster(protocol="lotec", seed=3)
        ledger = self.scatter(cluster)
        before = {
            node: cluster.network_stats.by_category_messages.get(
                MessageCategory.PAGE_REQUEST, 0
            )
            for node in [None]
        }[None]
        total = cluster.call(ledger, "sum_all", node=cluster.nodes[3])
        assert total == 30
        after = cluster.network_stats.by_category_messages.get(
            MessageCategory.PAGE_REQUEST, 0
        )
        # sum_all needs alpha (node 1), beta (node 2), and the
        # gamma/log pages (node 0): at least three source round trips.
        assert after - before >= 3

    def test_under_otec_pages_do_not_scatter(self):
        cluster = make_cluster(protocol="otec", seed=3)
        ledger = self.scatter(cluster)
        entry = cluster.directory.entry(ledger.object_id)
        # OTEC fully refreshes the acquiring site, so the last committer
        # owns every page.
        owners = {
            entry.page_owner(page)
            for page in range(ledger.meta.layout.page_count)
        }
        assert owners == {cluster.nodes[2]}

    def test_scattered_state_still_reads_correctly_everywhere(self):
        cluster = make_cluster(protocol="lotec", seed=3)
        ledger = self.scatter(cluster)
        for node in cluster.nodes:
            assert cluster.call(ledger, "sum_all", node=node) == 30

    def test_cotec_single_source_after_first_commit(self):
        cluster = make_cluster(protocol="cotec", seed=3)
        ledger = self.scatter(cluster)
        before = cluster.network_stats.category_messages(
            MessageCategory.PAGE_REQUEST
        )
        cluster.call(ledger, "sum_all", node=cluster.nodes[3])
        after = cluster.network_stats.category_messages(
            MessageCategory.PAGE_REQUEST
        )
        # Everything lives at the last committer: one source round trip.
        assert after - before == 1
