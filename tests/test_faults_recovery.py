"""Crash recovery: durable records, GDO home failover, node rejoin,
partition/slow-node windows, and the crash-instant rollback of a doomed
family's volatile writes."""

import pytest

from repro import Attr, method, shared_class
from repro.check.explorer import FuzzTask, run_task
from repro.faults import (
    NULL_WAL,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    NullWalSet,
    PartitionEvent,
    RecoveryManager,
    SlowNodeEvent,
    WalSet,
)
from repro.net import Message, MessageCategory
from repro.util.errors import NodeCrashError
from repro.util.ids import NodeId, ObjectId
from repro.util.rng import SeededRNG

from conftest import Counter, make_cluster

N0, N1, N2, N3 = (NodeId(index) for index in range(4))
O0, O1 = ObjectId(0), ObjectId(1)


@shared_class
class WriteThenCall:
    """Writes locally, then blocks on a remote child invocation —
    exactly the shape whose uncommitted write a crash must discard."""

    value = Attr(size=8, default=0)

    @method
    def write_then_call(self, ctx, other):
        self.value = 42
        result = yield ctx.invoke(other, "get")
        return result


class FakeEntry:
    """Just enough of a DirectoryEntry for record_holders."""

    def __init__(self, holders, retainers=()):
        self.holders = {txn: mode for txn, mode, _ in holders}
        self._holder_txns = {txn: ref for txn, _, ref in holders}
        self.retainers = {txn: mode for txn, mode, _ in retainers}
        self._retainer_txns = {txn: ref for txn, _, ref in retainers}


class TestNodeWal:
    def test_record_page_is_last_writer_wins(self):
        wal = WalSet(2)
        wal.record_page(0, O0, 0, 3)
        wal.record_page(0, O0, 0, 5)
        wal.record_page(0, O0, 1, 1)
        assert wal.node(0).pages == {(O0, 0): 5, (O0, 1): 1}
        assert wal.node(1).pages == {}

    def test_record_home_moved_transfers_home_and_drops_holders(self):
        wal = WalSet(2)
        wal.record_home(0, O0)
        wal.node(0).holders[O0] = [("T1", "W")]
        wal.record_home_moved(0, 1, O0)
        assert O0 not in wal.node(0).homes
        assert O0 not in wal.node(0).holders
        assert O0 in wal.node(1).homes

    def test_record_holders_snapshots_holders_and_retainers(self):
        wal = WalSet(1)
        holder_ref, retainer_ref = object(), object()
        entry = FakeEntry(
            holders=[("T1", "W", holder_ref)],
            retainers=[("T2/r0", "R", retainer_ref)],
        )
        wal.record_holders(0, O0, entry)
        # Live transaction references, not ids: reconciliation must be
        # able to point back at the exact transactions recorded.
        assert wal.node(0).holders[O0] == [
            (holder_ref, "W"), (retainer_ref, "R"),
        ]

    def test_record_count_sums_all_record_kinds(self):
        wal = WalSet(1)
        wal.record_page(0, O0, 0, 1)
        wal.record_home(0, O1)
        wal.record_holders(0, O0, FakeEntry(holders=[]))
        assert wal.node(0).record_count() == 3

    def test_null_wal_records_nothing(self):
        null = NullWalSet()
        null.record_page(0, O0, 0, 1)
        null.record_home(0, O0)
        null.record_home_moved(0, 1, O0)
        null.record_holders(0, O0, FakeEntry(holders=[]))
        assert null.enabled is False and WalSet(1).enabled is True

    def test_cluster_wires_a_wal_only_when_crashes_are_planned(self):
        assert make_cluster().wal is NULL_WAL
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=1.0, down_for_s=0.01),))
        cluster = make_cluster(faults=plan)
        assert cluster.wal.enabled
        handle = cluster.create(Counter)
        # Creation records the home durably straight away.
        home = cluster.directory.entry(handle.object_id).home_node
        assert handle.object_id in cluster.wal.node(home.value).homes


def recovery_for(plan, nodes=4):
    """A RecoveryManager wired just enough to ask successor_of."""
    injector = FaultInjector(plan, SeededRNG(0))
    return RecoveryManager(
        env=None, injector=injector, directory=None, cache=None,
        lockmgr=None, wal=NULL_WAL,
        nodes=[NodeId(index) for index in range(nodes)], tracer=None,
    )


class TestSuccessorDeterminism:
    def test_next_in_shard_order(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=1.0),))
        assert recovery_for(plan).successor_of(1, 0.5) == N2

    def test_skips_simultaneously_down_nodes(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=1.0),
            CrashEvent(node_index=2, at_s=0.0, down_for_s=1.0),
        ))
        assert recovery_for(plan).successor_of(1, 0.5) == N3

    def test_wraps_modulo_cluster_size(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=3, at_s=0.0, down_for_s=1.0),))
        assert recovery_for(plan).successor_of(3, 0.5) == N0

    def test_none_when_every_other_node_is_down(self):
        plan = FaultPlan(crashes=tuple(
            CrashEvent(node_index=index, at_s=0.0, down_for_s=1.0)
            for index in range(4)
        ))
        assert recovery_for(plan).successor_of(0, 0.5) is None

    def test_pure_function_of_time(self):
        # The same question after the window heals has a different
        # answer — and two managers always agree, which is the whole
        # coordination-free determinism argument.
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=1.0),))
        first, second = recovery_for(plan), recovery_for(plan)
        assert first.successor_of(0, 0.5) == second.successor_of(0, 0.5) == N2
        assert first.successor_of(0, 2.0) == N1


def wire_msg(src, dst):
    return Message(src=src, dst=dst, category=MessageCategory.PAGE_DATA,
                   size_bytes=100)


class TestPartitionWindows:
    PLAN = FaultPlan(partitions=(
        PartitionEvent(group_a=(0, 1), at_s=0.01, heal_after_s=0.02),))

    def injector(self, plan=None):
        return FaultInjector(plan or self.PLAN, SeededRNG(3))

    def test_cut_separates_the_groups_only_inside_the_window(self):
        injector = self.injector()
        assert injector.cut(N0, N2, 0.02)
        assert injector.cut(N3, N1, 0.02)  # symmetric
        assert not injector.cut(N0, N1, 0.02)  # same side
        assert not injector.cut(N2, N3, 0.02)  # same side (complement)
        assert not injector.cut(N0, N2, 0.005)  # before
        assert not injector.cut(N0, N2, 0.03)  # healed (half-open window)

    def test_partition_until_reports_the_heal_instant(self):
        injector = self.injector()
        assert injector.partition_until(N0, N2, 0.02) == pytest.approx(0.03)
        assert injector.partition_until(N0, N1, 0.02) == 0.0

    def test_cross_cut_messages_drop_and_are_accounted(self):
        injector = self.injector()
        verdict = injector.message_faults(wire_msg(N0, N2), 0, 0.02)
        assert verdict.dropped
        assert injector.stats.messages_dropped == 1
        assert injector.stats.partition_dropped == 1
        # Same-side traffic flows clean through the window.
        assert not injector.message_faults(wire_msg(N0, N1), 0, 0.02).dropped
        assert injector.stats.partition_dropped == 1

    def test_partition_drop_preempts_probabilistic_draws(self):
        # The cut rule fires before any RNG draw: even with certain
        # duplication the verdict is a plain drop, so the fault stream
        # is not perturbed by partition losses.
        plan = FaultPlan(
            duplicate_probability=1.0,
            partitions=self.PLAN.partitions,
        )
        verdict = self.injector(plan).message_faults(
            wire_msg(N0, N2), 0, 0.02)
        assert verdict.dropped and not verdict.duplicated

    def test_synchronous_path_ignores_partitions(self):
        # charge()'s clock is frozen; waiting out a heal would never
        # terminate, so the synchronous path skips the cut rule.
        injector = self.injector()
        verdict = injector.message_faults(wire_msg(N0, N2), 0, 0.02,
                                          synchronous=True)
        assert not verdict.dropped
        assert injector.stats.partition_dropped == 0


class TestSlowNodeWindows:
    PLAN = FaultPlan(slow_nodes=(
        SlowNodeEvent(node_index=1, at_s=0.0, for_s=1.0,
                      per_message_s=0.004),))

    def test_surcharge_is_deterministic_and_per_endpoint(self):
        injector = FaultInjector(self.PLAN, SeededRNG(0))
        verdict = injector.message_faults(wire_msg(N0, N1), 0, 0.5)
        assert verdict.extra_delay_s == pytest.approx(0.004)
        # Both endpoints degraded -> both surcharges, still no draw.
        both = injector.message_faults(wire_msg(N1, N1), 0, 0.5)
        assert both.extra_delay_s == pytest.approx(0.008)
        assert injector.stats.slow_delay_s == pytest.approx(0.012)
        assert injector.stats.delay_injected_s == 0.0

    def test_no_surcharge_outside_the_window_or_node(self):
        injector = FaultInjector(self.PLAN, SeededRNG(0))
        assert injector.message_faults(wire_msg(N0, N1), 0, 1.5).extra_delay_s == 0.0
        assert injector.message_faults(wire_msg(N0, N2), 0, 0.5).extra_delay_s == 0.0

    def test_surcharge_applies_on_the_synchronous_path(self):
        injector = FaultInjector(self.PLAN, SeededRNG(0))
        verdict = injector.message_faults(wire_msg(N0, N1), 0, 0.5,
                                          synchronous=True)
        assert verdict.extra_delay_s == pytest.approx(0.004)


#: Crash N0 at 5 ms for 50 ms; failover detection fires at 7 ms.
FAILOVER_PLAN = FaultPlan(
    failover_detect_s=0.002,
    crashes=(CrashEvent(node_index=0, at_s=0.005, down_for_s=0.05),),
)


class TestFailoverRejoin:
    """End-to-end: home dies, entries fail over to the deterministic
    successor, commits proceed through the down window, and rejoin
    reclaims the homes from durable state."""

    def make(self):
        cluster = make_cluster(trace=True, faults=FAILOVER_PLAN)
        # O0 is *homed* at N0 (round-robin by object id) but its pages
        # live at N1, so only the directory role dies with N0.
        handle = cluster.create(Counter, node=N1)
        assert cluster.directory.entry(handle.object_id).home_node == N0
        return cluster, handle

    def test_home_fails_over_then_rejoin_reclaims(self):
        cluster, handle = self.make()
        cluster.env.run(until=0.01)
        entry = cluster.directory.entry(handle.object_id)
        assert entry.home_node == N1  # deterministic successor
        assert cluster.fault_stats.failovers == 1
        # The successor's durable record now claims the home; the
        # crashed node's unreachable record keeps its stale claim.
        assert handle.object_id in cluster.wal.node(1).homes
        assert handle.object_id in cluster.wal.node(0).homes
        cluster.run()
        assert cluster.directory.entry(handle.object_id).home_node == N0
        assert cluster.fault_stats.recoveries == 1
        assert cluster.fault_stats.rejoin_reclaimed_homes == 1
        assert handle.object_id not in cluster.wal.node(1).homes
        names = [event.name for event in cluster.trace_events]
        assert "gdo.failover O0" in names
        assert "fault.node_rejoin N0" in names

    def test_commits_proceed_during_the_down_window(self):
        cluster, handle = self.make()
        cluster.env.run(until=0.01)
        ticket = cluster.submit(handle, "add", 5, node=N2)
        cluster.env.run(until=0.04)  # still inside the down window
        assert ticket.done and ticket.result() == 5
        # The grant/release snapshots went to the *successor's* durable
        # record; the dead home's storage took no writes.
        assert handle.object_id in cluster.wal.node(1).holders
        assert handle.object_id not in cluster.wal.node(0).holders
        cluster.run()
        follow_up = cluster.submit(handle, "add", 1, node=N3)
        cluster.run()
        assert follow_up.result() == 6
        assert cluster.read_attr(handle, "value") == 6

    def test_wal_writes_suppressed_while_the_home_is_down(self):
        # Before failover re-homes the entry there is a window where
        # the home is both authoritative and dead: the lock manager
        # must not write to its stable storage.
        cluster, handle = self.make()
        entry = cluster.directory.entry(handle.object_id)
        cluster.lockmgr._wal_record_holders(handle.object_id, entry)
        assert handle.object_id in cluster.wal.node(0).holders  # up: writes
        cluster.wal.node(0).holders.clear()
        cluster.env.run(until=0.006)  # down, failover not yet detected
        cluster.lockmgr._wal_record_holders(handle.object_id, entry)
        assert handle.object_id not in cluster.wal.node(0).holders


#: Crash N2 at 1 ms — after WriteThenCall's local write lands (~0.75 ms)
#: but while the family is blocked on its remote child call.
ROLLBACK_PLAN = FaultPlan(crashes=(
    CrashEvent(node_index=2, at_s=0.001, down_for_s=0.01),))


class TestCrashRollback:
    """A crash frees the doomed family's locks at the crash instant, so
    its uncommitted writes must be discarded at that same instant — the
    family's own exception-driven unwinding can stall on the dead
    node's messaging until rejoin, long after the locks are re-granted."""

    def launch(self):
        cluster = make_cluster(faults=ROLLBACK_PLAN)
        obj = cluster.create(WriteThenCall)
        other = cluster.create(Counter)
        ticket = cluster.submit(obj, "write_then_call", other, node=N2)
        return cluster, obj, ticket

    def probe_slot(self, cluster, obj):
        store = cluster.executor.stores[N2]
        return store.peek_slot(obj.object_id, ("value", 0))

    def test_uncommitted_write_is_discarded_at_the_crash_instant(self):
        cluster, obj, ticket = self.launch()
        cluster.env.run(until=0.0011)  # just past the crash
        assert self.probe_slot(cluster, obj) == (True, 0)
        cluster.run()
        assert cluster.fault_stats.crash_aborted_families == 1
        assert self.probe_slot(cluster, obj) == (True, 0)
        assert cluster.read_attr(obj, "value") == 0
        with pytest.raises(NodeCrashError):
            ticket.result()

    def test_probe_discriminates(self):
        # Negative control: with the rollback stubbed out, the dirty
        # write is visible right after the crash — proving the probe
        # instant really sits inside the old exposure window.
        cluster, obj, _ticket = self.launch()
        cluster.executor.crash_rollback = lambda root: 0
        cluster.env.run(until=0.0011)
        assert self.probe_slot(cluster, obj) == (True, 42)


class TestRejoinMutationCaught:
    """The seeded ghost-holder mutation must trip the liveness checker."""

    def run_mutated(self, seed):
        task = FuzzTask(seed=seed, preset="crash-partition", scale=0.5,
                        mutate=("skip-rejoin-invalidation",))
        return run_task(task)

    def test_ghost_holders_starve_the_cluster(self):
        report = self.run_mutated(seed=0)
        tags = [violation.checker for violation in report.violations]
        assert "invariant.liveness" in tags

    def test_caught_across_seeds(self):
        caught = sum(
            "invariant.liveness" in
            [v.checker for v in self.run_mutated(seed).violations]
            for seed in range(4)
        )
        assert caught >= 3

    def test_unmutated_preset_is_clean(self):
        report = run_task(FuzzTask(seed=0, preset="crash-partition",
                                   scale=0.5))
        assert report.ok, report.failure_summary()
