"""Event-driven transfer completion — the phantom-time install fix.

A gather used to wait on an *estimated* round-trip timer computed at
send time, so pages were installed at that phantom instant even when
fault injection dropped or delayed the actual wire messages.  Gathers
now chain through the real delivery events of ``Network.send``:
installation cannot happen before the ``PAGE_DATA`` bytes arrive, and
every retransmit turnaround pushes it out by exactly the time lost.
"""

import pytest

from repro import check_serializability
from repro.core.transfer import gather_pages
from repro.faults import FAULT_PRESETS, FaultInjector, FaultPlan
from repro.gdo.entry import PageMapEntry
from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.memory.store import NodeStore
from repro.net.network import Network, NetworkConfig
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.objects.schema import ClassSchema
from repro.runtime import Cluster, ClusterConfig
from repro.sim import Environment
from repro.util.ids import NodeId, ObjectId
from repro.util.rng import SeededRNG
from repro.workload import SCENARIOS, generate_workload, run_workload

N0, N1, N2 = NodeId(0), NodeId(1), NodeId(2)
OID = ObjectId(0)


def make_world(injector=None):
    """Three-node world with one three-page object created at N1."""
    env = Environment()
    network = Network(env, NetworkConfig(bandwidth_bps=100e6,
                                         software_cost_s=1e-5),
                      injector=injector)
    sizes = SizeModel(page_bytes=100)
    layout = ObjectLayout(
        [AttributeSpec("a", 90), AttributeSpec("b", 90),
         AttributeSpec("c", 90)],
        page_size=100,
    )
    stores = {node: NodeStore(node) for node in (N0, N1, N2)}
    stores[N1].create_object(OID, layout)
    for node in (N0, N2):
        stores[node].register_object(OID, layout)
    schema = ClassSchema("T", layout.attributes, methods={"m": None})
    meta = ObjectMeta(object_id=OID, schema=schema, layout=layout,
                      home_node=N1, creator_node=N1)
    return env, network, sizes, stores, meta


def page_map(owners, versions):
    return {
        page: PageMapEntry(owner=owner, version=version)
        for page, (owner, version) in enumerate(zip(owners, versions))
    }


def one_page_gather(env, network, sizes, stores, meta):
    def proc():
        shipped = yield from gather_pages(
            env, network, sizes, stores, N0, meta,
            page_map([N1, N1, N1], [1, 1, 1]), pages=[0],
        )
        return shipped

    return env.run_process(proc())


class TestEventDrivenCompletion:
    def test_fault_free_gather_completes_at_wire_time(self):
        # Without faults the delivery-event chain must land at exactly
        # the request + response transfer time the old timer estimated.
        env, network, sizes, stores, meta = make_world()
        shipped = one_page_gather(env, network, sizes, stores, meta)
        assert shipped == [0]
        expected = (
            network.config.transfer_time(sizes.page_request(1))
            + network.config.transfer_time(sizes.page_data(1))
        )
        assert env.now == pytest.approx(expected)

    def test_gather_latency_includes_retransmit_turnarounds(self):
        # drop_probability=1.0 with retransmit_limit=2 loses exactly
        # two attempts per leg (the third is past the limit, hence
        # lossless), so the completion time is fully deterministic.
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        injector = FaultInjector(plan, SeededRNG(1))
        env, network, sizes, stores, meta = make_world(injector)
        shipped = one_page_gather(env, network, sizes, stores, meta)
        assert shipped == [0]
        t_req = network.config.transfer_time(sizes.page_request(1))
        t_resp = network.config.transfer_time(sizes.page_data(1))
        # Escalating backoff: 1x base after attempt 0, 2x after 1.
        leg = lambda t: (t + 0.001) + (t + 0.002) + t  # noqa: E731
        assert env.now == pytest.approx(leg(t_req) + leg(t_resp))
        # Strictly later than the old estimated round trip: the
        # phantom-time install bug would have finished here.
        assert env.now > t_req + t_resp
        assert injector.stats.retransmissions == 4
        # Both wire messages delivered on their third attempt.
        assert dict(network.stats.by_attempts) == {3: 2}

    def test_pages_not_installed_at_the_phantom_instant(self):
        # A probe sampling the acquiring store at the *estimated*
        # round-trip time (where the old timer installed) must still
        # see no resident page; only after the real delivery does the
        # page appear.
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=2,
                         retransmit_timeout_s=0.001)
        env, network, sizes, stores, meta = make_world(
            FaultInjector(plan, SeededRNG(1)))
        phantom = (
            network.config.transfer_time(sizes.page_request(1))
            + network.config.transfer_time(sizes.page_data(1))
        )
        seen = {}

        def probe():
            yield env.timeout(phantom)
            seen["at_phantom_time"] = stores[N0].resident_pages(OID)

        env.process(probe())
        one_page_gather(env, network, sizes, stores, meta)
        assert not seen["at_phantom_time"]
        assert 0 in stores[N0].resident_pages(OID)

    def test_jitter_delays_completion(self):
        plan = FaultPlan(delay_jitter_s=0.002)
        injector = FaultInjector(plan, SeededRNG(7))
        env, network, sizes, stores, meta = make_world(injector)
        one_page_gather(env, network, sizes, stores, meta)
        clean = (
            network.config.transfer_time(sizes.page_request(1))
            + network.config.transfer_time(sizes.page_data(1))
        )
        assert env.now == pytest.approx(clean + injector.stats.delay_injected_s)
        assert injector.stats.delay_injected_s > 0


class TestLossyNetInstallOrdering:
    """Flagship regression: under the lossy-net preset no install may
    precede the delivery instant of the ``PAGE_DATA`` that carried it."""

    def run_lossy(self):
        workload = generate_workload(SCENARIOS["medium-high"].scaled(0.2),
                                     seed=5)
        cluster = Cluster(ClusterConfig(
            num_nodes=4, seed=5, protocol="lotec", trace=True,
            faults=FAULT_PRESETS["lossy-net"],
        ))
        return cluster, run_workload(cluster, workload)

    def test_no_install_precedes_its_delivery_instant(self):
        cluster, run = self.run_lossy()
        assert run.committed > 0
        # The preset really exercised the retransmission machinery, so
        # the ordering below is tested under delayed deliveries, not
        # on a clean channel that happens to have a plan attached.
        assert cluster.fault_stats.messages_dropped > 0
        assert cluster.fault_stats.retransmissions > 0
        installs = [event for event in cluster.trace_events
                    if event.name.startswith("transfer.install")]
        assert installs
        for event in installs:
            delivered_at = event.args["delivered_at"]
            assert delivered_at, event
            # Installation happens when the last delivery event of its
            # gather fires — never before any of its own deliveries.
            assert event.ts >= max(delivered_at) - 1e-12, event
        assert check_serializability(cluster).equivalent

    def test_retransmitted_gathers_deliver_later_than_clean_ones(self):
        # At least one gather's recorded delivery instants must reflect
        # a retransmit turnaround: deliver - send spans the turnarounds
        # for some PAGE_DATA message (attempts > 1).
        cluster, _run = self.run_lossy()
        assert any(attempts > 1
                   for attempts in cluster.network.stats.by_attempts)
