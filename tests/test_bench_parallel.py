"""Tests for the parallel runner and the on-disk result cache."""

import dataclasses
import json
import os

import pytest

from repro.bench import (
    ExperimentResult,
    ExperimentRunner,
    RESULT_SCHEMA_VERSION,
    ResultCache,
    RunSpec,
    build_plan,
    run_experiment,
)
from repro.bench.parallel import EXTRACTORS, execute_run
from repro.runtime.config import ClusterConfig
from repro.workload.params import SCENARIOS

TINY = dict(seed=3, scale=0.08, num_nodes=3)


def _tiny_spec(protocol="lotec", seed=3):
    return RunSpec(
        driver="test-spec", key=protocol,
        config=ClusterConfig(num_nodes=3, protocol=protocol, seed=seed,
                             audit_accesses=False),
        params=SCENARIOS["medium-high"].scaled(0.08), seed=seed,
    )


def _result_blob(result):
    return json.dumps(result.to_json(), sort_keys=True)


class TestParallelIdentity:
    """Parallel output must be byte-identical to serial output."""

    def test_bytes_figure_parallel_matches_serial(self):
        serial = run_experiment("fig2", jobs=1, **TINY)
        pooled = run_experiment("fig2", jobs=3, **TINY)
        assert _result_blob(serial) == _result_blob(pooled)

    def test_time_figure_parallel_matches_serial(self):
        kwargs = dict(software_costs=["100us", "500ns"], **TINY)
        serial = run_experiment("fig7", jobs=1, **kwargs)
        pooled = run_experiment("fig7", jobs=4, **kwargs)
        assert _result_blob(serial) == _result_blob(pooled)

    def test_pool_runs_specs_in_worker_processes(self):
        # Register a throwaway extractor that records the executing
        # PID; fork-based workers inherit the registration.
        EXTRACTORS["test-pid"] = lambda run: {"pid": os.getpid()}
        try:
            plan = build_plan("fig2", **TINY)
            specs = [
                dataclasses.replace(spec, extractor="test-pid")
                for spec in plan.specs
            ]
            measurements = ExperimentRunner(jobs=2).execute(specs)
            pids = {m["pid"] for m in measurements}
            assert os.getpid() not in pids
        finally:
            del EXTRACTORS["test-pid"]

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentRunner(jobs=0)


class TestRunSpec:
    def test_payload_is_json_serializable_and_stable(self):
        spec = _tiny_spec()
        blob = json.dumps(spec.payload(), sort_keys=True)
        assert blob == json.dumps(spec.payload(), sort_keys=True)
        payload = spec.payload()
        assert payload["driver"] == "test-spec"
        assert payload["config"]["protocol"] == "lotec"

    def test_spec_without_params_or_builder_rejected(self):
        spec = RunSpec(
            driver="d", key="k",
            config=ClusterConfig(num_nodes=3, seed=3),
        )
        with pytest.raises(ValueError, match="neither"):
            execute_run(spec)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        spec = _tiny_spec()
        assert cache.get(spec) is None
        measurement = execute_run(spec)
        cache.put(spec, measurement)
        assert cache.get(spec) == measurement
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_version_bump_invalidates(self, tmp_path):
        root = str(tmp_path / "c")
        spec = _tiny_spec()
        ResultCache(root=root, version="v1").put(spec, {"x": 1})
        assert ResultCache(root=root, version="v1").get(spec) == {"x": 1}
        assert ResultCache(root=root, version="v2").get(spec) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        spec = _tiny_spec()
        cache.put(spec, {"x": 1})
        with open(cache.path(spec), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(spec) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        spec = _tiny_spec()
        cache.put(spec, {"x": 1})
        cache.clear()
        assert not os.path.exists(cache.root)
        assert cache.get(spec) is None


class TestCachedRunner:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        first = run_experiment("abl-gdocache", cache=cache, **TINY)
        assert cache.stats()["hits"] == 0

        runner = ExperimentRunner(cache=cache)
        second = runner.run("abl-gdocache", **TINY)
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cache_hits == runner.last_stats.runs > 0
        assert _result_blob(first) == _result_blob(second)

    def test_cached_run_executes_no_simulation(self, tmp_path, monkeypatch):
        import repro.bench.parallel as par

        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        run_experiment("abl-gdocache", cache=cache, **TINY)

        def explode(spec):
            raise AssertionError("cache hit expected; simulation ran")

        monkeypatch.setattr(par, "execute_run", explode)
        result = run_experiment("abl-gdocache", cache=cache, **TINY)
        assert set(result.series["total_messages"]) == {"cached", "uncached"}

    def test_version_bump_re_executes(self, tmp_path):
        root = str(tmp_path / "c")
        run_experiment(
            "abl-gdocache", cache=ResultCache(root=root, version="v1"),
            **TINY)
        bumped = ResultCache(root=root, version="v2")
        runner = ExperimentRunner(cache=bumped)
        runner.run("abl-gdocache", **TINY)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == runner.last_stats.runs > 0

    def test_run_many_orders_and_counts(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        runner = ExperimentRunner(cache=cache)
        ids = ["abl-gdocache", "abl-dsd"]
        results = runner.run_many(ids, **TINY)
        assert list(results) == ids
        assert runner.last_plan_sizes == {"abl-gdocache": 2, "abl-dsd": 2}
        assert runner.last_plan_hits == {"abl-gdocache": 0, "abl-dsd": 0}

        again = runner.run_many(ids, **TINY)
        assert runner.last_plan_hits == {"abl-gdocache": 2, "abl-dsd": 2}
        for eid in ids:
            assert _result_blob(results[eid]) == _result_blob(again[eid])


class TestResultJson:
    def test_round_trip(self):
        result = run_experiment("msg-count", **TINY)
        data = result.to_json()
        assert data["schema"] == RESULT_SCHEMA_VERSION
        restored = ExperimentResult.from_json(json.loads(json.dumps(data)))
        assert restored.experiment == result.experiment
        assert restored.x_label == result.x_label
        assert restored.series == result.series
        assert restored.meta == result.meta

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ExperimentResult.from_json({
                "schema": 999, "experiment": "e", "x_label": "x",
                "series": {},
            })

    def test_non_json_meta_dropped(self):
        result = ExperimentResult(
            experiment="e", x_label="x", series={"s": {"a": 1}},
            meta={"fine": 1, "bad": object()},
        )
        data = result.to_json()
        assert data["meta"] == {"fine": 1}
        json.dumps(data)  # the whole envelope must serialize


class TestRunSpecValidation:
    """Non-JSON-native payloads must fail at construction, not surface
    as a silent repr-keyed (always-miss or colliding) cache entry."""

    def test_non_json_native_builder_args_rejected(self):
        from repro.util.errors import ConfigurationError

        class Opaque:
            pass

        with pytest.raises(ConfigurationError, match="builder_args"):
            RunSpec(
                driver="d", key="k",
                config=ClusterConfig(num_nodes=3, seed=3),
                builder="custom", builder_args=(("knob", Opaque()),),
            )

    def test_non_string_dict_keys_rejected(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="key"):
            RunSpec(
                driver="d", key="k",
                config=ClusterConfig(num_nodes=3, seed=3),
                builder="custom", builder_args=(("map", {1: "x"}),),
            )

    def test_json_native_payload_accepted_and_strictly_keyed(self, tmp_path):
        spec = RunSpec(
            driver="d", key="k",
            config=ClusterConfig(num_nodes=3, seed=3),
            builder="custom",
            builder_args=(("knob", [1, 2.5, "s", None, True]),),
        )
        cache = ResultCache(root=str(tmp_path / "c"), version="v1")
        # The strict (no default=str) fingerprint round-trips.
        assert cache.key(spec) == cache.key(spec)
