"""Unit tests for per-class protocol dispatch (ProtocolSuite)."""

import pytest

from repro.core import ProtocolSuite, make_protocol
from repro.memory.store import NodeStore
from repro.net.network import Network, NetworkConfig
from repro.net.sizes import SizeModel
from repro.sim import Environment
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId


def make_factory():
    env = Environment()
    network = Network(env, NetworkConfig(bandwidth_bps=1e8,
                                         software_cost_s=1e-5))
    sizes = SizeModel()
    stores = {NodeId(0): NodeStore(NodeId(0))}

    def factory(name):
        return make_protocol(name, env=env, network=network, sizes=sizes,
                             stores=stores)

    return factory


class FakeMeta:
    def __init__(self, class_name):
        class Schema:
            name = class_name

        self.schema = Schema()


class TestSuiteBuild:
    def test_default_only(self):
        suite = ProtocolSuite.build(make_factory(), "lotec", ())
        assert suite.name == "lotec"
        assert len(suite.instances()) == 1
        assert suite.for_meta(FakeMeta("Anything")).name == "lotec"

    def test_class_override(self):
        suite = ProtocolSuite.build(
            make_factory(), "lotec", (("Hot", "rc"), ("Cold", "cotec"))
        )
        assert suite.for_meta(FakeMeta("Hot")).name == "rc"
        assert suite.for_meta(FakeMeta("Cold")).name == "cotec"
        assert suite.for_meta(FakeMeta("Other")).name == "lotec"
        assert suite.name == "cotec+lotec+rc"
        assert len(suite.instances()) == 3

    def test_same_name_shares_instance(self):
        suite = ProtocolSuite.build(
            make_factory(), "lotec", (("A", "rc"), ("B", "rc"))
        )
        assert suite.for_meta(FakeMeta("A")) is suite.for_meta(FakeMeta("B"))
        assert len(suite.instances()) == 2

    def test_override_with_default_name_shares_default(self):
        suite = ProtocolSuite.build(
            make_factory(), "lotec", (("A", "lotec"),)
        )
        assert suite.for_meta(FakeMeta("A")) is suite.default
        assert len(suite.instances()) == 1

    def test_duplicate_class_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            ProtocolSuite.build(
                make_factory(), "lotec", (("A", "rc"), ("A", "otec"))
            )


class TestSuiteStats:
    def test_prediction_stats_merge_across_instances(self):
        suite = ProtocolSuite.build(make_factory(), "lotec", (("A", "rc"),))
        suite.default.prediction_stats.acquisitions = 3
        suite.for_meta(FakeMeta("A")).prediction_stats.acquisitions = 4
        assert suite.prediction_stats.acquisitions == 7

    def test_snapshot_single_vs_multi(self):
        single = ProtocolSuite.build(make_factory(), "lotec", ())
        assert single.snapshot()["protocol"] == "lotec"
        multi = ProtocolSuite.build(make_factory(), "lotec", (("A", "rc"),))
        snap = multi.snapshot()
        assert snap["protocol"] == "lotec+rc"
        assert len(snap["instances"]) == 2

    def test_commit_hook_groups_by_protocol(self):
        calls = []

        class Spy:
            def __init__(self, name):
                self.name = name
                self.prediction_stats = None

            def on_root_commit(self, root, dirty, metas):
                calls.append((self.name, sorted(d.value for d in dirty)))

        from repro.util.ids import ObjectId

        suite = ProtocolSuite(default=Spy("lazy"), by_class={"Hot": Spy("eager")})
        metas = {
            ObjectId(1): FakeMeta("Hot"),
            ObjectId(2): FakeMeta("Cold"),
            ObjectId(3): FakeMeta("Hot"),
        }
        suite.on_root_commit(
            root=None,
            dirty={ObjectId(1): {0}, ObjectId(2): {1}, ObjectId(3): {2}},
            metas=metas.__getitem__,
        )
        assert sorted(calls) == [("eager", [1, 3]), ("lazy", [2])]
