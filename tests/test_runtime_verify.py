"""Tests for the serializability oracle itself.

An oracle that cannot detect corruption proves nothing, so half of
these tests *inject* wrong state / wrong results and assert the oracle
flags them.
"""

import pytest

from repro import check_serializability, replay_serially
from repro.runtime.executor import freeze_args, thaw_args, _HandleRef

from conftest import Counter, Orchestrator, make_cluster


@pytest.fixture
def busy_cluster():
    cluster = make_cluster(protocol="lotec", seed=13)
    counters = [cluster.create(Counter) for _ in range(4)]
    boss = cluster.create(Orchestrator)
    for index in range(10):
        cluster.submit(counters[index % 4], "add", index + 1)
    cluster.submit(boss, "fanout", counters[:2], 5)
    cluster.run()
    return cluster


class TestFreezeThaw:
    def test_handles_replaced_and_restored(self, cluster):
        counter = cluster.create(Counter)
        frozen = freeze_args((counter, [1, counter], {"k": counter}))
        assert frozen == (
            _HandleRef(0), [1, _HandleRef(0)], {"k": _HandleRef(0)},
        )
        thawed = thaw_args(frozen, lambda value: f"handle-{value}")
        assert thawed == ("handle-0", [1, "handle-0"], {"k": "handle-0"})

    def test_plain_values_untouched(self):
        data = (1, "x", 2.5, None)
        assert freeze_args(data) == data
        assert thaw_args(data, lambda v: v) == data


class TestReplay:
    def test_replay_reproduces_state(self, busy_cluster):
        serial = replay_serially(busy_cluster)
        assert serial.state_digest() == busy_cluster.state_digest()

    def test_replay_preserves_object_ids(self, busy_cluster):
        serial = replay_serially(busy_cluster)
        assert serial.registry.all_objects() == \
            busy_cluster.registry.all_objects()

    def test_report_counts_commits(self, busy_cluster):
        report = check_serializability(busy_cluster)
        assert report.equivalent
        assert report.committed_roots == len(busy_cluster.commit_log)


class TestOracleDetectsCorruption:
    def test_state_corruption_detected(self, busy_cluster):
        # Tamper with the authoritative copy of one counter.
        handle = busy_cluster.handle(busy_cluster.registry.all_objects()[0])
        entry = busy_cluster.directory.entry(handle.object_id)
        owner = entry.page_owner(0)
        busy_cluster.stores[owner].write_slot(
            handle.object_id, ("value", 0), 999_999
        )
        report = check_serializability(busy_cluster)
        assert not report.equivalent
        assert report.state_mismatches

    def test_result_corruption_detected(self, busy_cluster):
        from dataclasses import replace

        record = busy_cluster.commit_log[-1]
        busy_cluster.commit_log[-1] = replace(record, result=-12345)
        report = check_serializability(busy_cluster)
        assert not report.equivalent
        assert report.result_mismatches

    def test_lost_update_detected(self, busy_cluster):
        # Simulate a lost update by deleting one commit record: the
        # serial replay then disagrees with the concurrent state.
        removed = None
        for index, record in enumerate(busy_cluster.commit_log):
            if record.method_name == "add":
                removed = busy_cluster.commit_log.pop(index)
                break
        assert removed is not None
        report = check_serializability(busy_cluster)
        assert not report.equivalent


class TestAbortsInvisibleToOracle:
    def test_aborted_roots_not_replayed(self):
        from repro import TransactionAborted

        cluster = make_cluster(seed=1)
        counter = cluster.create(Counter, initial={"value": 3})
        cluster.call(counter, "add", 1)
        with pytest.raises(TransactionAborted):
            cluster.call(counter, "fail_after_write", 50)
        report = check_serializability(cluster)
        assert report.equivalent
        assert report.committed_roots == 1
