"""Integration tests: deadlock detection, victim abort, and retry."""

import pytest

from repro import Attr, TransactionAborted, method, shared_class

from conftest import Counter, make_cluster


@shared_class
class Hoarder:
    """Grabs two counters in a caller-chosen order — the classic
    lock-ordering deadlock when two of these run with opposite orders."""

    done = Attr(size=8, default=0)

    @method
    def grab_both(self, ctx, first, second):
        yield ctx.invoke(first, "add", 1)
        yield ctx.invoke(second, "add", 1)
        self.done += 1
        return self.done


class TestDeadlock:
    def make_deadlock_prone(self, seed=0, **overrides):
        cluster = make_cluster(protocol="lotec", seed=seed, **overrides)
        a = cluster.create(Counter, node=cluster.nodes[0])
        b = cluster.create(Counter, node=cluster.nodes[1])
        h1 = cluster.create(Hoarder, node=cluster.nodes[2])
        h2 = cluster.create(Hoarder, node=cluster.nodes[3])
        return cluster, a, b, h1, h2

    def test_opposite_order_grabs_resolve(self):
        cluster, a, b, h1, h2 = self.make_deadlock_prone()
        t1 = cluster.submit(h1, "grab_both", a, b, node=cluster.nodes[2])
        t2 = cluster.submit(h2, "grab_both", b, a, node=cluster.nodes[3])
        cluster.run()
        assert t1.result() == 1
        assert t2.result() == 1
        assert cluster.read_attr(a, "value") == 2
        assert cluster.read_attr(b, "value") == 2

    def test_deadlock_detected_and_victim_retried(self):
        # Force the interleaving: submit many opposing pairs; with four
        # nodes and no arrival jitter, cycles are certain.
        cluster, a, b, h1, h2 = self.make_deadlock_prone(seed=3)
        tickets = []
        for index in range(8):
            grabber, first, second = (
                (h1, a, b) if index % 2 == 0 else (h2, b, a)
            )
            tickets.append(cluster.submit(grabber, "grab_both", first, second))
        cluster.run()
        for ticket in tickets:
            ticket.result()  # everything eventually commits
        assert cluster.read_attr(a, "value") == 8
        assert cluster.read_attr(b, "value") == 8
        assert cluster.lock_stats.deadlocks > 0
        assert cluster.txn_stats.retries == cluster.txn_stats.aborts_deadlock

    def test_victim_rollback_is_complete(self):
        cluster, a, b, h1, h2 = self.make_deadlock_prone(seed=5)
        for index in range(6):
            grabber, first, second = (
                (h1, a, b) if index % 2 == 0 else (h2, b, a)
            )
            cluster.submit(grabber, "grab_both", first, second)
        cluster.run()
        # Final state reflects exactly the committed work: no phantom
        # increments from aborted attempts survived.
        assert cluster.read_attr(a, "value") == 6
        assert cluster.read_attr(b, "value") == 6
        assert cluster.read_attr(h1, "done") + cluster.read_attr(h2, "done") == 6

    def test_retry_budget_exhaustion_surfaces(self):
        cluster, a, b, h1, h2 = self.make_deadlock_prone(
            seed=3, max_retries=0
        )
        tickets = []
        for index in range(8):
            grabber, first, second = (
                (h1, a, b) if index % 2 == 0 else (h2, b, a)
            )
            tickets.append(cluster.submit(grabber, "grab_both", first, second))
        cluster.run()
        outcomes = []
        for ticket in tickets:
            try:
                ticket.result()
                outcomes.append("ok")
            except TransactionAborted as exc:
                assert "retries-exhausted" in exc.reason
                outcomes.append("aborted")
        assert "aborted" in outcomes  # with zero retries some must die
        assert "ok" in outcomes       # and the survivors must finish

    def test_no_deadlock_between_readers(self):
        cluster = make_cluster(protocol="lotec", seed=1)
        counter = cluster.create(Counter)
        for node in cluster.nodes:
            cluster.submit(counter, "get", node=node)
        cluster.run()
        assert cluster.lock_stats.deadlocks == 0
