"""The nested-O2PL reference model, fed hand-built trace streams.

Each test scripts a tiny trace (the JSONL-shaped dicts the tracer
sanitizes to) and asserts the model's judgement: legal choreographies
pass, and each forbidden acquire/retain/release pattern from
Algorithms 4.1-4.4 is flagged with the right checker tag.  A final
test feeds the model a real cluster trace to pin the two
implementations together.
"""

from repro.check import ReferenceModel, check_reference_model
from repro.check.events import TxnRef, parse_object, parse_txn

from conftest import Counter, Orchestrator, make_cluster


# -- trace-building helpers (sanitized event shapes) -------------------

def grant(txn, obj, mode="W", lineage=(), ts=0.0):
    return {
        "name": f"lock.grant O{obj}", "category": "lock", "phase": "i",
        "ts": ts,
        "args": {"txn": txn, "object": f"O{obj}", "mode": mode,
                 "lineage": list(lineage)},
    }


def wait_grant(txn, obj, mode="W", lineage=(), ts=0.0):
    return {
        "name": f"lock.wait O{obj}", "category": "lock", "phase": "X",
        "ts": ts,
        "args": {"txn": txn, "object": f"O{obj}", "mode": mode,
                 "granted": True, "lineage": list(lineage)},
    }


def prefetch(txn, obj, mode="W", lineage=(), ts=0.0):
    return {
        "name": f"lock.prefetch O{obj}", "category": "lock", "phase": "i",
        "ts": ts,
        "args": {"txn": txn, "object": f"O{obj}", "mode": mode,
                 "outcome": "granted", "lineage": list(lineage)},
    }


def inherit(txn, parent, objs, ts=0.0):
    return {
        "name": "lock.inherit", "category": "lock", "phase": "i", "ts": ts,
        "args": {"txn": txn, "parent": parent,
                 "objects": [f"O{obj}" for obj in objs]},
    }


def release(root, objs, ts=0.0):
    return {
        "name": "lock.release", "category": "lock", "phase": "i", "ts": ts,
        "args": {"root": root, "objects": [f"O{obj}" for obj in objs],
                 "cause": "commit"},
    }


def txn_end(txn, outcome, ts=0.0):
    return {
        "name": f"txn:{txn}", "category": "txn", "phase": "X", "ts": ts,
        "args": {"txn": txn, "outcome": outcome},
    }


def checkers(violations):
    return [violation.checker for violation in violations]


class TestParsing:
    def test_txn_refs(self):
        assert parse_txn("T5") == TxnRef(5, 5)
        assert parse_txn("T5/r3") == TxnRef(5, 3)
        assert parse_txn("T5").is_root
        assert not parse_txn("T5/r3").is_root
        assert repr(parse_txn("T5/r3")) == "T5/r3"

    def test_object_refs(self):
        assert parse_object("O17") == 17


class TestLegalChoreographies:
    def test_nested_commit_flow_is_clean(self):
        # Child acquires, pre-commits to parent (retained), sibling
        # re-enters under the retention, root releases and commits.
        trace = [
            grant("T1/r0", 1, "W", lineage=[0]),
            inherit("T1/r0", "T0", [1]),
            txn_end("T1/r0", "commit"),
            grant("T2/r0", 1, "W", lineage=[0]),
            inherit("T2/r0", "T0", [1]),
            txn_end("T2/r0", "commit"),
            release(0, [1]),
            txn_end("T0", "commit"),
        ]
        assert check_reference_model(trace) == []

    def test_cross_family_readers_are_clean(self):
        trace = [
            grant("T0", 1, "R"), grant("T5", 1, "R"),
            release(0, [1]), txn_end("T0", "commit"),
            release(5, [1]), txn_end("T5", "commit"),
        ]
        assert check_reference_model(trace) == []

    def test_sub_abort_preserves_ancestor_retention(self):
        # First child pre-commits (root retains O1); second child
        # re-acquires, aborts — the root's retention must survive for
        # the third child without a fresh violation.
        trace = [
            grant("T1/r0", 1, "W", lineage=[0]),
            inherit("T1/r0", "T0", [1]),
            txn_end("T1/r0", "commit"),
            grant("T2/r0", 1, "W", lineage=[0]),
            txn_end("T2/r0", "abort"),
            grant("T3/r0", 1, "W", lineage=[0]),
            inherit("T3/r0", "T0", [1]),
            txn_end("T3/r0", "commit"),
            release(0, [1]),
            txn_end("T0", "commit"),
        ]
        model = ReferenceModel()
        partial = trace[:5]
        model.run(partial)
        # After the second child's abort the root still retains O1.
        assert model.retainers(1) == {TxnRef(0, 0): "W"}
        assert check_reference_model(trace) == []

    def test_crash_abort_frees_the_family(self):
        trace = [
            grant("T0", 1, "W"),
            {"name": "fault.crash_abort", "category": "fault",
             "phase": "i", "ts": 0.0, "args": {"root": 0}},
            grant("T5", 1, "W"),
            release(5, [1]), txn_end("T5", "commit"),
        ]
        assert check_reference_model(trace) == []


class TestForbiddenGrants:
    def test_cross_family_write_conflict(self):
        trace = [grant("T0", 1, "W"), wait_grant("T5", 1, "W")]
        violations = check_reference_model(trace)
        assert checkers(violations) == ["reference.conflict"]
        assert "T5" in violations[0].message

    def test_upgrade_with_other_readers(self):
        trace = [grant("T0", 1, "R"), grant("T5", 1, "R"),
                 grant("T0", 1, "W")]
        assert checkers(check_reference_model(trace)) == [
            "reference.upgrade"
        ]

    def test_reentrant_grants_are_free(self):
        trace = [grant("T0", 1, "W"), grant("T0", 1, "R"),
                 grant("T0", 1, "W")]
        assert check_reference_model(trace) == []

    def test_sole_holder_upgrade_is_legal(self):
        trace = [grant("T0", 1, "R"), grant("T0", 1, "W")]
        assert check_reference_model(trace) == []

    def test_retained_lock_refused_to_non_descendant(self):
        # Rule 1a: after T1/r0 pre-fetched (hold demoted to retained),
        # a foreign family admitted under that retention is forbidden.
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T5", 1, "W")]
        assert checkers(check_reference_model(trace)) == [
            "reference.retention"
        ]

    def test_read_retention_still_shares_with_foreign_readers(self):
        # Moss rule 1a is mode-dependent: a read retention excludes
        # foreign writers, not foreign readers.  (This also absorbs the
        # benign replay race where a read *hold* becomes a read
        # retention between a legal R-R grant decision and the grant's
        # delivery-time trace instant.)
        retained_r = [prefetch("T1/r0", 1, "R", lineage=[0])]
        assert check_reference_model(retained_r + [grant("T5", 1, "R")]) \
            == []
        assert checkers(check_reference_model(
            retained_r + [grant("T5", 1, "W")]
        )) == ["reference.retention"]

    def test_write_retention_excludes_foreign_readers(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T5", 1, "R")]
        assert checkers(check_reference_model(trace)) == [
            "reference.retention"
        ]

    def test_retained_lock_open_to_descendants(self):
        trace = [prefetch("T1/r0", 1, "W", lineage=[0]),
                 grant("T9/r0", 1, "W", lineage=[1, 0])]
        assert check_reference_model(trace) == []

    def test_recursion_preclusion(self):
        # §3.4: an ancestor *holds* — the child grant self-deadlocks.
        trace = [grant("T0", 1, "R"),
                 grant("T1/r0", 1, "R", lineage=[0])]
        assert checkers(check_reference_model(trace)) == [
            "reference.recursion"
        ]
        assert check_reference_model(
            trace, allow_recursive_reads=True
        ) == []

    def test_write_recursion_never_allowed(self):
        trace = [grant("T0", 1, "W"),
                 grant("T1/r0", 1, "W", lineage=[0])]
        assert checkers(check_reference_model(
            trace, allow_recursive_reads=True
        )) == ["reference.recursion"]


class TestInheritanceAndRelease:
    def test_sub_commit_without_inherit_is_flagged(self):
        trace = [grant("T1/r0", 1, "W", lineage=[0]),
                 txn_end("T1/r0", "commit")]
        violations = check_reference_model(trace)
        assert checkers(violations) == ["reference.inherit"]
        assert "retention skipped" in violations[0].message

    def test_inherit_of_nothing_is_flagged(self):
        trace = [inherit("T1/r0", "T0", [1])]
        assert checkers(check_reference_model(trace)) == [
            "reference.inherit"
        ]

    def test_root_end_with_leaked_locks_is_flagged(self):
        trace = [grant("T0", 1, "W"), txn_end("T0", "commit")]
        violations = check_reference_model(trace)
        assert checkers(violations) == ["reference.release"]
        assert "O1" in violations[0].message

    def test_inheritance_moves_hold_and_retention_up(self):
        model = ReferenceModel()
        model.run([
            grant("T2/r0", 1, "R", lineage=[1, 0]),
            prefetch("T2/r0", 2, "W", lineage=[1, 0]),
            inherit("T2/r0", "T1/r0", [1, 2]),
        ])
        assert model.holders(1) == {} and model.holders(2) == {}
        assert model.retainers(1) == {TxnRef(1, 0): "R"}
        assert model.retainers(2) == {TxnRef(1, 0): "W"}


class TestAgainstRealTraces:
    def test_live_cluster_trace_is_clean(self):
        cluster = make_cluster(protocol="lotec", seed=3, trace=True)
        counters = [cluster.create(Counter) for _ in range(3)]
        boss = cluster.create(Orchestrator)
        for node in cluster.nodes:
            cluster.submit(boss, "fanout", counters, 1, node=node)
        cluster.run()
        assert check_reference_model(cluster.trace_events) == []
