"""Unit tests for the deadlock detector, directory partitioning, and
holder-list cache tracker."""

import pytest

from repro.gdo.cache import EntryCacheTracker
from repro.gdo.deadlock import DeadlockDetector
from repro.gdo.directory import Directory
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId

N0, N1, N2 = NodeId(0), NodeId(1), NodeId(2)
O0, O1, O2 = ObjectId(0), ObjectId(1), ObjectId(2)


def _edges(waiting, blocking):
    """Legacy-shaped edge set: every waiter blocked by every blocker."""
    return {waiter: frozenset(blocking) for waiter in waiting}


class TestDeadlockDetector:
    def test_no_edges_no_cycle(self):
        detector = DeadlockDetector()
        assert detector.find_cycle(1) is None

    def test_two_family_cycle(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({1})))
        cycle = detector.find_cycle(1)
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_three_family_cycle(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({3})))
        detector.update_entry(O2, _edges(frozenset({3}), frozenset({1})))
        cycle = detector.find_cycle(2)
        assert set(cycle) == {1, 2, 3}

    def test_chain_is_not_cycle(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({3})))
        assert detector.find_cycle(1) is None

    def test_self_edges_ignored(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({1, 2})))
        assert detector.find_cycle(1) is None

    def test_entry_update_replaces_edges(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({1})))
        # Family 2 got the lock on O1: edge disappears, cycle broken.
        detector.update_entry(O1, _edges(frozenset(), frozenset({2})))
        assert detector.find_cycle(1) is None

    def test_clear_entry(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.clear_entry(O0)
        assert detector.edges() == {}

    def test_victim_is_youngest(self):
        detector = DeadlockDetector()
        assert detector.pick_victim([5, 9, 2]) == 9

    def test_waiting_families_view(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1, 3}), frozenset({2})))
        assert detector.waiting_families() == frozenset({1, 3})

    def test_multi_waiter_multi_blocker_edges(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1, 2}), frozenset({3, 4})))
        edges = detector.edges()
        assert edges[1] == {3, 4}
        assert edges[2] == {3, 4}

    def test_pure_self_wait_is_not_a_deadlock(self):
        # A family queued behind itself (lock upgrade paths) must not
        # read as a one-node cycle.
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({1})))
        assert detector.find_cycle(1) is None
        assert detector.edges().get(1, set()) == set()

    def test_overlapping_cycles_share_a_family(self):
        # 1 -> 2 -> 1 and 2 -> 3 -> 2 share family 2; search from any
        # member must find *some* cycle, and breaking one must leave
        # the other detectable.
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({1, 3})))
        detector.update_entry(O2, _edges(frozenset({3}), frozenset({2})))
        for start in (1, 2, 3):
            assert detector.find_cycle(start) is not None
        # Abort family 3: its cycle dissolves, the 1<->2 cycle stays.
        detector.drop_family(3)
        assert set(detector.find_cycle(1)) == {1, 2}
        assert detector.find_cycle(3) is None

    def test_per_waiter_edges_are_independent(self):
        # Conflict-keyed edges: two waiters on the same entry may be
        # blocked by *different* families (a semantic waiter commutes
        # with some holders).  The detector must not union them.
        detector = DeadlockDetector()
        detector.update_entry(O0, {1: frozenset({3}), 2: frozenset({4})})
        edges = detector.edges()
        assert edges[1] == {3}
        assert edges[2] == {4}

    def test_waiter_with_no_blockers_contributes_nothing(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, {1: frozenset(), 2: frozenset({3})})
        assert detector.edges() == {2: {3}}
        assert detector.waiting_families() == frozenset({2})

    def test_pick_victim_is_stable_under_rotation(self):
        # The victim is a function of the cycle's membership, not of
        # the node the DFS happened to enter it from.
        detector = DeadlockDetector()
        cycle = [4, 7, 2]
        rotations = [cycle[i:] + cycle[:i] for i in range(len(cycle))]
        assert {detector.pick_victim(rot) for rot in rotations} == {7}

    def test_drop_family_clears_crash_aborted_edges(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({2}), frozenset({1})))
        # Family 2 dies in a node crash: both edges involving it go,
        # and family 1 is no longer part of any cycle.
        detector.drop_family(2)
        assert detector.find_cycle(1) is None
        assert 2 not in detector.edges()
        assert 2 not in detector.waiting_families()

    def test_drop_family_keeps_unrelated_edges(self):
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1, 5}), frozenset({2, 6})))
        detector.drop_family(5)
        edges = detector.edges()
        assert edges[1] == {2, 6}
        assert 5 not in edges

    def test_clear_entry_after_crash_release(self):
        # crash_release frees a dead family's entries; clearing the
        # entry must remove its contributed edges even if drop_family
        # was never called for the survivors.
        detector = DeadlockDetector()
        detector.update_entry(O0, _edges(frozenset({1}), frozenset({2})))
        detector.update_entry(O1, _edges(frozenset({3}), frozenset({4})))
        detector.clear_entry(O0)
        assert detector.find_cycle(1) is None
        assert detector.edges() == {3: {4}}


class TestDirectory:
    def test_requires_nodes(self):
        with pytest.raises(Exception):
            Directory([])

    def test_round_robin_partitioning(self):
        directory = Directory([N0, N1, N2])
        assert directory.home_node(O0) == N0
        assert directory.home_node(O1) == N1
        assert directory.home_node(ObjectId(5)) == N2

    def test_register_and_lookup(self):
        directory = Directory([N0, N1])
        entry = directory.register(O0, page_count=4, creator_node=N1)
        assert directory.entry(O0) is entry
        assert entry.home_node == N0
        assert entry.page_count == 4
        assert O0 in directory
        assert len(directory) == 1

    def test_double_register_rejected(self):
        directory = Directory([N0])
        directory.register(O0, page_count=1, creator_node=N0)
        with pytest.raises(ProtocolError):
            directory.register(O0, page_count=1, creator_node=N0)

    def test_missing_entry_rejected(self):
        with pytest.raises(ProtocolError):
            Directory([N0]).entry(O0)


class TestEntryCacheTracker:
    def test_miss_then_hit(self):
        tracker = EntryCacheTracker()
        assert not tracker.is_local(O0, N0)
        tracker.on_granted(O0, N0)
        assert tracker.is_local(O0, N0)
        assert tracker.stats.hits == 1
        assert tracker.stats.misses == 1

    def test_other_site_misses(self):
        tracker = EntryCacheTracker()
        tracker.on_granted(O0, N0)
        assert not tracker.is_local(O0, N1)

    def test_regrant_moves_cache_site(self):
        tracker = EntryCacheTracker()
        tracker.on_granted(O0, N0)
        tracker.on_granted(O0, N1)
        assert tracker.cache_site(O0) == N1
        assert tracker.stats.invalidations == 1

    def test_freed_clears_cache(self):
        tracker = EntryCacheTracker()
        tracker.on_granted(O0, N0)
        tracker.on_freed(O0)
        assert tracker.cache_site(O0) is None
        assert not tracker.is_local(O0, N0)

    def test_disabled_tracker_never_hits(self):
        tracker = EntryCacheTracker(enabled=False)
        tracker.on_granted(O0, N0)
        assert not tracker.is_local(O0, N0)
        assert tracker.stats.hit_rate == 0.0

    def test_hit_rate(self):
        tracker = EntryCacheTracker()
        tracker.on_granted(O0, N0)
        tracker.is_local(O0, N0)
        tracker.is_local(O0, N1)
        assert tracker.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_safe(self):
        assert EntryCacheTracker().stats.hit_rate == 0.0
