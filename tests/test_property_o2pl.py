"""Property-based state machine over the O2PL directory entry.

Hypothesis drives random sequences of family growth, acquisition,
pre-commit, abort, and root release against one DirectoryEntry and
checks the §4.1 structural invariants after every step:

* multiple readers / single writer (a write holder is the sole holder),
* ReadCount equals the number of read holders,
* a grant is only ever handed out when rule 1 allows it,
* waiters are never simultaneously holders,
* released families leave no residue.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.gdo.entry import DirectoryEntry, GrantDecision, LockMode, Waiter
from repro.util.ids import NodeId, ObjectId, TxnId


class _StubTxn:
    def __init__(self, serial, root, parent, node):
        self.id = TxnId(serial=serial, root=root)
        self.parent = parent
        self.node = node
        self.finished = False

    def is_ancestor_of(self, other):
        probe = other.parent
        while probe is not None:
            if probe is self:
                return True
            probe = probe.parent
        return False

    def __repr__(self):
        return f"Stub{self.id!r}"


class _FakeWake:
    def __init__(self):
        self.fired = False

    def succeed(self, value=None):
        self.fired = True

    def fail(self, exc):
        self.fired = True

    @property
    def triggered(self):
        return self.fired


class O2PLMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.entry = DirectoryEntry(
            ObjectId(0), home_node=NodeId(0), page_count=2,
            creator_node=NodeId(0),
        )
        self.serial = 0
        self.txns = []

    def _next_serial(self):
        self.serial += 1
        return self.serial

    def _live(self):
        return [t for t in self.txns if not t.finished]

    # -- rules -----------------------------------------------------------

    @rule(node=st.integers(0, 2))
    def new_root(self, node):
        serial = self._next_serial()
        self.txns.append(_StubTxn(serial, serial, None, NodeId(node)))

    @precondition(lambda self: self._live())
    @rule(data=st.data())
    def new_child(self, data):
        parent = data.draw(st.sampled_from(self._live()))
        serial = self._next_serial()
        self.txns.append(
            _StubTxn(serial, parent.id.root, parent, parent.node)
        )

    @precondition(lambda self: self._live())
    @rule(data=st.data(), mode=st.sampled_from([LockMode.READ, LockMode.WRITE]))
    def try_acquire(self, data, mode):
        txn = data.draw(st.sampled_from(self._live()))
        if self.entry.remove_waiter(txn.id):
            # keep the model simple: a txn has one outstanding request
            pass
        decision = self.entry.decide(txn, mode)
        if decision is GrantDecision.GRANTED:
            self.entry.grant(txn, mode)
        elif decision is GrantDecision.WAIT_LOCAL:
            self.entry.enqueue_local(Waiter(txn, mode, _FakeWake()))
        elif decision is GrantDecision.WAIT_GLOBAL:
            self.entry.enqueue_global(Waiter(txn, mode, _FakeWake()))
        # RECURSIVE: request refused, nothing recorded.

    @precondition(lambda self: any(
        t for t in self._live()
        if t.parent is not None and not any(
            c for c in self._live() if c.parent is t
        )
    ))
    @rule(data=st.data())
    def precommit_leaf(self, data):
        candidates = [
            t for t in self._live()
            if t.parent is not None and not any(
                c for c in self._live() if c.parent is t
            )
        ]
        txn = data.draw(st.sampled_from(candidates))
        self.entry.remove_waiter(txn.id)
        held = txn.id in self.entry.holders
        retained = txn.id in self.entry.retainers
        if held or retained:
            self.entry.release_to_parent(txn, txn.parent)
        txn.finished = True
        for waiter in self.entry.pump():
            pass

    @precondition(lambda self: self._live())
    @rule(data=st.data())
    def abort_txn(self, data):
        txn = data.draw(st.sampled_from(self._live()))
        # Abort the whole subtree below txn (children first).
        subtree = [t for t in self._live()
                   if t is txn or txn.is_ancestor_of(t)]
        for victim in sorted(subtree, key=lambda t: -t.id.serial):
            self.entry.remove_waiter(victim.id)
            self.entry.release_on_abort(victim)
            victim.finished = True
        self.entry.pump()

    @precondition(lambda self: any(t.parent is None for t in self._live()))
    @rule(data=st.data())
    def commit_root(self, data):
        roots = [t for t in self._live() if t.parent is None]
        root = data.draw(st.sampled_from(roots))
        family = [t for t in self._live() if t.id.root == root.id.serial]
        # Only commit when the whole family is just the root (children
        # must pre-commit or abort first); otherwise force-finish them.
        for txn in sorted(family, key=lambda t: -t.id.serial):
            if txn is not root:
                self.entry.remove_waiter(txn.id)
                if txn.id in self.entry.holders or txn.id in self.entry.retainers:
                    self.entry.release_to_parent(txn, txn.parent)
                txn.finished = True
        self.entry.remove_waiter(root.id)
        self.entry.release_family(root.id.serial)
        root.finished = True
        self.entry.pump()

    # -- invariants --------------------------------------------------------

    @invariant()
    def single_writer(self):
        writers = [
            txn_id for txn_id, mode in self.entry.holders.items()
            if mode is LockMode.WRITE
        ]
        if writers:
            assert len(self.entry.holders) == 1, (
                f"writer {writers} shares with {list(self.entry.holders)}"
            )

    @invariant()
    def read_count_consistent(self):
        expected = sum(
            1 for mode in self.entry.holders.values()
            if mode is LockMode.READ
        )
        assert self.entry.read_count == expected

    @invariant()
    def waiters_not_already_satisfied(self):
        # A transaction may wait for an upgrade (holding R, wanting W),
        # but never for a mode its current hold already covers.
        all_waiters = [w for q in self.entry.waiting_families
                       for w in q.waiters]
        all_waiters.extend(self.entry.local_waiters)
        for waiter in all_waiters:
            held = self.entry.holders.get(waiter.txn_id)
            if held is None:
                continue
            assert held is LockMode.READ and waiter.mode is LockMode.WRITE, (
                f"{waiter.txn_id} waits for {waiter.mode} while holding {held}"
            )

    @invariant()
    def finished_txns_left_no_residue(self):
        finished = {t.id for t in self.txns if t.finished}
        assert not (finished & set(self.entry.holders))
        assert not (finished & set(self.entry.retainers))

    @invariant()
    def retainers_imply_rule1_blocks_strangers(self):
        # If any retainer exists, a brand-new family's request must not
        # be grantable (its retainers cannot be ancestors of a stranger).
        if self.entry.retainers:
            probe = _StubTxn(10**6, 10**6, None, NodeId(0))
            decision = self.entry.decide(probe, LockMode.WRITE)
            assert decision is not GrantDecision.GRANTED


O2PLMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestO2PL = O2PLMachine.TestCase
