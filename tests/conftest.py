"""Shared fixtures and helper shared-classes for the test suite."""

from __future__ import annotations

import pytest

from repro import Array, Attr, method, shared_class
from repro.runtime import Cluster, ClusterConfig


@shared_class
class Counter:
    """Minimal single-page shared class used across tests."""

    value = Attr(size=8, default=0)
    touches = Attr(size=8, default=0)

    @method
    def add(self, ctx, amount):
        self.value += amount
        self.touches += 1
        return self.value

    @method
    def get(self, ctx):
        return self.value

    @method
    def fail_after_write(self, ctx, amount):
        self.value += amount
        ctx.abort("test-abort")


@shared_class
class Ledger:
    """Multi-attribute, multi-page class: methods touch page subsets."""

    alpha = Attr(size=3000, default=0)
    beta = Attr(size=3000, default=0)
    gamma = Attr(size=3000, default=0)
    log = Array(size=500, count=16, default=0)

    @method
    def bump_alpha(self, ctx, amount):
        self.alpha += amount

    @method
    def bump_beta(self, ctx, amount):
        self.beta += amount

    @method
    def read_gamma(self, ctx):
        return self.gamma

    @method
    def log_entry(self, ctx, index, value):
        self.log[index] = value

    @method
    def sum_all(self, ctx):
        total = self.alpha + self.beta + self.gamma
        for entry in self.log:
            total += entry
        return total


@shared_class
class Orchestrator:
    """Drives nested invocations over other objects."""

    runs = Attr(size=8, default=0)

    @method
    def fanout(self, ctx, targets, amount):
        total = 0
        for target in targets:
            total += yield ctx.invoke(target, "add", amount)
            total += yield ctx.invoke(target, "get")
        self.runs += 1
        return total

    @method
    def safe_transfer(self, ctx, source, sink, amount):
        from repro import TransactionAborted

        try:
            yield ctx.invoke(source, "fail_after_write", amount)
        except TransactionAborted:
            # Child rolled back; compensate by a plain add instead.
            yield ctx.invoke(sink, "add", amount)
        self.runs += 1
        return amount


def make_cluster(protocol: str = "lotec", nodes: int = 4, seed: int = 0,
                 **overrides) -> Cluster:
    overrides.setdefault("num_nodes", nodes)
    overrides.setdefault("protocol", protocol)
    overrides.setdefault("seed", seed)
    return Cluster(ClusterConfig(**overrides))


@pytest.fixture
def cluster() -> Cluster:
    return make_cluster()


@pytest.fixture(params=["cotec", "otec", "lotec", "rc"])
def any_protocol_cluster(request) -> Cluster:
    return make_cluster(protocol=request.param)
