"""Integration tests for the lock manager's local/global split and
message accounting (Algorithms 4.1-4.4 over the simulated network)."""

import pytest

from repro.net.message import MessageCategory

from conftest import Counter, Ledger, Orchestrator, make_cluster


class TestLocalGlobalSplit:
    def test_family_reacquisition_is_local(self, cluster):
        counters = [cluster.create(Counter) for _ in range(2)]
        boss = cluster.create(Orchestrator)
        cluster.call(boss, "fanout", counters, 1)
        # fanout invokes add+get per counter: the second invocation on
        # each counter finds the lock retained by the family -> local.
        assert cluster.lock_stats.local_acquisitions >= 2
        # boss + first touch of each counter are global.
        assert cluster.lock_stats.global_acquisitions >= 3

    def test_local_ops_send_no_messages(self):
        cluster = make_cluster(nodes=1, protocol="lotec")
        counter = cluster.create(Counter)
        boss = cluster.create(Orchestrator)
        cluster.call(boss, "fanout", [counter], 1)
        # Single node: every message is local, so nothing is charged.
        assert cluster.network_stats.total_messages == 0

    def test_cache_disabled_forces_global(self):
        enabled = make_cluster(gdo_cache_enabled=True, seed=2)
        disabled = make_cluster(gdo_cache_enabled=False, seed=2)
        for c in (enabled, disabled):
            counters = [c.create(Counter) for _ in range(2)]
            boss = c.create(Orchestrator)
            c.call(boss, "fanout", counters, 1)
        assert disabled.lock_stats.local_acquisitions == 0
        assert enabled.lock_stats.local_acquisitions > 0
        assert disabled.lock_stats.global_acquisitions > \
            enabled.lock_stats.global_acquisitions

    def test_lock_messages_charged_per_global_acquisition(self, cluster):
        counter = cluster.create(Counter, node=cluster.nodes[0])
        # Home node of O0 is node 0; run a root at a different node so
        # request+grant cross the wire.
        cluster.call(counter, "add", 1, node=cluster.nodes[1])
        stats = cluster.network_stats
        assert stats.category_messages(MessageCategory.LOCK_REQUEST) == 1
        assert stats.category_messages(MessageCategory.LOCK_GRANT) == 1
        assert stats.category_messages(MessageCategory.LOCK_RELEASE) == 1

    def test_home_node_colocation_is_free(self, cluster):
        counter = cluster.create(Counter, node=cluster.nodes[0])
        # O0's GDO home is node 0: a root at node 0 sends local messages
        # only (charged nothing), even though the op is "global".
        cluster.call(counter, "add", 1, node=cluster.nodes[0])
        assert cluster.network_stats.total_messages == 0
        assert cluster.lock_stats.global_acquisitions == 1


class TestWaitingAndHandoffs:
    def test_writer_queues_behind_writer(self, cluster):
        counter = cluster.create(Counter)
        for node in cluster.nodes:
            cluster.submit(counter, "add", 1, node=node)
        cluster.run()
        assert cluster.read_attr(counter, "value") == 4
        assert cluster.lock_stats.waits > 0

    def test_grant_message_carries_holder_list_and_page_map(self, cluster):
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        t1 = cluster.submit(ledger, "bump_alpha", 1, node=cluster.nodes[1])
        t2 = cluster.submit(ledger, "bump_alpha", 1, node=cluster.nodes[2])
        cluster.run()
        t1.result(), t2.result()
        sizes = cluster.config.sizes
        stats = cluster.network_stats
        grant_bytes = stats.category_bytes(MessageCategory.LOCK_GRANT)
        grants = stats.category_messages(MessageCategory.LOCK_GRANT)
        # Every grant includes at least the 4-page page map.
        assert grant_bytes >= grants * sizes.lock_grant(
            holder_entries=1, page_map_entries=4
        )

    def test_release_piggybacks_dirty_info(self, cluster):
        ledger = cluster.create(Ledger, node=cluster.nodes[0])
        cluster.call(ledger, "bump_alpha", 1, node=cluster.nodes[1])
        sizes = cluster.config.sizes
        stats = cluster.network_stats
        release_bytes = stats.category_bytes(MessageCategory.LOCK_RELEASE)
        # bump_alpha dirties one page: release = header + 1 entry.
        assert release_bytes == sizes.lock_release(1)

    def test_concurrent_readers_share_across_sites(self, cluster):
        counter = cluster.create(Counter)
        cluster.call(counter, "add", 1)
        tickets = [
            cluster.submit(counter, "get", node=node)
            for node in cluster.nodes
        ]
        cluster.run()
        assert all(t.result() == 1 for t in tickets)
        assert cluster.lock_stats.deadlocks == 0

    def test_fifo_between_families(self, cluster):
        """Queued writer families are admitted in arrival order."""
        counter = cluster.create(Counter)
        order = []

        tickets = [
            cluster.submit(counter, "add", index, node=cluster.nodes[index % 4],
                           label=f"w{index}")
            for index in range(4)
        ]
        cluster.run()
        for ticket in tickets:
            ticket.result()
        # Commit log order reflects grant order.
        methods = [record.label for record in cluster.commit_log]
        assert methods == sorted(methods, key=lambda lbl: int(lbl[1:]))
