"""Unit tests for the nested transaction tree (§3 semantics)."""

import pytest

from repro.txn.transaction import Transaction, TxnState, TxnStats
from repro.util.errors import ProtocolError
from repro.util.ids import IdAllocator, NodeId, ObjectId

N0, N1 = NodeId(0), NodeId(1)


@pytest.fixture
def alloc():
    return IdAllocator()


def make_family(alloc, node=N0):
    root = Transaction(alloc.next_root_txn(), node)
    child = Transaction(alloc.next_sub_txn(root.id), node, parent=root)
    grandchild = Transaction(alloc.next_sub_txn(child.id), node, parent=child)
    return root, child, grandchild


class TestTree:
    def test_root_identity(self, alloc):
        root, child, grandchild = make_family(alloc)
        assert root.is_root and not child.is_root
        assert child.root is root
        assert grandchild.root is root
        assert grandchild.depth == 2

    def test_family_membership_via_ids(self, alloc):
        root, child, _ = make_family(alloc)
        other = Transaction(alloc.next_root_txn(), N0)
        assert child.id.same_family(root.id)
        assert not other.id.same_family(root.id)

    def test_ancestry(self, alloc):
        root, child, grandchild = make_family(alloc)
        assert root.is_ancestor_of(grandchild)
        assert child.is_ancestor_of(grandchild)
        assert not grandchild.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)  # proper ancestry

    def test_ancestors_chain(self, alloc):
        root, child, grandchild = make_family(alloc)
        assert grandchild.ancestors() == [child, root]

    def test_children_registered(self, alloc):
        root, child, grandchild = make_family(alloc)
        assert root.children == [child]
        assert child.children == [grandchild]

    def test_family_single_site_enforced(self, alloc):
        root = Transaction(alloc.next_root_txn(), N0)
        with pytest.raises(ProtocolError, match="single site"):
            Transaction(alloc.next_sub_txn(root.id), N1, parent=root)


class TestPrecommit:
    def test_precommit_inherits_everything(self, alloc):
        root, child, _ = make_family(alloc)
        oid = ObjectId(3)
        child.record_dirty(oid, {0, 2})
        child.lock_objects.add(oid)
        child.undo.record_write(oid, ("x", 0), True, 1)
        # grandchild must finish first
        child.children[0].state = TxnState.PRECOMMITTED
        child.precommit()
        assert child.state is TxnState.PRECOMMITTED
        assert root.dirty == {oid: {0, 2}}
        assert oid in root.lock_objects
        assert len(root.undo) == 1
        assert child.dirty == {}

    def test_precommit_requires_finished_children(self, alloc):
        _, child, _ = make_family(alloc)
        with pytest.raises(ProtocolError, match="child"):
            child.precommit()

    def test_precommit_of_root_rejected(self, alloc):
        root, _, _ = make_family(alloc)
        with pytest.raises(ProtocolError, match="roots commit"):
            root.precommit()

    def test_double_precommit_rejected(self, alloc):
        root = Transaction(alloc.next_root_txn(), N0)
        child = Transaction(alloc.next_sub_txn(root.id), N0, parent=root)
        child.precommit()
        with pytest.raises(ProtocolError):
            child.precommit()

    def test_aborted_child_allows_parent_precommit(self, alloc):
        root, child, grandchild = make_family(alloc)
        grandchild.mark_aborted()
        child.precommit()
        assert child.state is TxnState.PRECOMMITTED


class TestCommitAbort:
    def test_root_commit(self, alloc):
        root = Transaction(alloc.next_root_txn(), N0)
        root.mark_committed()
        assert root.state is TxnState.COMMITTED

    def test_sub_cannot_commit(self, alloc):
        _, child, _ = make_family(alloc)
        with pytest.raises(ProtocolError):
            child.mark_committed()

    def test_double_commit_rejected(self, alloc):
        root = Transaction(alloc.next_root_txn(), N0)
        root.mark_committed()
        with pytest.raises(ProtocolError):
            root.mark_committed()

    def test_family_dirty_view_merges_live_chain(self, alloc):
        root, child, grandchild = make_family(alloc)
        oid = ObjectId(1)
        root.record_dirty(oid, {0})
        grandchild.record_dirty(oid, {1})
        view = grandchild.family_dirty_view()
        assert view == {oid: {0, 1}}


class TestStats:
    def test_snapshot_fields(self):
        stats = TxnStats()
        stats.commits = 3
        stats.root_latencies.extend([1.0, 3.0])
        snap = stats.snapshot()
        assert snap["commits"] == 3
        assert snap["mean_latency"] == pytest.approx(2.0)

    def test_mean_latency_zero_safe(self):
        assert TxnStats().mean_latency == 0.0

    def test_total_roots(self):
        stats = TxnStats()
        stats.commits, stats.aborts_user = 2, 1
        assert stats.total_roots == 3

    def test_latency_percentiles(self):
        stats = TxnStats()
        stats.root_latencies.extend([4.0, 1.0, 3.0, 2.0])
        assert stats.latency_percentile(0.0) == 1.0
        assert stats.latency_percentile(0.5) == 3.0
        assert stats.latency_percentile(1.0) == 4.0
        with pytest.raises(ValueError):
            stats.latency_percentile(1.5)

    def test_percentile_empty_safe(self):
        assert TxnStats().latency_percentile(0.95) == 0.0

    def test_throughput(self):
        stats = TxnStats()
        stats.commits = 10
        assert stats.throughput(2.0) == 5.0
        assert stats.throughput(0.0) == 0.0
