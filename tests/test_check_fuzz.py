"""The schedule-exploration fuzzer end to end.

Covers the explorer (one task = one reproducible run), failure
minimization, the campaign driver with its artifacts, the ``repro
fuzz`` CLI, and the mutation smoke test: an injected protocol bug
(skipping lock retention at pre-commit) must be caught by the checkers
within a small seed budget — evidence the fuzzer can actually detect
the class of bug it exists for.
"""

import json

import pytest

from repro.check import (
    ALL_PROTOCOLS,
    FuzzTask,
    minimize,
    repro_command,
    run_campaign,
    run_task,
    trace_to_jsonl,
)
from repro.cli import main

QUICK = dict(scenario="medium-high", scale=0.125, nodes=4)
MUTATION = "skip-precommit-retention"
SEMANTIC_MUTATION = "commute-conflicting-writes"


class TestRunTask:
    def test_clean_run_reports_ok(self):
        report = run_task(FuzzTask(seed=1, policy="random", **QUICK))
        assert report.ok
        assert report.committed > 0
        assert report.serializable and report.conflict_serializable
        assert report.violations == [] and report.error is None

    def test_identical_tasks_trace_byte_identically(self):
        task = FuzzTask(seed=2, policy="random", **QUICK)
        first = run_task(task, keep_trace=True)
        second = run_task(task, keep_trace=True)
        assert trace_to_jsonl(first.trace) == trace_to_jsonl(second.trace)

    def test_policy_changes_the_schedule(self):
        fifo = run_task(FuzzTask(seed=2, policy="fifo", **QUICK),
                        keep_trace=True)
        random_walk = run_task(FuzzTask(seed=2, policy="random", **QUICK),
                               keep_trace=True)
        assert trace_to_jsonl(fifo.trace) != trace_to_jsonl(
            random_walk.trace
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_every_protocol_survives_one_adversarial_seed(self, protocol):
        report = run_task(FuzzTask(seed=0, protocol=protocol,
                                   policy="writer-first", **QUICK))
        assert report.ok, report.failure_summary()


class TestMutationSmoke:
    """The checkers must catch a deliberately broken protocol."""

    def test_skipped_retention_is_caught_within_budget(self):
        # Satellite acceptance: a handful of seeds suffices — the bug
        # is not a needle in a haystack for these checkers.
        for seed in range(5):
            report = run_task(FuzzTask(seed=seed, policy="random",
                                       mutate=(MUTATION,), **QUICK))
            if not report.ok:
                break
        else:
            pytest.fail("mutation escaped 5 fuzz seeds")
        tags = {violation.checker.split(".")[0]
                for violation in report.violations}
        # Both independent checker families see it, not just one.
        assert "reference" in tags
        assert "invariant" in tags

    def test_failure_summary_names_the_evidence(self):
        report = run_task(FuzzTask(seed=0, policy="random",
                                   mutate=(MUTATION,), **QUICK))
        assert not report.ok
        summary = "\n".join(report.failure_summary())
        assert "retention skipped" in summary
        # The failing trace is attached for artifact dumps.
        assert report.trace


class TestMinimizeAndRepro:
    def test_minimize_keeps_a_failing_task(self):
        task = FuzzTask(seed=0, policy="random", preset="lossy-net",
                        mutate=(MUTATION,), **QUICK)
        smaller = minimize(task)
        assert not run_task(smaller).ok
        assert smaller.scale <= task.scale
        # The injected bug fails without faults, so the preset and the
        # perturbed schedule both shrink away.
        assert smaller.preset is None
        assert smaller.policy == "fifo"

    def test_repro_command_round_trips_the_task(self):
        task = FuzzTask(seed=7, protocol="otec", preset="dup-delay",
                        policy="lifo", scenario="medium-moderate",
                        scale=0.5, nodes=3, mutate=(MUTATION,))
        command = repro_command(task)
        assert command.startswith("repro fuzz --seeds 1 ")
        for fragment in ("--seed-base 7", "--protocols otec",
                         "--presets dup-delay", "--policies lifo",
                         "--scenario medium-moderate", "--scale 0.5",
                         "--nodes 3", f"--mutate {MUTATION}"):
            assert fragment in command


class TestMigrationFuzz:
    """Adaptive home migration under the same oracles: the schedule
    perturbations and fault presets that vet the base protocol must
    also pass with entries moving between homes mid-run."""

    def test_migration_campaign_is_clean(self):
        result = run_campaign(seeds=2, protocols=("lotec",),
                              policies=("random",), migration=True,
                              **QUICK)
        assert result.ok, [
            line for failure in result.failures
            for line in failure.report.failure_summary()
        ]
        assert result.tasks_run == 2

    def test_migration_survives_crash_recover(self):
        # The satellite's crash x migration combo: node crashes while
        # entries are re-homing must not break any oracle.
        report = run_task(FuzzTask(seed=0, policy="writer-first",
                                   preset="crash-recover",
                                   migration=True, **QUICK))
        assert report.ok, report.failure_summary()
        assert report.committed > 0

    def test_migration_task_round_trips(self):
        task = FuzzTask(seed=3, policy="random", migration=True, **QUICK)
        assert "migration" in task.describe()
        assert "--migration" in repro_command(task)


class TestSemanticFuzz:
    """Commutativity-based lock modes under the same oracles.

    The synthetic workload's declared access sets put every generated
    method in the 'declared' trust tier, so semantic grants flow
    through real fuzz schedules — and the ``commute-conflicting-writes``
    mutation, which hands the lock manager a table wrongly commuting
    *every* same-class pair, must be caught by the checkers (which
    judge against the honest ``lock.commtable`` artifacts)."""

    @pytest.mark.parametrize("protocol", ["lotec", "cotec"])
    def test_semantic_tasks_are_clean(self, protocol):
        report = run_task(FuzzTask(seed=1, protocol=protocol,
                                   policy="random", semantic=True,
                                   **QUICK))
        assert report.ok, report.failure_summary()
        assert report.committed > 0

    def test_semantic_survives_crash_recover(self):
        report = run_task(FuzzTask(seed=0, policy="writer-first",
                                   preset="crash-recover",
                                   semantic=True, **QUICK))
        assert report.ok, report.failure_summary()

    def test_commute_mutation_caught_on_nine_of_ten_seeds(self):
        # Satellite acceptance: the wrongly-commuted grants must fail
        # the fuzzer on at least 9 of 10 seeds.
        reports = [
            run_task(FuzzTask(seed=seed, policy="random", semantic=True,
                              mutate=(SEMANTIC_MUTATION,), **QUICK))
            for seed in range(10)
        ]
        caught = [report for report in reports if not report.ok]
        assert len(caught) >= 9, [r.task.seed for r in reports if r.ok]
        # Both independent checker families see it, not just the
        # replay/precedence oracles.
        tags = {violation.checker.split(".")[0]
                for violation in caught[0].violations}
        assert "reference" in tags
        assert "invariant" in tags

    def test_semantic_task_round_trips(self):
        task = FuzzTask(seed=3, policy="random", semantic=True, **QUICK)
        assert "semantic" in task.describe()
        assert "--semantic" in repro_command(task)
        # Minimization shrinks the schedule, never the relaxation
        # under test.
        assert minimize(task).semantic


class TestCampaign:
    def test_clean_campaign(self):
        result = run_campaign(seeds=2, protocols=("lotec",),
                              policies=("random",), **QUICK)
        assert result.ok
        assert result.tasks_run == 2
        assert result.committed > 0

    def test_failing_campaign_writes_artifacts(self, tmp_path):
        result = run_campaign(
            seeds=1, protocols=("lotec",), policies=("random",),
            mutate=(MUTATION,), out_dir=str(tmp_path),
            minimize_failures=False, stop_on_failure=True, **QUICK,
        )
        assert not result.ok
        failure = result.failures[0]
        assert failure.command.startswith("repro fuzz --seeds 1")
        trace_path, report_path = failure.artifacts
        lines = (tmp_path / trace_path).read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        report_text = (tmp_path / report_path).read_text()
        assert "repro fuzz" in report_text

    def test_progress_callback_sees_every_task(self):
        seen = []
        run_campaign(seeds=1, protocols=("lotec", "cotec"),
                     policies=("writer-first",),
                     progress=seen.append, **QUICK)
        assert [r.task.protocol for r in seen] == ["lotec", "cotec"]


class TestFuzzCli:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["fuzz", "--seeds", "1", "--protocols", "lotec",
                     "--policies", "random", "--scale", "0.125"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all tasks clean" in out

    def test_mutated_run_exits_one_with_repro_line(self, capsys,
                                                   tmp_path):
        code = main(["fuzz", "--seeds", "1", "--protocols", "lotec",
                     "--policies", "random", "--scale", "0.125",
                     "--mutate", MUTATION, "--no-minimize", "--quiet",
                     "--trace-dir", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro: repro fuzz --seeds 1" in err
        assert list(tmp_path.glob("*.trace.jsonl"))

    def test_unknown_protocol_exits_two(self, capsys):
        assert main(["fuzz", "--protocols", "bogus"]) == 2
        assert "unknown protocol" in capsys.readouterr().err
