"""Adaptive GDO home migration: the policy unit (decay, dominance,
threshold, cooldown) and the end-to-end claim — on a skewed open-loop
load, migration moves hot entries, cuts remote directory traffic, and
leaves every correctness oracle untouched."""

import pytest

from repro import check_serializability
from repro.gdo import HomeMigrationManager, MigrationConfig
from repro.load import build_load, run_load
from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId, ObjectId

OBJ = ObjectId(0)
HOME = NodeId(0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def manager(clock, **knobs):
    defaults = dict(threshold=2.0, dominance=0.55, half_life_s=0.1,
                    cooldown_s=0.001)
    defaults.update(knobs)
    return HomeMigrationManager(MigrationConfig(**defaults), clock=clock)


class TestConfigValidation:
    @pytest.mark.parametrize("knobs", [
        dict(threshold=0.0),
        dict(dominance=0.5),     # exactly half: two nodes could tie
        dict(dominance=1.01),
        dict(half_life_s=0.0),
        dict(cooldown_s=-1.0),
    ])
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            MigrationConfig(**dict(
                dict(threshold=2.0, dominance=0.55, half_life_s=0.1,
                     cooldown_s=0.001), **knobs,
            ))


class TestPolicy:
    def test_dominant_accessor_wins(self):
        clock = FakeClock()
        mgr = manager(clock)
        for _ in range(5):
            mgr.record_access(OBJ, NodeId(2))
        mgr.record_access(OBJ, NodeId(1))
        assert mgr.pick_target(OBJ, HOME) == NodeId(2)

    def test_no_move_when_home_already_dominates(self):
        clock = FakeClock()
        mgr = manager(clock)
        for _ in range(5):
            mgr.record_access(OBJ, HOME)
        assert mgr.pick_target(OBJ, HOME) is None

    def test_threshold_gates_cold_entries(self):
        clock = FakeClock()
        mgr = manager(clock, threshold=3.0)
        mgr.record_access(OBJ, NodeId(2))
        mgr.record_access(OBJ, NodeId(2))
        assert mgr.pick_target(OBJ, HOME) is None  # count 2 < 3
        mgr.record_access(OBJ, NodeId(2))
        assert mgr.pick_target(OBJ, HOME) == NodeId(2)

    def test_dominance_gates_contested_entries(self):
        clock = FakeClock()
        mgr = manager(clock, dominance=0.75)
        for _ in range(3):
            mgr.record_access(OBJ, NodeId(1))
        for _ in range(2):
            mgr.record_access(OBJ, NodeId(2))
        # NodeId(1) holds 60% < 75%: contested, stay put.
        assert mgr.pick_target(OBJ, HOME) is None

    def test_decay_halves_per_half_life(self):
        clock = FakeClock()
        mgr = manager(clock, half_life_s=0.1)
        for _ in range(4):
            mgr.record_access(OBJ, NodeId(2))
        clock.now = 0.2  # two half-lives: 4 -> 1, below threshold 2
        assert mgr.pick_target(OBJ, HOME) is None
        tally = mgr._access[OBJ]
        assert tally.counts[NodeId(2)] == pytest.approx(1.0)

    def test_decay_evicts_vanished_nodes(self):
        clock = FakeClock()
        mgr = manager(clock, half_life_s=0.01)
        mgr.record_access(OBJ, NodeId(3))
        clock.now = 10.0  # 1000 half-lives: count underflows to zero
        assert mgr.pick_target(OBJ, HOME) is None
        assert NodeId(3) not in mgr._access[OBJ].counts

    def test_cooldown_brakes_back_to_back_moves(self):
        clock = FakeClock()
        # Long half-life so decay cannot mask the cooldown's effect.
        mgr = manager(clock, cooldown_s=0.5, half_life_s=100.0)
        for _ in range(5):
            mgr.record_access(OBJ, NodeId(2))
        assert mgr.pick_target(OBJ, HOME) == NodeId(2)
        mgr.note_migrated(OBJ)
        for _ in range(5):
            mgr.record_access(OBJ, NodeId(1))
        clock.now = 0.4
        assert mgr.pick_target(OBJ, NodeId(2)) is None  # cooling down
        clock.now = 0.6
        assert mgr.pick_target(OBJ, NodeId(2)) == NodeId(1)

    def test_note_migrated_resets_the_window(self):
        clock = FakeClock()
        mgr = manager(clock, cooldown_s=0.0)
        for _ in range(5):
            mgr.record_access(OBJ, NodeId(2))
        mgr.note_migrated(OBJ)
        # Fresh window: old counts must not argue for a second move.
        assert mgr.pick_target(OBJ, NodeId(2)) is None
        assert mgr.stats.migrations == 1

    def test_tie_breaks_by_node_id(self):
        clock = FakeClock()
        mgr = manager(clock, dominance=0.501, threshold=1.0)
        # Exact tie between nodes 5 and 3; neither passes dominance,
        # so first check the deterministic argmax directly.
        for _ in range(4):
            mgr.record_access(OBJ, NodeId(5))
            mgr.record_access(OBJ, NodeId(3))
        assert mgr.pick_target(OBJ, HOME) is None
        mgr.record_access(OBJ, NodeId(5))
        mgr.record_access(OBJ, NodeId(3))
        mgr.record_access(OBJ, NodeId(3))
        assert mgr.pick_target(OBJ, HOME) == NodeId(3)

    def test_unknown_object_stays_put(self):
        mgr = manager(FakeClock())
        assert mgr.pick_target(ObjectId(99), HOME) is None


def smoke_clusters(migration, seed=7, scale=0.5):
    load = build_load("zipf-smoke", seed=seed, scale=scale)
    cluster = Cluster(ClusterConfig(
        num_nodes=load.scenario.clients, seed=seed, protocol="lotec",
        trace=True, migration=migration,
    ))
    run = run_load(cluster, load)
    return cluster, run


class TestEndToEnd:
    def test_migration_cuts_remote_directory_messages(self):
        static, run_static = smoke_clusters(None)
        adaptive, run_adaptive = smoke_clusters(MigrationConfig())
        assert adaptive.migration_stats.migrations > 0
        assert adaptive.network_stats.directory_messages() < \
            static.network_stats.directory_messages()
        # Identical offered load, identical outcomes.
        assert run_adaptive.committed == run_static.committed
        assert run_adaptive.failed == run_static.failed

    def test_migrated_run_stays_serializable(self):
        cluster, _ = smoke_clusters(MigrationConfig())
        assert cluster.migration_stats.migrations > 0
        report = check_serializability(cluster)
        assert report.equivalent, (
            report.state_mismatches[:3], report.result_mismatches[:3],
        )

    def test_forwarded_requests_are_charged(self):
        # Forwarding only fires when a request races a home move; the
        # accounting invariant must hold whether or not one occurred:
        # every forward is one extra GDO hop, never a lost request.
        cluster, run = smoke_clusters(MigrationConfig())
        stats = cluster.migration_stats
        assert stats.forwarded_requests >= 0
        assert stats.considered >= stats.migrations
        assert run.committed + run.failed == len(run.tickets)

    def test_single_node_cluster_skips_migration(self):
        load = build_load("zipf-smoke", seed=3, scale=0.1)
        cluster = Cluster(ClusterConfig(
            num_nodes=1, seed=3, protocol="lotec",
            migration=MigrationConfig(),
        ))
        run_load(cluster, load)
        assert cluster.migration is None
        assert cluster.migration_stats is None
