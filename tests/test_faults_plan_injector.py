"""Unit tests for the fault-plan data model and the seeded injector."""

import pytest

from repro.faults import (
    FAULT_PRESETS,
    NO_FAULTS,
    NULL_INJECTOR,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    NullInjector,
)
from repro.net.message import Message, MessageCategory
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG

N0, N1 = NodeId(0), NodeId(1)


def msg(src=N0, dst=N1):
    return Message(src=src, dst=dst, category=MessageCategory.LOCK_REQUEST,
                   size_bytes=100)


class TestCrashEvent:
    def test_up_at(self):
        crash = CrashEvent(node_index=2, at_s=0.5, down_for_s=0.25)
        assert crash.up_at_s == 0.75

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(node_index=-1, at_s=0.1, down_for_s=0.1)
        with pytest.raises(ConfigurationError):
            CrashEvent(node_index=0, at_s=-0.1, down_for_s=0.1)
        with pytest.raises(ConfigurationError):
            CrashEvent(node_index=0, at_s=0.1, down_for_s=0.0)


class TestFaultPlan:
    def test_defaults_are_quiet(self):
        plan = FaultPlan()
        assert not plan.has_message_faults
        assert plan.max_crash_node_index == -1
        assert plan.lock_wait_timeout_s == 0.0

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_probability=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_jitter_s=-1.0)

    def test_recovery_parameter_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(retransmit_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(retransmit_limit=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(lock_wait_timeout_s=-0.001)

    def test_crashes_must_be_crash_events(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=((1, 0.1, 0.1),))

    def test_max_crash_node_index(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.1, down_for_s=0.1),
            CrashEvent(node_index=3, at_s=0.2, down_for_s=0.1),
        ))
        assert plan.max_crash_node_index == 3

    def test_presets_cover_the_fault_space(self):
        # The shipped presets collectively exercise loss >= 10%,
        # duplication, delay jitter, lock timeouts, and a crash.
        assert FAULT_PRESETS["lossy-net"].drop_probability >= 0.10
        assert FAULT_PRESETS["dup-delay"].duplicate_probability > 0
        assert FAULT_PRESETS["dup-delay"].delay_jitter_s > 0
        assert FAULT_PRESETS["lock-timeout"].lock_wait_timeout_s > 0
        assert FAULT_PRESETS["crash-recover"].crashes
        chaos = FAULT_PRESETS["chaos"]
        assert chaos.has_message_faults and chaos.crashes
        for name, plan in FAULT_PRESETS.items():
            assert plan.name == name


class TestNullInjector:
    def test_answers_no_fault_everywhere(self):
        injector = NullInjector()
        assert injector.message_faults(msg(), 0, 0.0) is NO_FAULTS
        assert injector.lock_wait_timeout_s() == 0.0
        assert injector.retransmit_timeout_s() == 0.0
        assert not injector.is_down(N0, 0.0)
        assert injector.down_until(N0, 0.0) == 0.0
        assert not injector.enabled

    def test_shared_stats_stay_zero(self):
        assert all(
            value == 0 for value in NULL_INJECTOR.stats.snapshot().values()
        )


class TestFaultInjector:
    def test_deterministic_given_seed(self):
        plan = FaultPlan(drop_probability=0.3, duplicate_probability=0.2,
                         delay_jitter_s=0.001)
        injector_a = FaultInjector(plan, SeededRNG(7))
        injector_b = FaultInjector(plan, SeededRNG(7))
        verdicts_a = [injector_a.message_faults(msg(), 0, 0.0)
                      for _ in range(50)]
        verdicts_b = [injector_b.message_faults(msg(), 0, 0.0)
                      for _ in range(50)]
        assert verdicts_a == verdicts_b

    def test_drop_suppressed_past_retransmit_limit(self):
        plan = FaultPlan(drop_probability=1.0, retransmit_limit=3)
        injector = FaultInjector(plan, SeededRNG(1))
        for attempt in range(3):
            assert injector.message_faults(msg(), attempt, 0.0).dropped
        # Fair loss: at the limit the channel turns lossless.
        assert not injector.message_faults(msg(), 3, 0.0).dropped
        assert injector.stats.messages_dropped == 3

    def test_jitter_bounded_by_plan(self):
        plan = FaultPlan(delay_jitter_s=0.004)
        injector = FaultInjector(plan, SeededRNG(3))
        for _ in range(100):
            verdict = injector.message_faults(msg(), 0, 0.0)
            assert 0.0 <= verdict.extra_delay_s <= 0.004
        assert injector.stats.delay_injected_s > 0

    def test_crash_windows(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.010, down_for_s=0.005),
        ))
        injector = FaultInjector(plan, SeededRNG(0))
        assert not injector.is_down(N1, 0.009)
        assert injector.is_down(N1, 0.010)
        assert injector.down_until(N1, 0.012) == pytest.approx(0.015)
        assert not injector.is_down(N1, 0.015)
        assert not injector.is_down(N0, 0.012)

    def test_down_node_drops_without_consuming_randomness(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=1.0),
        ))
        injector = FaultInjector(plan, SeededRNG(9))
        before = injector.rng.random()
        injector = FaultInjector(plan, SeededRNG(9))
        assert injector.message_faults(msg(dst=N1), 0, 0.5).dropped
        # The crash-window drop is schedule-driven, not probabilistic:
        # the RNG stream is untouched.
        assert injector.rng.random() == before

    def test_synchronous_path_ignores_crash_windows(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node_index=1, at_s=0.0, down_for_s=1.0),
        ))
        injector = FaultInjector(plan, SeededRNG(9))
        verdict = injector.message_faults(msg(dst=N1), 0, 0.5,
                                          synchronous=True)
        assert not verdict.dropped
