"""Tests for workload/run-trace persistence."""

import json

import pytest

from repro.runtime import Cluster, ClusterConfig
from repro.util.errors import ConfigurationError
from repro.workload import (
    WorkloadParams,
    diff_run_reports,
    generate_workload,
    load_run_report,
    load_workload,
    run_workload,
    save_run_report,
    save_workload,
    workload_fingerprint,
)

SMALL = WorkloadParams(num_objects=6, num_classes=2, num_roots=10,
                       pages_min=1, pages_max=3)


class TestWorkloadPersistence:
    def test_round_trip(self, tmp_path):
        workload = generate_workload(SMALL, seed=4)
        path = tmp_path / "load.json"
        save_workload(workload, str(path), seed=4)
        reloaded = load_workload(str(path))
        assert reloaded.plans == workload.plans
        assert reloaded.object_classes == workload.object_classes
        assert workload_fingerprint(reloaded) == \
            workload_fingerprint(workload)

    def test_fingerprint_distinguishes_workloads(self):
        a = generate_workload(SMALL, seed=4)
        b = generate_workload(SMALL, seed=5)
        assert workload_fingerprint(a) != workload_fingerprint(b)

    def test_fingerprint_stable(self):
        a = generate_workload(SMALL, seed=4)
        b = generate_workload(SMALL, seed=4)
        assert workload_fingerprint(a) == workload_fingerprint(b)

    def test_tampered_fingerprint_rejected(self, tmp_path):
        workload = generate_workload(SMALL, seed=4)
        path = tmp_path / "load.json"
        save_workload(workload, str(path), seed=4)
        document = json.loads(path.read_text())
        document["fingerprint"] = "0" * 32
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="fingerprint"):
            load_workload(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError, match="not a"):
            load_workload(str(path))


class TestRunReports:
    def run_cluster(self, protocol, workload, seed=4):
        cluster = Cluster(ClusterConfig(num_nodes=3, protocol=protocol,
                                        seed=seed))
        run_workload(cluster, workload)
        return cluster

    def test_report_round_trip(self, tmp_path):
        workload = generate_workload(SMALL, seed=4)
        cluster = self.run_cluster("lotec", workload)
        path = tmp_path / "run.json"
        save_run_report(cluster, str(path), workload=workload)
        report = load_run_report(str(path))
        assert report["summary"]["protocol"] == "lotec"
        assert len(report["commits"]) == len(cluster.commit_log)
        assert report["workload_fingerprint"] == \
            workload_fingerprint(workload)
        # Frozen args survive the JSON round trip (tuples and handles).
        original = cluster.commit_log[0].frozen_args
        assert report["commits"][0]["args"] == original

    def test_diff_same_workload_different_protocols(self, tmp_path):
        workload = generate_workload(SMALL, seed=4)
        reports = []
        for protocol in ("cotec", "lotec"):
            cluster = self.run_cluster(protocol, workload)
            path = tmp_path / f"{protocol}.json"
            save_run_report(cluster, str(path), workload=workload)
            reports.append(load_run_report(str(path)))
        diff = diff_run_reports(*reports)
        assert diff["same_commits"]
        assert diff["bytes"]["left"] >= diff["bytes"]["right"]

    def test_diff_detects_missing_commit(self, tmp_path):
        workload = generate_workload(SMALL, seed=4)
        cluster = self.run_cluster("lotec", workload)
        path = tmp_path / "run.json"
        save_run_report(cluster, str(path))
        full = load_run_report(str(path))
        truncated = {**full, "commits": full["commits"][:-1]}
        diff = diff_run_reports(full, truncated)
        assert not diff["same_commits"]
        assert diff["only_left"]

    def test_report_format_checked(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ConfigurationError):
            load_run_report(str(path))
