"""Unit tests for protocol page-selection policies and the transfer
engine (Algorithm 4.5)."""

import pytest

from repro.analysis.prediction import AccessPrediction
from repro.core import COTEC, LOTEC, OTEC, ReleaseConsistency, make_protocol
from repro.core.transfer import demand_fetch, gather_pages
from repro.gdo.entry import PageMapEntry
from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.memory.store import NodeStore
from repro.net.network import Network, NetworkConfig
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.objects.schema import ClassSchema
from repro.sim import Environment
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.ids import NodeId, ObjectId

N0, N1, N2 = NodeId(0), NodeId(1), NodeId(2)
OID = ObjectId(0)


def make_world():
    env = Environment()
    network = Network(env, NetworkConfig(bandwidth_bps=100e6,
                                         software_cost_s=1e-5))
    sizes = SizeModel(page_bytes=100)
    layout = ObjectLayout(
        [AttributeSpec("a", 90), AttributeSpec("b", 90),
         AttributeSpec("c", 90)],
        page_size=100,
    )
    stores = {node: NodeStore(node) for node in (N0, N1, N2)}
    stores[N0].create_object(OID, layout)
    for node in (N1, N2):
        stores[node].register_object(OID, layout)
    meta = ObjectMeta(object_id=OID, schema=_schema(layout), layout=layout,
                      home_node=N0, creator_node=N0)
    return env, network, sizes, stores, meta


def _schema(layout):
    # Minimal stand-in; protocols only use object_id/layout from meta.
    return ClassSchema("T", layout.attributes, methods={"m": None})


def page_map(owners, versions):
    return {
        page: PageMapEntry(owner=owner, version=version)
        for page, (owner, version) in enumerate(zip(owners, versions))
    }


def prediction(read_pages=(), write_pages=()):
    return AccessPrediction(read_pages=frozenset(read_pages),
                            write_pages=frozenset(write_pages))


class TestSelectionPolicies:
    def setup_method(self):
        self.env, self.network, self.sizes, self.stores, self.meta = \
            make_world()

    def proto(self, cls):
        return cls(env=self.env, network=self.network, sizes=self.sizes,
                   stores=self.stores)

    def test_cotec_selects_everything(self):
        cotec = self.proto(COTEC)
        pages = cotec.select_pages(
            self.meta, page_map([N0, N1, N0], [1, 1, 1]),
            local_versions={0: 1, 1: 1, 2: 1}, prediction=prediction(),
        )
        assert pages == {0, 1, 2}

    def test_otec_selects_stale_only(self):
        otec = self.proto(OTEC)
        pages = otec.select_pages(
            self.meta, page_map([N0, N1, N0], [2, 1, 3]),
            local_versions={0: 2, 1: 1, 2: 1}, prediction=prediction(),
        )
        assert pages == {2}

    def test_lotec_intersects_with_prediction(self):
        lotec = self.proto(LOTEC)
        pages = lotec.select_pages(
            self.meta, page_map([N0, N1, N0], [2, 2, 2]),
            local_versions={0: 1, 1: 1, 2: 1},
            prediction=prediction(read_pages={0}, write_pages={1}),
        )
        assert pages == {0, 1}

    def test_rc_selects_stale_like_otec(self):
        rc = self.proto(ReleaseConsistency)
        pages = rc.select_pages(
            self.meta, page_map([N0, N1, N0], [1, 5, 1]),
            local_versions={}, prediction=prediction(),
        )
        assert pages == {0, 1, 2}

    def test_exhaustive_protocols_refuse_stale_access(self):
        otec = self.proto(OTEC)

        class FakeTxn:
            id = "T"
            node = N1

        with pytest.raises(ProtocolError, match="stale"):
            otec.on_stale_access(FakeTxn(), self.meta,
                                 page_map([N0], [1]), [0], is_write=False)

    def test_registry_factory(self):
        protocol = make_protocol(
            "lotec", env=self.env, network=self.network,
            sizes=self.sizes, stores=self.stores,
        )
        assert isinstance(protocol, LOTEC)
        with pytest.raises(KeyError):
            make_protocol("nope")


class TestGatherEngine:
    def setup_method(self):
        self.env, self.network, self.sizes, self.stores, self.meta = \
            make_world()

    def test_gather_skips_local_owner(self):
        def proc():
            shipped = yield from gather_pages(
                self.env, self.network, self.sizes, self.stores,
                N0, self.meta, page_map([N0, N0, N0], [1, 1, 1]),
                pages=[0, 1, 2],
            )
            return shipped

        assert self.env.run_process(proc()) == []
        assert self.network.stats.total_messages == 0

    def test_gather_groups_by_owner(self):
        # Make N1 own pages 0,1 and N2 own page 2 at version 2.
        self.stores[N1].install_pages(
            OID, self.stores[N0].extract_pages(OID, [0, 1]))
        self.stores[N2].install_pages(
            OID, self.stores[N0].extract_pages(OID, [2]))
        for node, pages in ((N1, (0, 1)), (N2, (2,))):
            for page in pages:
                self.stores[node].set_page_version(OID, page, 2)

        def proc():
            shipped = yield from gather_pages(
                self.env, self.network, self.sizes, self.stores,
                N0, self.meta, page_map([N1, N1, N2], [2, 2, 2]),
                pages=[0, 1, 2],
            )
            return shipped

        shipped = self.env.run_process(proc())
        assert sorted(shipped) == [0, 1, 2]
        # One request + one data message per distinct owner.
        assert self.network.stats.total_messages == 4
        assert self.stores[N0].page_version(OID, 0) == 2
        assert self.stores[N0].page_version(OID, 2) == 2

    def test_gather_charges_page_sized_data(self):
        self.stores[N1].install_pages(
            OID, self.stores[N0].extract_pages(OID, [0]))
        self.stores[N1].set_page_version(OID, 0, 2)

        def proc():
            yield from gather_pages(
                self.env, self.network, self.sizes, self.stores,
                N0, self.meta, page_map([N1, N0, N0], [2, 1, 1]),
                pages=[0],
            )

        self.env.run_process(proc())
        from repro.net.message import MessageCategory

        assert self.network.stats.category_bytes(
            MessageCategory.PAGE_DATA
        ) == self.sizes.page_data(1)

    def test_demand_fetch_moves_data_and_returns_delay(self):
        self.stores[N1].install_pages(
            OID, self.stores[N0].extract_pages(OID, [1]))
        self.stores[N1].write_slot(OID, ("b", 0), 42)
        self.stores[N1].set_page_version(OID, 1, 2)
        delay, shipped = demand_fetch(
            self.network, self.sizes, self.stores,
            N2, self.meta, page_map([N0, N1, N0], [1, 2, 1]), pages=[1],
        )
        assert shipped == [1]
        assert delay > 0
        assert self.stores[N2].read_slot(OID, ("b", 0)) == 42

    def test_unknown_grain_rejected(self):
        def proc():
            yield from gather_pages(
                self.env, self.network, self.sizes, self.stores,
                N2, self.meta, page_map([N0], [1]), pages=[0],
                grain="nibble",
            )

        with pytest.raises(ConfigurationError, match="grain"):
            self.env.run_process(proc())
