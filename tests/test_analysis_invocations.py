"""Unit tests for static invocation-target analysis (§5.1)."""

from repro import Attr, method, shared_class
from repro.analysis import UNKNOWN_INVOCATIONS, analyze_invocations, may_invoke


class TestAnalyzeInvocations:
    def test_plain_function_invokes_nothing(self):
        def m(self, ctx):
            return self.x

        assert analyze_invocations(m) == frozenset()

    def test_literal_invocations_found(self):
        def m(self, ctx, a, b):
            yield ctx.invoke(a, "deposit", 1)
            result = yield ctx.invoke(b, "withdraw", 2)
            return result

        assert analyze_invocations(m) == {"deposit", "withdraw"}

    def test_computed_name_is_unknown(self):
        def m(self, ctx, a, name):
            yield ctx.invoke(a, name)

        assert analyze_invocations(m) is UNKNOWN_INVOCATIONS

    def test_generator_without_invocations(self):
        def m(self, ctx):
            yield ctx.invoke  # not a call; weird but possible
            return 1

        assert analyze_invocations(m) == frozenset()

    def test_invocations_inside_loops_and_branches(self):
        def m(self, ctx, targets, flag):
            for target in targets:
                if flag:
                    yield ctx.invoke(target, "ping")
                else:
                    yield ctx.invoke(target, "pong")

        assert analyze_invocations(m) == {"ping", "pong"}

    def test_unanalyzable_generator_degrades(self):
        namespace = {}
        exec(  # noqa: S102 - deliberately sourceless function
            "def m(self, ctx, a):\n    yield ctx.invoke(a, 'hidden')\n",
            namespace,
        )
        assert analyze_invocations(namespace["m"]) is UNKNOWN_INVOCATIONS

    def test_may_invoke_helper(self):
        assert not may_invoke(frozenset())
        assert may_invoke(frozenset({"x"}))
        assert may_invoke(UNKNOWN_INVOCATIONS)


class TestSchemaIntegration:
    def test_spec_carries_invocations(self):
        @shared_class
        class Caller:
            x = Attr(size=8)

            @method
            def leaf(self, ctx):
                return self.x

            @method
            def caller(self, ctx, other):
                result = yield ctx.invoke(other, "leaf")
                return result

        schema = Caller.__repro_schema__
        assert schema.method_spec("leaf").invoked_methods == frozenset()
        assert not schema.method_spec("leaf").may_invoke
        assert schema.method_spec("caller").invoked_methods == {"leaf"}
        assert schema.method_spec("caller").may_invoke

    def test_prefetch_skipped_for_non_invoking_roots(self):
        from conftest import Counter, make_cluster

        cluster = make_cluster(prefetch="locks+pages", seed=3)
        counter = cluster.create(Counter)
        other = cluster.create(Counter)
        # 'add' provably invokes nothing: even with another handle in
        # its arguments nothing must be pre-acquired.
        cluster.call(counter, "add", 1)
        assert cluster.lock_stats.prefetch_granted == 0
        assert cluster.lock_stats.prefetch_denied == 0
        del other
