"""Tests for the observability subsystem (:mod:`repro.obs`): metrics
registry, virtual-clock tracer, exporters, and the wiring that keeps
the tracer's aggregates exactly equal to :class:`NetworkStats`."""

import json

import pytest

from repro import Attr, Cluster, ClusterConfig, method, shared_class
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    chrome_trace,
    events_to_jsonl,
    read_jsonl,
    render_summary,
    sanitize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.util.ids import NodeId, ObjectId, TxnId


# ---------------------------------------------------------------------------
# Metrics instruments
# ---------------------------------------------------------------------------

class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_tracks_high_water(self):
        gauge = Gauge()
        gauge.inc()
        gauge.inc()
        gauge.dec()
        gauge.inc()
        assert gauge.value == 2
        assert gauge.high_water == 2
        gauge.set(10)
        gauge.dec(10)
        assert gauge.value == 0
        assert gauge.high_water == 10

    def test_histogram_buckets_and_stats(self):
        hist = Histogram(buckets=(0.001, 0.1, 1.0))
        for value in (0.0005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [1, 1, 1, 1]  # one overflow
        assert hist.mean == pytest.approx(5.5505 / 4)
        assert hist.min == pytest.approx(0.0005)
        assert hist.max == pytest.approx(5.0)

    def test_histogram_empty_snapshot(self):
        assert Histogram().snapshot() == {
            "count": 0, "total": 0.0, "mean": 0.0,
        }

    def test_histogram_snapshot_omits_empty_buckets(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 1}
        assert snap["overflow"] == 0


class TestMetricsRegistry:
    def test_instruments_created_on_demand_and_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", k="x") is not registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x=1, y=2) is registry.counter(
            "a", y=2, x=1
        )

    def test_counter_total_sums_over_labels(self):
        registry = MetricsRegistry()
        registry.counter("bytes", cause="acquire").inc(100)
        registry.counter("bytes", cause="demand").inc(30)
        registry.counter("other").inc(999)
        assert registry.counter_total("bytes") == 130
        assert registry.counter_total("bytes", cause="demand") == 30
        assert registry.counter_total("missing") == 0

    def test_counter_series_breaks_down_one_label(self):
        registry = MetricsRegistry()
        registry.counter("bytes", cause="acquire", node=0).inc(5)
        registry.counter("bytes", cause="acquire", node=1).inc(7)
        registry.counter("bytes", cause="demand", node=0).inc(2)
        assert registry.counter_series("bytes", "cause") == {
            "acquire": 12, "demand": 2,
        }

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="root").inc(3)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["c"]["kind=root"] == 3
        assert snap["gauges"]["g"]["total"]["high_water"] == 2
        assert snap["histograms"]["h"]["total"]["count"] == 1

    def test_merge_folds_every_instrument_kind(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c", kind="root").inc(3)
        right.counter("c", kind="root").inc(4)
        right.counter("only-right").inc(1)
        left.gauge("g").set(5)
        right.gauge("g").set(2)
        left.histogram("h").observe(0.5)
        right.histogram("h").observe(2.0)
        left.merge(right)
        assert left.counter("c", kind="root").value == 7
        assert left.counter("only-right").value == 1
        assert left.gauge("g").value == 7
        assert left.gauge("g").high_water == 5
        merged = left.histogram("h")
        assert merged.count == 2
        assert merged.min == 0.5 and merged.max == 2.0

    def test_merge_rejects_mismatched_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", buckets=(1.0,)).observe(0.5)
        right.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="buckets"):
            left.merge(right)

    def test_registry_survives_pickling(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(0.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("c").value == 3
        assert clone.snapshot() == registry.snapshot()


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------

class TestSanitize:
    def test_primitives_pass_through(self):
        assert sanitize(None) is None
        assert sanitize(3) == 3
        assert sanitize("x") == "x"
        assert sanitize(True) is True

    def test_ids_use_compact_repr(self):
        assert sanitize(NodeId(2)) == "N2"
        assert sanitize(ObjectId(3)) == "O3"
        assert sanitize(TxnId(serial=7, root=2)) == repr(TxnId(serial=7,
                                                             root=2))

    def test_sets_become_sorted_lists(self):
        assert sanitize({3, 1, 2}) == [1, 2, 3]

    def test_nested_containers(self):
        value = {"k": (NodeId(0), [ObjectId(1)])}
        assert sanitize(value) == {"k": ["N0", ["O1"]]}


class TestTracerCore:
    def make(self):
        clock = [0.0]
        tracer = Tracer(clock=lambda: clock[0])
        return clock, tracer

    def test_instant_stamps_virtual_clock(self):
        clock, tracer = self.make()
        clock[0] = 1.25
        tracer.instant("tick", "sim", node=NodeId(3), detail=7)
        (event,) = tracer.events
        assert event.ts == 1.25
        assert event.phase == "i"
        assert event.node == 3
        assert event.args == {"detail": 7}

    def test_span_duration_from_begin_end(self):
        clock, tracer = self.make()
        token = tracer.begin("work", "sim")
        clock[0] = 2.0
        tracer.end(token, outcome="done")
        (event,) = tracer.events
        assert event.phase == "X"
        assert event.ts == 0.0
        assert event.dur == 2.0
        assert event.args["outcome"] == "done"

    def test_interleaved_spans_use_tokens(self):
        clock, tracer = self.make()
        first = tracer.begin("a", "sim")
        clock[0] = 1.0
        second = tracer.begin("b", "sim")
        clock[0] = 3.0
        tracer.end(first)
        clock[0] = 4.0
        tracer.end(second)
        by_name = {event.name: event for event in tracer.events}
        assert by_name["a"].dur == 3.0
        assert by_name["b"].dur == 3.0

    def test_unmatched_end_is_ignored(self):
        _, tracer = self.make()
        tracer.end(None)
        tracer.end(999)
        assert tracer.events == []

    def test_tracer_owns_a_registry_by_default(self):
        _, tracer = self.make()
        assert isinstance(tracer.metrics, MetricsRegistry)


class TestNullTracer:
    def test_all_hooks_are_noops(self):
        tracer = NullTracer()
        assert tracer.begin("x", "sim") is None
        tracer.end(None)
        tracer.instant("x", "sim")
        tracer.message(None, 0.0)
        tracer.some_future_hook(1, 2, 3)  # __getattr__ fallback
        assert tracer.events == ()
        assert tracer.metrics is None
        assert not tracer.enabled

    def test_cluster_defaults_to_null_tracer(self):
        cluster = Cluster(ClusterConfig(num_nodes=2))
        assert cluster.tracer is NULL_TRACER
        assert cluster.metrics is None
        assert cluster.trace_events == ()


# ---------------------------------------------------------------------------
# Traced cluster integration
# ---------------------------------------------------------------------------

@shared_class
class Leaf:
    hits = Attr(size=2048, default=0)

    @method
    def bump(self, ctx):
        self.hits += 1

    @method
    def value(self, ctx):
        return self.hits


@shared_class
class Root:
    total = Attr(size=8, default=0)

    @method
    def sweep(self, ctx, leaves):
        total = 0
        for leaf in leaves:
            total += yield ctx.invoke(leaf, "value")
        self.total = total
        return total


@pytest.fixture(scope="module")
def traced():
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec", seed=3,
                                    trace=True))
    leaves = [cluster.create(Leaf) for _ in range(6)]
    root = cluster.create(Root)
    for index in range(24):
        cluster.submit(leaves[index % 6], "bump")
    cluster.run()
    cluster.call(root, "sweep", leaves)
    return cluster


class TestTracedCluster:
    def test_events_recorded_with_virtual_timestamps(self, traced):
        events = traced.trace_events
        assert events
        assert all(event.ts >= 0.0 for event in events)
        categories = {event.category for event in events}
        assert {"txn", "lock", "gdo", "net", "transfer"} <= categories

    def test_txn_spans_balance_commits(self, traced):
        spans = [e for e in traced.trace_events
                 if e.category == "txn" and e.phase == "X"]
        commits = [e for e in spans if e.args.get("outcome") == "commit"]
        stats = traced.txn_stats
        assert len(commits) == stats.commits + stats.sub_commits

    def test_metrics_bytes_match_network_stats_exactly(self, traced):
        metrics = traced.metrics
        stats = traced.network_stats
        assert metrics.counter_total("net.bytes") == stats.total_bytes
        assert metrics.counter_total("net.messages") == stats.total_messages
        for category, expected in stats.by_category_bytes.items():
            assert metrics.counter_total(
                "net.bytes", category=category.value
            ) == expected
        for category, expected in stats.by_category_messages.items():
            assert metrics.counter_total(
                "net.messages", category=category.value
            ) == expected

    def test_metrics_per_node_bytes_match_node_traffic(self, traced):
        metrics = traced.metrics
        for node, traffic in traced.network_stats.by_node.items():
            assert metrics.counter_total(
                "net.sent_bytes", node=node.value
            ) == traffic.sent_bytes
            assert metrics.counter_total(
                "net.received_bytes", node=node.value
            ) == traffic.received_bytes

    def test_net_events_one_per_message(self, traced):
        net_events = [e for e in traced.trace_events if e.category == "net"]
        assert len(net_events) == traced.network_stats.total_messages
        assert sum(e.args["bytes"] for e in net_events) \
            == traced.network_stats.total_bytes

    def test_transfer_bytes_match_consistency_bytes(self, traced):
        # Every consistency-data byte on the wire is attributed to a
        # cause (acquire / demand / push) by the transfer hooks.
        assert traced.metrics.counter_total("transfer.bytes") \
            == traced.network_stats.consistency_bytes()

    def test_summary_renders(self, traced):
        text = render_summary(traced.tracer)
        assert "transactions" in text
        assert "root commits" in text
        assert "total bytes" in text
        assert f"{traced.network_stats.total_bytes:,}" in text


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def test_jsonl_round_trip(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced.trace_events, path)
        assert read_jsonl(path) == traced.trace_events

    def test_jsonl_lines_are_json_objects(self, traced):
        lines = events_to_jsonl(traced.trace_events).splitlines()
        assert len(lines) == len(traced.trace_events)
        record = json.loads(lines[0])
        assert set(record) == {
            "ts", "name", "category", "phase", "dur", "node", "track", "args",
        }

    def test_chrome_trace_schema(self, traced):
        doc = chrome_trace(traced.trace_events)
        json.dumps(doc)  # must be JSON-serializable
        assert doc["displayTimeUnit"] == "ms"
        records = doc["traceEvents"]
        assert records
        for record in records:
            assert {"name", "ph", "pid", "tid"} <= set(record)
            if record["ph"] == "X":
                assert record["ts"] >= 0
                assert record["dur"] >= 0
            elif record["ph"] == "i":
                assert record["s"] == "t"
            else:
                assert record["ph"] == "M"

    def test_chrome_trace_names_processes_and_threads(self, traced):
        records = chrome_trace(traced.trace_events)["traceEvents"]
        process_names = {
            record["args"]["name"]
            for record in records if record["name"] == "process_name"
        }
        assert any(name.startswith("node N") for name in process_names)
        thread_meta = [r for r in records if r["name"] == "thread_name"]
        assert thread_meta
        # tids are unique within a pid
        seen = set()
        for record in thread_meta:
            key = (record["pid"], record["tid"])
            assert key not in seen
            seen.add(key)

    def test_chrome_trace_timestamps_in_microseconds(self, traced):
        events = traced.trace_events
        records = [r for r in chrome_trace(events)["traceEvents"]
                   if r["ph"] != "M"]
        assert records[0]["ts"] == pytest.approx(events[0].ts * 1e6)

    def test_write_chrome_trace(self, traced, tmp_path):
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(traced.trace_events, path)
        with open(path) as handle:
            doc = json.load(handle)
        assert "traceEvents" in doc
