"""Unit tests for the simulation environment and process model."""

import pytest

from repro.sim import Environment
from repro.util.errors import ConfigurationError


@pytest.fixture
def env():
    return Environment()


class TestEnvironment:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_run_returns_final_time(self, env):
        env.timeout(3.0)
        assert env.run() == 3.0

    def test_run_until_stops_early(self, env):
        late = env.timeout(10.0)
        assert env.run(until=4.0) == 4.0
        assert not late.processed

    def test_run_until_advances_past_last_event(self, env):
        env.timeout(1.0)
        assert env.run(until=9.0) == 9.0

    def test_run_until_in_past_rejected(self, env):
        env.timeout(5.0)
        env.run()
        with pytest.raises(ConfigurationError):
            env.run(until=1.0)

    def test_resumable(self, env):
        first, second = env.timeout(1.0), env.timeout(5.0)
        env.run(until=2.0)
        assert first.processed and not second.processed
        env.run()
        assert second.processed

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_same_time_events_fifo(self, env):
        order = []
        for tag in "abc":
            env.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]

    def test_deterministic_interleaving(self):
        def trace(seed_env):
            log = []

            def proc(tag, delay):
                yield seed_env.timeout(delay)
                log.append((tag, seed_env.now))
                yield seed_env.timeout(delay)
                log.append((tag, seed_env.now))

            seed_env.process(proc("x", 1.0))
            seed_env.process(proc("y", 1.5))
            seed_env.run()
            return log

        assert trace(Environment()) == trace(Environment())


class TestProcess:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_returns_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 99

        assert env.run_process(proc()) == 99

    def test_receives_event_values(self, env):
        def proc():
            got = yield env.timeout(1.0, value="tick")
            return got

        assert env.run_process(proc()) == "tick"

    def test_exception_propagates(self, env):
        def proc():
            yield env.timeout(1.0)
            raise ValueError("inside process")

        with pytest.raises(ValueError, match="inside process"):
            env.run_process(proc())

    def test_failed_event_thrown_into_process(self, env):
        trigger = env.event()

        def failer():
            yield env.timeout(1.0)
            trigger.fail(RuntimeError("lock denied"))

        def waiter():
            try:
                yield trigger
            except RuntimeError as exc:
                return f"caught {exc}"

        env.process(failer())
        result_proc = env.process(waiter())
        env.run()
        assert result_proc.value == "caught lock denied"

    def test_process_joining(self, env):
        def child():
            yield env.timeout(2.0)
            return "child-done"

        def parent():
            result = yield env.process(child())
            return f"saw {result}"

        assert env.run_process(parent()) == "saw child-done"

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(1.0)
            return 5

        def outer():
            value = yield from inner()
            yield env.timeout(1.0)
            return value * 2

        assert env.run_process(outer()) == 10
        assert env.now == 2.0

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield 42

        with pytest.raises(TypeError, match="may only yield"):
            env.run_process(proc())

    def test_stuck_process_reported(self, env):
        def proc():
            yield env.event()  # nobody will ever trigger this

        with pytest.raises(ConfigurationError, match="did not finish"):
            env.run_process(proc())

    def test_two_processes_share_clock(self, env):
        times = {}

        def proc(tag, delay):
            yield env.timeout(delay)
            times[tag] = env.now

        env.process(proc("fast", 1.0))
        env.process(proc("slow", 3.0))
        env.run()
        assert times == {"fast": 1.0, "slow": 3.0}

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive
