"""Unit tests for the simulation environment and process model."""

import pytest

from repro.sim import Environment
from repro.util.errors import ConfigurationError


@pytest.fixture
def env():
    return Environment()


class TestEnvironment:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_run_returns_final_time(self, env):
        env.timeout(3.0)
        assert env.run() == 3.0

    def test_run_until_stops_early(self, env):
        late = env.timeout(10.0)
        assert env.run(until=4.0) == 4.0
        assert not late.processed

    def test_run_until_advances_past_last_event(self, env):
        env.timeout(1.0)
        assert env.run(until=9.0) == 9.0

    def test_run_until_in_past_rejected(self, env):
        env.timeout(5.0)
        env.run()
        with pytest.raises(ConfigurationError):
            env.run(until=1.0)

    def test_resumable(self, env):
        first, second = env.timeout(1.0), env.timeout(5.0)
        env.run(until=2.0)
        assert first.processed and not second.processed
        env.run()
        assert second.processed

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_same_time_events_fifo(self, env):
        order = []
        for tag in "abc":
            env.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]

    def test_deterministic_interleaving(self):
        def trace(seed_env):
            log = []

            def proc(tag, delay):
                yield seed_env.timeout(delay)
                log.append((tag, seed_env.now))
                yield seed_env.timeout(delay)
                log.append((tag, seed_env.now))

            seed_env.process(proc("x", 1.0))
            seed_env.process(proc("y", 1.5))
            seed_env.run()
            return log

        assert trace(Environment()) == trace(Environment())


class TestProcess:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_returns_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 99

        assert env.run_process(proc()) == 99

    def test_receives_event_values(self, env):
        def proc():
            got = yield env.timeout(1.0, value="tick")
            return got

        assert env.run_process(proc()) == "tick"

    def test_exception_propagates(self, env):
        def proc():
            yield env.timeout(1.0)
            raise ValueError("inside process")

        with pytest.raises(ValueError, match="inside process"):
            env.run_process(proc())

    def test_failed_event_thrown_into_process(self, env):
        trigger = env.event()

        def failer():
            yield env.timeout(1.0)
            trigger.fail(RuntimeError("lock denied"))

        def waiter():
            try:
                yield trigger
            except RuntimeError as exc:
                return f"caught {exc}"

        env.process(failer())
        result_proc = env.process(waiter())
        env.run()
        assert result_proc.value == "caught lock denied"

    def test_process_joining(self, env):
        def child():
            yield env.timeout(2.0)
            return "child-done"

        def parent():
            result = yield env.process(child())
            return f"saw {result}"

        assert env.run_process(parent()) == "saw child-done"

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(1.0)
            return 5

        def outer():
            value = yield from inner()
            yield env.timeout(1.0)
            return value * 2

        assert env.run_process(outer()) == 10
        assert env.now == 2.0

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield 42

        with pytest.raises(TypeError, match="may only yield"):
            env.run_process(proc())

    def test_stuck_process_reported(self, env):
        def proc():
            yield env.event()  # nobody will ever trigger this

        with pytest.raises(ConfigurationError, match="did not finish"):
            env.run_process(proc())

    def test_two_processes_share_clock(self, env):
        times = {}

        def proc(tag, delay):
            yield env.timeout(delay)
            times[tag] = env.now

        env.process(proc("fast", 1.0))
        env.process(proc("slow", 3.0))
        env.run()
        assert times == {"fast": 1.0, "slow": 3.0}

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestResumeRecovery:
    """A generator that *catches* an injected exception and yields a
    fresh event must re-attach to it (regression: the recovered yield
    was silently dropped, stalling the process forever)."""

    def test_catch_and_retry_after_non_event_yield(self, env):
        def proc():
            try:
                yield "not-an-event"
            except TypeError:
                pass
            got = yield env.timeout(1.0, value="recovered")
            return got

        assert env.run_process(proc()) == "recovered"
        assert env.now == 1.0

    def test_repeated_recovery_in_one_step(self, env):
        def proc():
            for bogus in (42, "still-not-an-event", object()):
                try:
                    yield bogus
                except TypeError:
                    pass
            yield env.timeout(2.0)
            return "done"

        assert env.run_process(proc()) == "done"
        assert env.now == 2.0

    def test_unhandled_injection_still_fails_process(self, env):
        def proc():
            yield 42

        with pytest.raises(TypeError, match="may only yield"):
            env.run_process(proc())


class TestInterrupt:
    def test_interrupt_before_bootstrap(self, env):
        def proc():
            yield env.timeout(10.0)
            return "finished"

        process = env.process(proc())
        process.interrupt(RuntimeError("early crash"))
        env.run()
        assert process.triggered and not process.ok
        assert isinstance(process.value, RuntimeError)
        assert str(process.value) == "early crash"

    def test_interrupt_thrown_at_wait_point(self, env):
        caught = []

        def proc():
            try:
                yield env.timeout(10.0)
            except RuntimeError as exc:
                caught.append(str(exc))
            return "survived"

        process = env.process(proc())

        def interrupter():
            yield env.timeout(1.0)
            process.interrupt(RuntimeError("crash"))

        env.process(interrupter())
        env.run()
        assert caught == ["crash"]
        assert process.ok and process.value == "survived"

    def test_double_interrupt_first_wins(self, env):
        """Regression: a second interrupt while the first's poison was
        in flight re-queued the process and overwrote the exception —
        the process resumed twice, the second exception shadowing the
        first.  The poison path is one-shot now."""
        caught = []

        def proc():
            try:
                yield env.timeout(10.0)
            except RuntimeError as exc:
                caught.append(str(exc))
            return len(caught)

        process = env.process(proc())

        def interrupter():
            yield env.timeout(1.0)
            process.interrupt(RuntimeError("first"))
            process.interrupt(RuntimeError("second"))

        env.process(interrupter())
        env.run()
        assert caught == ["first"]
        assert process.ok and process.value == 1

    def test_double_interrupt_before_bootstrap_first_wins(self, env):
        def proc():
            yield env.timeout(10.0)

        process = env.process(proc())
        process.interrupt(RuntimeError("first"))
        process.interrupt(RuntimeError("second"))
        env.run()
        assert not process.ok
        assert str(process.value) == "first"

    def test_interrupt_after_trigger_is_noop(self, env):
        def proc():
            yield env.timeout(1.0)
            return "ok"

        process = env.process(proc())
        env.run()
        process.interrupt(RuntimeError("late"))
        assert process.ok and process.value == "ok"


class TestRunUntilExits:
    """Both ``run(until=...)`` exits — queue drained before ``until``,
    and next event past ``until`` — must leave the clock clamped to
    ``until`` and record the same ``events=`` count on the ``sim.run``
    span."""

    def _run(self, schedule_past_until: bool):
        from repro.obs.tracer import Tracer

        env = Environment()
        env.tracer = Tracer(clock=lambda: env.now)
        env.timeout(1.0)
        env.timeout(2.0)
        if schedule_past_until:
            env.timeout(7.0)
        returned = env.run(until=5.0)
        span = [e for e in env.tracer.events if e.name == "sim.run"][-1]
        return returned, env.now, span.args["events"]

    def test_exit_paths_agree(self):
        drained = self._run(schedule_past_until=False)
        clamped = self._run(schedule_past_until=True)
        assert drained == (5.0, 5.0, 2)
        assert clamped == (5.0, 5.0, 2)
