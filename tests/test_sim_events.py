"""Unit tests for the simulation kernel's event types."""

import pytest

from repro.sim import Environment
from repro.util.errors import ProtocolError


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_fail_sets_exception(self, env):
        event = env.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(ProtocolError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(ProtocolError):
            env.event().ok

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(ProtocolError):
            event.succeed()

    def test_succeed_then_fail_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(ProtocolError):
            event.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callback_runs_after_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["x"]

    def test_callback_on_processed_event_runs_immediately(self, env):
        event = env.event()
        event.succeed(7)
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_repr_states(self, env):
        event = env.event(name="thing")
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)
        failed = env.event()
        failed.fail(ValueError())
        assert "failed" in repr(failed)


class TestTimeout:
    def test_fires_at_delay(self, env):
        timeout = env.timeout(2.5)
        env.run()
        assert timeout.processed
        assert env.now == 2.5

    def test_carries_value(self, env):
        timeout = env.timeout(1.0, value="done")
        env.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-0.1)

    def test_zero_delay_allowed(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed
        assert env.now == 0.0

    def test_cannot_be_manually_triggered(self, env):
        timeout = env.timeout(1.0)
        with pytest.raises(ProtocolError):
            timeout.succeed()
        with pytest.raises(ProtocolError):
            timeout.fail(RuntimeError())


class TestAllOf:
    def test_empty_succeeds_immediately(self, env):
        all_of = env.all_of([])
        assert all_of.triggered
        assert all_of.value == []

    def test_collects_values_in_order(self, env):
        a, b = env.timeout(2.0, value="a"), env.timeout(1.0, value="b")
        all_of = env.all_of([a, b])
        env.run()
        assert all_of.value == ["a", "b"]

    def test_waits_for_slowest(self, env):
        events = [env.timeout(d) for d in (1.0, 5.0, 3.0)]
        all_of = env.all_of(events)
        fired_at = []
        all_of.add_callback(lambda e: fired_at.append(env.now))
        env.run()
        assert fired_at == [5.0]

    def test_child_failure_fails_the_group(self, env):
        good = env.timeout(1.0)
        bad = env.event()
        all_of = env.all_of([good, bad])
        error = RuntimeError("child failed")
        bad.fail(error)
        env.run()
        assert all_of.triggered
        assert not all_of.ok
        assert all_of.value is error

    def test_already_triggered_children(self, env):
        done = env.event()
        done.succeed(1)
        env.run()
        all_of = env.all_of([done])
        env.run()
        assert all_of.value == [1]


class TestAnyOf:
    def test_requires_children(self, env):
        with pytest.raises(ValueError):
            env.any_of([])

    def test_first_wins(self, env):
        slow, fast = env.timeout(5.0, value="slow"), env.timeout(1.0, value="fast")
        any_of = env.any_of([slow, fast])
        env.run()
        assert any_of.value == (1, "fast")

    def test_failure_propagates(self, env):
        never = env.event()
        failing = env.event()
        any_of = env.any_of([never, failing])
        error = ValueError("bad")
        failing.fail(error)
        env.run()
        assert not any_of.ok
        assert any_of.value is error

    def test_later_events_ignored(self, env):
        a, b = env.timeout(1.0, value="a"), env.timeout(2.0, value="b")
        any_of = env.any_of([a, b])
        env.run()
        assert any_of.value == (0, "a")  # b fired later, no double trigger
