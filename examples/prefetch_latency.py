#!/usr/bin/env python
"""Optimistic lock pre-acquisition / prefetching (§5.1, implemented).

A document-pipeline workload where each root transaction names the
objects it will touch up front (the arguments carry the handles) and
nests several invocations — the regime where remote lock round trips
dominate latency.  The prefetcher pre-acquires the predicted objects'
locks concurrently (non-blocking: a busy lock is simply skipped) and,
in ``locks+pages`` mode, pre-fetches their stale pages too —
"performing these operations in parallel with other operations
effectively hides the latency of remote lock acquisition."

Run:  python examples/prefetch_latency.py
"""

from repro import Attr, Cluster, ClusterConfig, method, shared_class
from repro.net.presets import preset_network


@shared_class
class Stage:
    """One pipeline stage: a counter plus a payload it stamps."""

    processed = Attr(size=2048, default=0)
    checksum = Attr(size=2048, default=0)

    @method
    def process(self, ctx, token):
        self.processed += 1
        self.checksum = (self.checksum * 31 + token) % (1 << 31)
        return self.checksum


@shared_class
class Pipeline:
    runs = Attr(size=512, default=0)

    @method
    def push(self, ctx, stages, token):
        for stage in stages:
            token = yield ctx.invoke(stage, "process", token)
        self.runs += 1
        return token


def run_pipeline(prefetch: str, seed: int = 4):
    cluster = Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed, prefetch=prefetch,
        network=preset_network("100Mbps", "100us"),
    ))
    pipelines = [cluster.create(Pipeline) for _ in range(4)]
    stage_sets = [
        tuple(cluster.create(Stage) for _ in range(5)) for _ in range(4)
    ]
    for index in range(40):
        lane = index % 4
        cluster.submit(pipelines[lane], "push", stage_sets[lane], index,
                       delay=index * 0.0008)
    cluster.run()
    return cluster


def main() -> None:
    print(f"{'prefetch':>12}  {'mean latency (us)':>17}  {'p95 (us)':>9}  "
          f"{'messages':>8}  {'granted':>7}  {'denied':>6}")
    latencies = {}
    messages = {}
    for mode in ("off", "locks", "locks+pages"):
        cluster = run_pipeline(mode)
        stats = cluster.txn_stats
        latencies[mode] = stats.mean_latency
        messages[mode] = cluster.network_stats.total_messages
        print(f"{mode:>12}  {stats.mean_latency * 1e6:>17.0f}  "
              f"{stats.latency_percentile(0.95) * 1e6:>9.0f}  "
              f"{cluster.network_stats.total_messages:>8}  "
              f"{cluster.lock_stats.prefetch_granted:>7}  "
              f"{cluster.lock_stats.prefetch_denied:>6}")
    saving = 1 - latencies["locks+pages"] / latencies["off"]
    print(f"\nlocks+pages hides {saving:.0%} of mean root latency on this "
          f"pipeline: the same lock and page round trips happen, but off "
          f"the\ncritical path (here every prefetch was granted, so the "
          f"message count\nis unchanged; contended workloads pay extra "
          f"messages for denied optimism)")


if __name__ == "__main__":
    main()
