#!/usr/bin/env python
"""Collaborative CAD: the domain LOTEC was originally built for.

Footnote 5 of the paper: coarse-grained object aggregation "includes
computer aided design environments for which this work was originally
developed."  This example models a CAD assembly tree — large Part
objects whose geometry, material, and bookkeeping attributes live on
different pages — edited concurrently by several designers.  Methods
touch small attribute subsets of big objects, the regime where LOTEC's
predicted-page transfer shines; the example prints how much each
protocol shipped for the same editing session.

Run:  python examples/cad_assembly.py
"""

from repro import Array, Attr, Cluster, ClusterConfig, method, shared_class


@shared_class
class Part:
    """A CAD part: ~6 pages of geometry + metadata (4 KiB pages)."""

    # Large mesh payload spanning several pages.
    mesh = Array(size=512, count=32, default=0)
    # Distinct single-page regions a method can touch independently.
    transform = Attr(size=3000, default=0)
    material = Attr(size=3000, default=0)
    mass = Attr(size=1500, default=1)
    revision = Attr(size=1500, default=0)

    @method
    def move(self, ctx, offset):
        # Touches only the transform + revision pages.
        self.transform += offset
        self.revision += 1

    @method
    def repaint(self, ctx, finish_code):
        self.material = finish_code
        self.revision += 1

    @method
    def remesh(self, ctx, vertex, value):
        # Element assignment dirties only the pages holding the vertex.
        self.mesh[vertex] = value
        self.mass = self.mass + (value % 7)
        self.revision += 1

    @method
    def mass_of(self, ctx):
        return self.mass


@shared_class
class Assembly:
    """Groups parts; structural edits nest into part transactions."""

    total_mass = Attr(size=1024, default=0)
    edits = Attr(size=1024, default=0)

    @method
    def translate(self, ctx, parts, offset):
        for part in parts:
            yield ctx.invoke(part, "move", offset)
        self.edits += 1

    @method
    def recompute_mass(self, ctx, parts):
        total = 0
        for part in parts:
            total += yield ctx.invoke(part, "mass_of")
        self.total_mass = total
        return total


def run_session(protocol: str, seed: int = 5):
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol, seed=seed))
    assembly = cluster.create(Assembly)
    parts = [cluster.create(Part) for _ in range(6)]

    # Designers at different sites edit concurrently: moves, repaints,
    # and localized remeshes, interleaved with assembly-level edits.
    for index in range(30):
        part = parts[index % len(parts)]
        if index % 5 == 0:
            cluster.submit(assembly, "translate", tuple(parts[:3]), 2,
                           delay=index * 0.0003)
        elif index % 3 == 0:
            cluster.submit(part, "repaint", index, delay=index * 0.0003)
        elif index % 2 == 0:
            cluster.submit(part, "remesh", (index * 11) % 32, index,
                           delay=index * 0.0003)
        else:
            cluster.submit(part, "move", 1, delay=index * 0.0003)
    cluster.run()
    mass = cluster.call(assembly, "recompute_mass", tuple(parts))
    return cluster, mass


def main() -> None:
    page_count = None
    print(f"{'protocol':>8}  {'mass':>5}  {'data bytes':>11}  "
          f"{'messages':>8}  {'demand fetches':>14}")
    for protocol in ("cotec", "otec", "lotec"):
        cluster, mass = run_session(protocol)
        if page_count is None:
            part_meta = cluster.registry.meta(cluster.registry.all_objects()[1])
            page_count = part_meta.page_count
        stats = cluster.network_stats
        print(f"{protocol:>8}  {mass:>5}  {stats.consistency_bytes():>11,}  "
              f"{stats.total_messages:>8}  "
              f"{cluster.prediction_stats.demand_fetches:>14}")
    print(f"\n(each Part object spans {page_count} pages; methods touch "
          f"1-2 page regions, which is why the lazy protocols win)")


if __name__ == "__main__":
    main()
