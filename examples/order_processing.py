#!/usr/bin/env python
"""Order processing: a TPC-style throughput workload on the DSM.

The paper's §2: transaction systems draw their computational demand
"not from the complexity of a single transaction but rather from the
volume of transactions which must be concurrently processed."  This
example runs a stream of new-order transactions (customer debit, stock
decrement across items, order-counter update) against warehouse-
resident objects, measures throughput in committed roots per simulated
second, and verifies serializability.

Run:  python examples/order_processing.py
"""

from repro import (
    Array,
    Attr,
    Cluster,
    ClusterConfig,
    TransactionAborted,
    check_serializability,
    method,
    shared_class,
)


@shared_class
class Item:
    stock = Attr(size=2048, default=1000)
    reserved = Attr(size=2048, default=0)

    @method
    def allocate(self, ctx, quantity):
        if self.stock < quantity:
            ctx.abort("out-of-stock")
        self.stock -= quantity
        self.reserved += quantity
        return quantity


@shared_class
class Customer:
    credit = Attr(size=2048, default=10_000)
    orders = Attr(size=2048, default=0)

    @method
    def charge(self, ctx, amount):
        if self.credit < amount:
            ctx.abort("credit-limit")
        self.credit -= amount
        self.orders += 1


@shared_class
class Warehouse:
    order_count = Attr(size=1024, default=0)
    revenue = Attr(size=1024, default=0)
    history = Array(size=64, count=128, default=0)

    @method
    def new_order(self, ctx, customer, lines):
        """lines: tuple of (item handle, quantity, unit price)."""
        amount = 0
        for item, quantity, price in lines:
            granted = yield ctx.invoke(item, "allocate", quantity)
            amount += granted * price
        yield ctx.invoke(customer, "charge", amount)
        self.revenue += amount
        slot = self.order_count % 128
        self.history[slot] = amount
        self.order_count += 1
        return amount


def run_shop(protocol: str, orders: int = 60, seed: int = 9):
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol, seed=seed))
    warehouse = cluster.create(Warehouse)
    items = [cluster.create(Item) for _ in range(12)]
    customers = [cluster.create(Customer) for _ in range(8)]
    tickets = []
    for index in range(orders):
        customer = customers[index % len(customers)]
        lines = tuple(
            (items[(index * 3 + k) % len(items)], 1 + (index + k) % 3,
             10 + k)
            for k in range(1 + index % 3)
        )
        tickets.append(
            cluster.submit(warehouse, "new_order", customer, lines,
                           delay=index * 0.0002)
        )
    cluster.run()
    rejected = sum(1 for t in tickets if _aborted(t))
    return cluster, rejected


def _aborted(ticket) -> bool:
    try:
        ticket.result()
        return False
    except TransactionAborted:
        return True


def main() -> None:
    print(f"{'protocol':>8}  {'committed':>9}  {'rejected':>8}  "
          f"{'tps':>9}  {'data bytes':>11}  serializable")
    for protocol in ("cotec", "otec", "lotec", "rc"):
        cluster, rejected = run_shop(protocol)
        commits = cluster.txn_stats.commits
        elapsed = cluster.env.now
        tps = commits / elapsed if elapsed else 0.0
        ok = bool(check_serializability(cluster))
        print(f"{protocol:>8}  {commits:>9}  {rejected:>8}  "
              f"{tps:>9.0f}  {cluster.network_stats.consistency_bytes():>11,}"
              f"  {ok}")


if __name__ == "__main__":
    main()
