#!/usr/bin/env python
"""Quickstart: shared objects, nested transactions, and protocol stats.

Declares a shared class, creates objects across a 4-node simulated
cluster, runs root transactions (each method invocation is a
[sub-]transaction), and prints what the DSM moved to keep every node's
view consistent.

Run:  python examples/quickstart.py
"""

from repro import Attr, Cluster, ClusterConfig, method, shared_class


@shared_class
class Counter:
    """A page's worth of counters; methods touch only some attributes,
    which is exactly what LOTEC's access prediction exploits."""

    hits = Attr(size=2048, default=0)
    misses = Attr(size=2048, default=0)
    label = Attr(size=2048, default=0)

    @method
    def record_hit(self, ctx):
        self.hits += 1

    @method
    def record_miss(self, ctx):
        self.misses += 1

    @method
    def ratio(self, ctx):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@shared_class
class Dashboard:
    """Aggregates counters via nested sub-transactions."""

    refreshes = Attr(size=8, default=0)

    @method
    def refresh(self, ctx, counters):
        total = 0.0
        for counter in counters:
            total += yield ctx.invoke(counter, "ratio")
        self.refreshes += 1
        return total / len(counters)


def main() -> None:
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec", seed=1))
    counters = [cluster.create(Counter) for _ in range(8)]
    dashboard = cluster.create(Dashboard)

    # Submit a burst of root transactions; the scheduler spreads them
    # over the cluster's nodes and O2PL serializes the conflicts.
    for index in range(64):
        counter = counters[index % len(counters)]
        name = "record_hit" if index % 3 else "record_miss"
        cluster.submit(counter, name)
    cluster.run()

    mean_ratio = cluster.call(dashboard, "refresh", counters)
    print(f"mean hit ratio: {mean_ratio:.3f}")
    print(f"refreshes committed: {cluster.read_attr(dashboard, 'refreshes')}")

    stats = cluster.network_stats
    print(f"\nprotocol: {cluster.config.protocol}")
    print(f"committed roots:      {cluster.txn_stats.commits}")
    print(f"network messages:     {stats.total_messages}")
    print(f"network bytes:        {stats.total_bytes:,}")
    print(f"consistency bytes:    {stats.consistency_bytes():,}")
    print(f"local lock ops:       {cluster.lock_stats.local_acquisitions}")
    print(f"global lock ops:      {cluster.lock_stats.global_acquisitions}")


if __name__ == "__main__":
    main()
