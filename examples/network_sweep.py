#!/usr/bin/env python
"""Regenerate the paper's network sweep (Figures 6-8) at small scale.

For each Ethernet generation the paper simulated (10 Mbps, 100 Mbps,
1 Gbps) and each per-message software cost (100 us ... 500 ns), prints
the total message time needed to keep one hot shared object consistent
under COTEC/OTEC/LOTEC — the series of Figures 6-8.  Watch LOTEC's
relative advantage erode as bandwidth rises and software cost starts
to dominate (its many small messages each pay the startup price).

Run:  python examples/network_sweep.py            (quick)
      python examples/network_sweep.py --full     (paper scale)
"""

import sys

from repro.bench import run_bytes_figure, run_time_figure


def main() -> None:
    full = "--full" in sys.argv
    scale = 1.0 if full else 0.2
    for bandwidth in ("10Mbps", "100Mbps", "1Gbps"):
        result = run_time_figure(bandwidth, scale=scale, seed=11)
        print(result.render())
        print()
    summary = run_bytes_figure("large-high", scale=scale, objects_shown=8)
    print(summary.render())
    totals = summary.meta["total_data_bytes"]
    print(f"\naggregate data bytes: {totals}")
    print(f"OTEC saves {1 - totals['otec'] / totals['cotec']:.0%} vs COTEC; "
          f"LOTEC saves another {1 - totals['lotec'] / totals['otec']:.0%} "
          f"vs OTEC")


if __name__ == "__main__":
    main()
