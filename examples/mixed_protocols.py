#!/usr/bin/env python
"""Per-class consistency protocols (§6 future work, implemented here).

A collaborative design review: a small, write-hot Presence object that
every participant polls (ideal for eager RC — updates are pushed to all
replicas) alongside big Document objects edited in small regions (ideal
for LOTEC's predicted-page transfer).  Running each class under its
best protocol beats both pure configurations.

Run:  python examples/mixed_protocols.py
"""

from repro import (
    Array,
    Attr,
    Cluster,
    ClusterConfig,
    check_serializability,
    method,
    shared_class,
)


@shared_class
class Presence:
    """Single-page, write-hot, read-everywhere."""

    active_users = Attr(size=1024, default=0)
    last_editor = Attr(size=1024, default=0)

    @method
    def check_in(self, ctx, user_id):
        self.active_users += 1
        self.last_editor = user_id

    @method
    def snapshot(self, ctx):
        return (self.active_users, self.last_editor)


@shared_class
class Document:
    """Many pages; edits touch one section, reviews read one section."""

    sections = Array(size=2048, count=16, default=0)
    title = Attr(size=1024, default=0)
    revision = Attr(size=1024, default=0)

    @method
    def edit_section(self, ctx, index, content):
        self.sections[index] = content
        self.revision += 1

    @method
    def review(self, ctx, index):
        return self.sections[index]


def run_review(class_protocols, seed=8):
    cluster = Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed,
        class_protocols=class_protocols,
    ))
    presence = cluster.create(Presence)
    documents = [cluster.create(Document) for _ in range(4)]
    for step in range(60):
        node = cluster.nodes[step % 4]
        document = documents[step % 4]
        if step % 3 == 0:
            cluster.submit(presence, "check_in", step, node=node,
                           delay=step * 0.0002)
        elif step % 3 == 1:
            cluster.submit(document, "edit_section", step % 16, step,
                           node=node, delay=step * 0.0002)
        else:
            cluster.submit(presence, "snapshot", node=node,
                           delay=step * 0.0002)
            cluster.submit(document, "review", (step * 5) % 16, node=node,
                           delay=step * 0.0002)
    cluster.run()
    assert check_serializability(cluster).equivalent
    return cluster


def main() -> None:
    configurations = {
        "pure lotec": (),
        "pure rc": (("Presence", "rc"), ("Document", "rc")),
        "mixed (Presence on rc)": (("Presence", "rc"),),
    }
    print(f"{'configuration':>24}  {'data bytes':>11}  {'messages':>8}  "
          f"{'mean latency (us)':>17}")
    for label, mapping in configurations.items():
        cluster = run_review(mapping)
        stats = cluster.network_stats
        print(f"{label:>24}  {stats.consistency_bytes():>11,}  "
              f"{stats.total_messages:>8}  "
              f"{cluster.txn_stats.mean_latency * 1e6:>17.0f}")
    print("\nthe mixed configuration keeps LOTEC's lazy transfers for the"
          "\nbig documents while presence updates ride eager pushes")


if __name__ == "__main__":
    main()
