#!/usr/bin/env python
"""Distributed banking: the paper's transaction-processing motivation.

Section 2 argues transaction systems need throughput, not single-
transaction speed: "the available transactions need only be distributed
across the available processors".  This example runs a stream of
inter-branch transfers and audits over a cluster and compares how many
bytes each consistency protocol moves for the identical committed work
— then checks the run against the serial oracle.

Run:  python examples/bank_branches.py
"""

from repro import (
    Attr,
    Cluster,
    ClusterConfig,
    TransactionAborted,
    check_serializability,
    method,
    shared_class,
)


@shared_class
class Account:
    balance = Attr(size=1024, default=0)
    deposits = Attr(size=1024, default=0)
    withdrawals = Attr(size=1024, default=0)

    @method
    def open_with(self, ctx, amount):
        self.balance = amount

    @method
    def deposit(self, ctx, amount):
        self.balance += amount
        self.deposits += 1

    @method
    def withdraw(self, ctx, amount):
        if self.balance < amount:
            ctx.abort("insufficient-funds")
        self.balance -= amount
        self.withdrawals += 1

    @method
    def balance_of(self, ctx):
        return self.balance


@shared_class
class Branch:
    """A branch object groups accounts; its methods nest transactions."""

    transfers = Attr(size=512, default=0)
    volume = Attr(size=512, default=0)

    @method
    def transfer(self, ctx, source, target, amount):
        # Withdraw may abort (insufficient funds); the whole transfer
        # sub-tree then rolls back atomically.
        yield ctx.invoke(source, "withdraw", amount)
        yield ctx.invoke(target, "deposit", amount)
        self.transfers += 1
        self.volume += amount

    @method
    def audit(self, ctx, accounts):
        total = 0
        for account in accounts:
            total += yield ctx.invoke(account, "balance_of")
        return total


def run_bank(protocol: str, seed: int = 3):
    cluster = Cluster(ClusterConfig(num_nodes=4, protocol=protocol, seed=seed))
    branches = [cluster.create(Branch) for _ in range(2)]
    accounts = [cluster.create(Account) for _ in range(10)]
    for account in accounts:
        cluster.call(account, "open_with", 1000)

    tickets = []
    for index in range(40):
        branch = branches[index % 2]
        source = accounts[(7 * index) % len(accounts)]
        target = accounts[(7 * index + 3) % len(accounts)]
        amount = 50 + 10 * (index % 5)
        tickets.append(
            cluster.submit(branch, "transfer", source, target, amount,
                           delay=index * 0.0002)
        )
    cluster.run()
    rejected = 0
    for ticket in tickets:
        try:
            ticket.result()
        except TransactionAborted:
            rejected += 1
    total = cluster.call(branches[0], "audit", accounts)
    return cluster, total, rejected


def main() -> None:
    print(f"{'protocol':>8}  {'total':>6}  {'rejected':>8}  "
          f"{'data bytes':>11}  {'messages':>8}  serializable")
    for protocol in ("cotec", "otec", "lotec", "rc"):
        cluster, total, rejected = run_bank(protocol)
        assert total == 10 * 1000, "money must be conserved"
        report = check_serializability(cluster)
        stats = cluster.network_stats
        print(f"{protocol:>8}  {total:>6}  {rejected:>8}  "
              f"{stats.consistency_bytes():>11,}  {stats.total_messages:>8}  "
              f"{bool(report)}")


if __name__ == "__main__":
    main()
