"""repro.check — deterministic concurrency testing for the protocol.

Four pieces, layered on the :mod:`repro.obs` trace stream and the
:mod:`repro.sim.tiebreak` schedule-exploration hook:

* :mod:`repro.check.reference` — an executable nested-O2PL reference
  model (pure-python lock table with Moss retention/inheritance) that
  re-judges every grant in a trace against independently coded rules;
* :mod:`repro.check.invariants` — standalone trace invariant checkers
  (single-writer/multi-reader, retained-locks-only-to-descendants,
  page-version monotonicity, commit-order consistency, and heal-aware
  liveness);
* :mod:`repro.check.explorer` — one seed, one reproducible perturbed
  schedule: :class:`FuzzTask` / :func:`run_task` / :func:`minimize`;
* :mod:`repro.check.fuzz` — campaigns over seeds x protocols x fault
  presets with failure minimization and trace artifacts
  (the ``repro fuzz`` CLI).
"""

from repro.check.events import TxnRef, Violation, parse_object, parse_txn
from repro.check.explorer import (
    DEFAULT_POLICIES,
    FuzzReport,
    FuzzTask,
    minimize,
    repro_command,
    run_task,
)
from repro.check.fuzz import (
    ALL_PROTOCOLS,
    CampaignResult,
    Failure,
    run_campaign,
    trace_to_jsonl,
)
from repro.check.invariants import (
    check_commit_order,
    check_liveness,
    check_page_version_monotonic,
    check_retained_descendants,
    check_single_writer,
    run_invariants,
)
from repro.check.reference import ReferenceModel, check_reference_model

__all__ = [
    "ALL_PROTOCOLS",
    "CampaignResult",
    "DEFAULT_POLICIES",
    "Failure",
    "FuzzReport",
    "FuzzTask",
    "ReferenceModel",
    "TxnRef",
    "Violation",
    "check_commit_order",
    "check_liveness",
    "check_page_version_monotonic",
    "check_reference_model",
    "check_retained_descendants",
    "check_single_writer",
    "minimize",
    "parse_object",
    "parse_txn",
    "repro_command",
    "run_campaign",
    "run_invariants",
    "run_task",
    "trace_to_jsonl",
]
