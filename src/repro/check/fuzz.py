"""Fuzz campaigns: N seeds x protocols x fault presets.

:func:`run_campaign` enumerates :class:`~repro.check.explorer.FuzzTask`
combinations, executes each one under every oracle and checker, and on
failure shrinks the task (:func:`~repro.check.explorer.minimize`),
emits the one-line repro command, and dumps the failing trace as a
JSONL artifact — the race-detector workflow ``repro fuzz`` exposes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.check.explorer import (
    DEFAULT_POLICIES,
    FuzzReport,
    FuzzTask,
    minimize,
    repro_command,
    run_task,
)

ALL_PROTOCOLS = ("cotec", "otec", "lotec", "rc")


@dataclass
class Failure:
    """One failing task, minimized, with its artifacts."""

    report: FuzzReport
    minimized: FuzzTask
    command: str
    artifacts: List[str] = field(default_factory=list)


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    tasks_run: int = 0
    committed: int = 0
    failed_txns: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def trace_to_jsonl(trace: Sequence[dict]) -> str:
    """Serialize already-sanitized event dicts, one JSON object per
    line — the same format :func:`repro.obs.export.events_to_jsonl`
    produces from live events."""
    return "".join(
        json.dumps(event, sort_keys=True) + "\n" for event in trace
    )


def _write_failure_artifacts(out_dir: str, failure: Failure) -> None:
    task = failure.report.task
    stem = f"fail-{task.protocol}-seed{task.seed}"
    if task.preset:
        stem += f"-{task.preset}"
    base = os.path.join(out_dir, stem)
    os.makedirs(out_dir, exist_ok=True)
    trace_path = f"{base}.trace.jsonl"
    with open(trace_path, "w") as handle:
        handle.write(trace_to_jsonl(failure.report.trace))
    failure.artifacts.append(trace_path)
    report_path = f"{base}.txt"
    with open(report_path, "w") as handle:
        handle.write(f"task: {task.describe()}\n")
        handle.write(f"repro: {failure.command}\n\n")
        for line in failure.report.failure_summary():
            handle.write(line + "\n")
    failure.artifacts.append(report_path)


def run_campaign(
    seeds: int,
    seed_base: int = 0,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    presets: Sequence[Optional[str]] = (None,),
    policies: Sequence[str] = DEFAULT_POLICIES,
    scenario: str = "medium-high",
    scale: float = 0.25,
    nodes: int = 4,
    migration: bool = False,
    semantic: bool = False,
    mutate: Tuple[str, ...] = (),
    out_dir: Optional[str] = None,
    minimize_failures: bool = True,
    stop_on_failure: bool = False,
    progress: Optional[Callable[[FuzzReport], None]] = None,
) -> CampaignResult:
    """Run ``seeds`` x ``protocols`` x ``presets`` fuzz tasks.

    Each task's tie-break policy cycles deterministically through
    ``policies`` (keyed by the task counter), so a campaign mixes the
    random walk with every adversarial schedule.  Failures are
    minimized (unless disabled), given a one-line repro command, and —
    with ``out_dir`` set — dumped as ``*.trace.jsonl`` + ``*.txt``
    artifact pairs.
    """
    result = CampaignResult()
    counter = 0
    for seed in range(seed_base, seed_base + seeds):
        for protocol in protocols:
            for preset in presets:
                policy = policies[counter % len(policies)]
                counter += 1
                task = FuzzTask(
                    seed=seed, protocol=protocol, preset=preset,
                    policy=policy, scenario=scenario, scale=scale,
                    nodes=nodes, migration=migration, semantic=semantic,
                    mutate=mutate,
                )
                report = run_task(task)
                result.tasks_run += 1
                result.committed += report.committed
                result.failed_txns += report.failed
                if progress is not None:
                    progress(report)
                if report.ok:
                    continue
                minimized = (
                    minimize(task) if minimize_failures else task
                )
                failure = Failure(
                    report=report, minimized=minimized,
                    command=repro_command(minimized),
                )
                if out_dir is not None:
                    _write_failure_artifacts(out_dir, failure)
                result.failures.append(failure)
                if stop_on_failure:
                    return result
    return result
