"""An executable nested-O2PL reference model.

A pure-python re-implementation of the paper's lock table semantics
(Algorithms 4.1-4.4, Moss-style holding/retention) that *consumes the
trace stream* instead of sharing any code with the production lock
manager (:mod:`repro.txn.locks` / :mod:`repro.gdo.entry`).  Every
grant the implementation recorded is re-judged against independently
coded rules:

* **conflict rule** (rule 1b, §4.1): no other transaction outside the
  requester's ancestor chain may hold the lock in a conflicting mode;
* **retention rule** (rule 1a, Moss): every retainer of a
  *conflicting* mode must be the requester itself or one of its
  ancestors — a write request admits no foreign retainer at all, a
  read request is excluded only by foreign *write* retainers (read
  retentions are still shared).  The mode qualifier matters for trace
  replay: grants are recorded at message-delivery time, so a holder
  family may pre-commit (demoting its read hold to a read retention)
  between the home node's legal R-R grant decision and the grant's
  trace instant.  The implementation's ``decide()`` is stricter than
  this (it queues foreign families behind any retention); the model
  checks the paper's necessary condition, which a stricter
  implementation can never violate;
* **recursion preclusion** (§3.4): an ancestor *holding* (not merely
  retaining) the lock means the family would deadlock with itself;
  the ``allow_recursive_reads`` relaxation admits only the shared
  read-read case;
* **inheritance** (Algorithm 4.3): a pre-committing sub-transaction
  must move every lock it holds or retains to its parent, which
  retains them; a sub that reaches commit while the model still sees
  it holding locks has skipped retention;
* **release hygiene** (Algorithm 4.4): when a family's root ends, the
  family must be gone from every lock table entry.

Because the two implementations share nothing but the trace format,
agreement is strong evidence the production lock manager implements
the paper's rules — and any divergence is localized to one event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.check.events import (
    SemanticConflicts,
    Violation,
    TxnRef,
    base_mode,
    event_dicts,
    join_mode_strings,
    lineage_of,
    parse_object,
    parse_txn,
)


class ReferenceModel:
    """Replays a trace stream against the paper's locking rules."""

    def __init__(self, allow_recursive_reads: bool = False):
        self.allow_recursive_reads = allow_recursive_reads
        # Per object: transaction -> held / retained mode.
        self._holds: Dict[int, Dict[TxnRef, str]] = {}
        self._retains: Dict[int, Dict[TxnRef, str]] = {}
        # Conflict relation; plain single-writer until the stream's
        # honest lock.commtable artifacts register commuting pairs.
        self._conflicts = SemanticConflicts()
        self.violations: List[Violation] = []

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, events) -> List[Violation]:
        """Consume a trace stream; returns the violations found."""
        for index, event in enumerate(event_dicts(events)):
            self._apply(index, event)
        return self.violations

    def _apply(self, index: int, event: Dict) -> None:
        name = event.get("name", "")
        category = event.get("category", "")
        args = event.get("args", {})
        ts = event.get("ts", 0.0)
        if category == "lock":
            if name.startswith("lock.grant "):
                self._on_grant(index, ts, args, args.get("mode"))
            elif name.startswith("lock.wait ") and args.get("granted"):
                self._on_grant(index, ts, args, args.get("mode"))
            elif name.startswith("lock.prefetch ") and (
                args.get("outcome") == "granted"
            ):
                self._on_prefetch(index, ts, args)
            elif name == "lock.commtable":
                self._conflicts.add_table(args.get("table", {}))
            elif name == "lock.inherit":
                self._on_inherit(index, ts, args)
            elif name == "lock.release":
                self._on_release(args.get("root"), args.get("objects", ()))
        elif category == "txn" and event.get("phase") == "X":
            self._on_txn_end(index, ts, args)
        elif name.startswith("fault.crash_abort"):
            self._purge_family(args.get("root"))

    # ------------------------------------------------------------------
    # Grant judgement (the heart of the model)
    # ------------------------------------------------------------------

    def _on_grant(self, index: int, ts: float, args: Dict,
                  mode: Optional[str]) -> None:
        txn = parse_txn(args["txn"])
        obj = parse_object(args["object"])
        ancestors = set(lineage_of(args))
        holds = self._holds.setdefault(obj, {})
        retains = self._retains.setdefault(obj, {})
        mode = mode or "W"
        held = holds.get(txn)
        if held is not None:
            # Re-entrant: a grant the held mode already covers is free
            # (equal modes keep their semantic identity; W covers R).
            joined = join_mode_strings(held, mode)
            if joined == held:
                return
            # Upgrade: legal only while no other holder conflicts with
            # the joined mode (plain case: sole holder).
            others = [
                h for h, m in holds.items()
                if h != txn and self._conflicts.conflict(joined, m)
            ]
            if others:
                self.violations.append(Violation(
                    "reference.upgrade", index, ts,
                    f"{txn!r} upgraded {self._oname(obj)} {held}->{joined} "
                    f"while {sorted(map(repr, others))} still hold it in "
                    f"conflicting modes",
                ))
            holds[txn] = joined
            return
        for holder, holder_mode in sorted(holds.items()):
            if holder == txn:
                continue
            if holder.serial in ancestors:
                # §3.4: an ancestor holds the lock the sub now takes.
                # Recursion is judged on the plain base lattice —
                # commutativity never excuses self-deadlock.
                if ("W" in (base_mode(holder_mode), base_mode(mode))) or (
                    not self.allow_recursive_reads
                ):
                    self.violations.append(Violation(
                        "reference.recursion", index, ts,
                        f"{txn!r} granted {self._oname(obj)} ({mode}) while "
                        f"ancestor {holder!r} holds it ({holder_mode}) — "
                        f"§3.4 precludes recursive invocation",
                    ))
            elif self._conflicts.conflict(holder_mode, mode):
                self.violations.append(Violation(
                    "reference.conflict", index, ts,
                    f"{txn!r} granted {self._oname(obj)} ({mode}) while "
                    f"{holder!r} holds it in conflicting mode "
                    f"({holder_mode})",
                ))
        for retainer, retained_mode in sorted(retains.items()):
            if retainer == txn or retainer.serial in ancestors:
                continue  # Moss: the retainer and its descendants may enter
            if not self._conflicts.conflict(retained_mode, mode):
                # Read retention does not exclude foreign readers, and
                # a retained semantic mode does not exclude commuting
                # foreign invocations.
                continue
            self.violations.append(Violation(
                "reference.retention", index, ts,
                f"{txn!r} granted {self._oname(obj)} ({mode}) while "
                f"{retainer!r} retains it ({retained_mode}) and is not "
                f"an ancestor of the requester",
            ))
        holds[txn] = mode

    def _on_prefetch(self, index: int, ts: float, args: Dict) -> None:
        # A granted prefetch is a grant immediately demoted to retained
        # (repro.txn.locks.try_prefetch): judge it like any grant, then
        # record the retention instead of a hold.
        txn = parse_txn(args["txn"])
        obj = parse_object(args["object"])
        mode = args.get("mode") or "W"
        self._on_grant(index, ts, args, mode)
        holds = self._holds.setdefault(obj, {})
        retains = self._retains.setdefault(obj, {})
        holds.pop(txn, None)
        existing = retains.get(txn)
        retains[txn] = mode if existing is None else join_mode_strings(
            existing, mode
        )

    # ------------------------------------------------------------------
    # Inheritance and release
    # ------------------------------------------------------------------

    def _on_inherit(self, index: int, ts: float, args: Dict) -> None:
        txn = parse_txn(args["txn"])
        parent = parse_txn(args["parent"])
        for name in args.get("objects", ()):
            obj = parse_object(name)
            holds = self._holds.setdefault(obj, {})
            retains = self._retains.setdefault(obj, {})
            moved: List[str] = []
            held = holds.pop(txn, None)
            if held is not None:
                moved.append(held)
            retained = retains.pop(txn, None)
            if retained is not None:
                moved.append(retained)
            if not moved:
                self.violations.append(Violation(
                    "reference.inherit", index, ts,
                    f"{parent!r} inherited {self._oname(obj)} from "
                    f"{txn!r}, which neither holds nor retains it",
                ))
                continue
            mode = moved[0]
            for extra in moved[1:]:
                mode = join_mode_strings(mode, extra)
            # The parent *retains* the inherited lock (Algorithm 4.3);
            # a lock it also holds in its own right stays held.  Equal
            # semantic modes keep their tag through retention — that is
            # what lets commuting foreign invocations keep flowing.
            existing = retains.get(parent)
            retains[parent] = mode if existing is None else (
                join_mode_strings(existing, mode)
            )

    def _on_release(self, root: Optional[int], objects) -> None:
        # Global release of a family on the listed objects.  Removing a
        # family that is already gone is a no-op by design: after a
        # crash, the directory reclaimed the entries before the root's
        # own abort release ran.
        if root is None:
            return
        for name in objects:
            obj = parse_object(name)
            self._drop_family(self._holds.get(obj, {}), root)
            self._drop_family(self._retains.get(obj, {}), root)

    def _on_txn_end(self, index: int, ts: float, args: Dict) -> None:
        txn = parse_txn(args["txn"])
        outcome = args.get("outcome")
        if txn.is_root:
            # Algorithm 4.4: by the time the root's span closes, its
            # release processing has run — the family must be gone.
            leaked = sorted(
                self._oname(obj)
                for obj, table in self._holds.items()
                for holder in table
                if holder.root == txn.root
            ) + sorted(
                self._oname(obj)
                for obj, table in self._retains.items()
                for retainer in table
                if retainer.root == txn.root
            )
            if leaked:
                self.violations.append(Violation(
                    "reference.release", index, ts,
                    f"family of {txn!r} ended ({outcome}) still "
                    f"holding/retaining {leaked}",
                ))
            self._purge_family(txn.root)
            return
        if outcome == "abort":
            # Sub abort (Algorithm 4.3 last case): the sub's own locks
            # vanish; ancestor retention is untouched.
            for table in self._holds.values():
                table.pop(txn, None)
            for table in self._retains.values():
                table.pop(txn, None)
            return
        if outcome == "commit":
            # Pre-commit ran before this span closed: a sub must have
            # moved everything to its parent (lock.inherit).
            stuck = sorted(
                self._oname(obj)
                for obj, table in self._holds.items()
                if txn in table
            ) + sorted(
                self._oname(obj)
                for obj, table in self._retains.items()
                if txn in table
            )
            if stuck:
                self.violations.append(Violation(
                    "reference.inherit", index, ts,
                    f"sub-transaction {txn!r} committed without "
                    f"releasing {stuck} to its parent "
                    f"(lock retention skipped?)",
                ))
                for table in self._holds.values():
                    table.pop(txn, None)
                for table in self._retains.values():
                    table.pop(txn, None)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _oname(obj: int) -> str:
        return f"O{obj}"

    @staticmethod
    def _drop_family(table: Dict[TxnRef, str], root: int) -> None:
        for ref in [ref for ref in table if ref.root == root]:
            del table[ref]

    def _purge_family(self, root: Optional[int]) -> None:
        if root is None:
            return
        for table in self._holds.values():
            self._drop_family(table, root)
        for table in self._retains.values():
            self._drop_family(table, root)

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    def holders(self, obj: int) -> Dict[TxnRef, str]:
        return dict(self._holds.get(obj, {}))

    def retainers(self, obj: int) -> Dict[TxnRef, str]:
        return dict(self._retains.get(obj, {}))


def check_reference_model(events,
                          allow_recursive_reads: bool = False
                          ) -> List[Violation]:
    """Run the nested-O2PL reference model over a trace stream."""
    return ReferenceModel(allow_recursive_reads).run(events)
