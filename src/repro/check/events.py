"""Shared vocabulary for trace-stream checkers.

The :mod:`repro.obs` tracer sanitizes every event to JSON primitives:
transaction ids become ``"T5"`` / ``"T5/r3"``, object ids ``"O3"``,
node ids ``"N0"``.  The checkers in this package consume either live
:class:`~repro.obs.tracer.TraceEvent` objects or the dicts round-tripped
through JSONL, so this module provides the tiny parsing layer both
representations share, plus the :class:`Violation` record every checker
emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

MODE_READ = "R"
MODE_WRITE = "W"


def modes_conflict(left: str, right: str) -> bool:
    """Multiple readers / single writer, on sanitized mode strings."""
    return left == MODE_WRITE or right == MODE_WRITE


def strongest_mode(left: str, right: str) -> str:
    return MODE_WRITE if MODE_WRITE in (left, right) else MODE_READ


@dataclass(frozen=True, order=True)
class TxnRef:
    """A sanitized transaction id: serial plus family root serial."""

    serial: int
    root: int

    @property
    def is_root(self) -> bool:
        return self.serial == self.root

    def __repr__(self) -> str:
        if self.is_root:
            return f"T{self.serial}"
        return f"T{self.serial}/r{self.root}"


def parse_txn(text: str) -> TxnRef:
    """Parse the sanitized ``repr`` of a TxnId (``T5`` or ``T5/r3``)."""
    body = text[1:]
    serial, _, root = body.partition("/r")
    return TxnRef(int(serial), int(root) if root else int(serial))


def parse_object(text: str) -> int:
    """Parse the sanitized ``repr`` of an ObjectId (``O3``)."""
    return int(text[1:])


def event_dicts(events: Iterable) -> List[Dict]:
    """Normalize a trace stream to plain dicts (JSONL-shaped)."""
    out = []
    for event in events:
        out.append(event.to_dict() if hasattr(event, "to_dict") else event)
    return out


@dataclass(frozen=True)
class Violation:
    """One protocol-rule or invariant breach found in a trace."""

    checker: str
    index: int          # position in the event stream
    ts: float           # virtual time of the offending event
    message: str

    def __str__(self) -> str:
        return (f"[{self.checker}] event #{self.index} @t={self.ts:.6f}: "
                f"{self.message}")


def lineage_of(args: Dict) -> Tuple[int, ...]:
    """Ancestor serials recorded on the event (parent first, root last)."""
    return tuple(args.get("lineage") or ())
