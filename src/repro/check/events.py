"""Shared vocabulary for trace-stream checkers.

The :mod:`repro.obs` tracer sanitizes every event to JSON primitives:
transaction ids become ``"T5"`` / ``"T5/r3"``, object ids ``"O3"``,
node ids ``"N0"``.  The checkers in this package consume either live
:class:`~repro.obs.tracer.TraceEvent` objects or the dicts round-tripped
through JSONL, so this module provides the tiny parsing layer both
representations share, plus the :class:`Violation` record every checker
emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

MODE_READ = "R"
MODE_WRITE = "W"


def modes_conflict(left: str, right: str) -> bool:
    """Multiple readers / single writer, on *plain* sanitized mode
    strings.  Semantic modes (``"W+Class.method"``) need a
    :class:`SemanticConflicts` relation — this helper treats them as
    opaque non-``"W"`` strings and would under-report conflicts."""
    return left == MODE_WRITE or right == MODE_WRITE


def split_mode(mode: str):
    """``"W+Account.deposit"`` -> ``("W", "Account.deposit")``;
    a plain ``"R"``/``"W"`` yields ``(mode, None)``."""
    base, sep, tag = mode.partition("+")
    return base, (tag if sep else None)


def base_mode(mode: str) -> str:
    """The plain R/W lattice element under a sanitized mode string."""
    return split_mode(mode)[0]


def strongest_mode(left: str, right: str) -> str:
    return MODE_WRITE if MODE_WRITE in (left, right) else MODE_READ


def join_mode_strings(left: str, right: str) -> str:
    """Mode a holder records after a re-entrant grant (mirrors
    ``repro.gdo.entry._join``): equal modes keep their identity —
    including a semantic tag — anything else collapses to the plain
    base join."""
    if left == right:
        return left
    if base_mode(left) == MODE_WRITE or base_mode(right) == MODE_WRITE:
        return MODE_WRITE
    return MODE_READ


class SemanticConflicts:
    """Conflict relation over sanitized mode strings.

    Rebuilt from the honest ``lock.commtable`` trace artifacts the
    cluster emits at table registration — *not* from the production
    lock manager's in-memory tables, which a test mutation may have
    corrupted.  Two semantic modes of the same class commute iff the
    artifact lists their method pair; every other combination falls
    back to the plain single-writer rule on the base modes.
    """

    def __init__(self) -> None:
        self._commutes: Dict[str, frozenset] = {}

    def add_table(self, payload: Dict) -> None:
        name = payload.get("class")
        if not name:
            return
        pairs = set()
        for left, right in payload.get("commutes", ()):
            pairs.add((left, right))
            pairs.add((right, left))
        self._commutes[name] = frozenset(pairs)

    @classmethod
    def from_events(cls, events) -> "SemanticConflicts":
        """Pre-scan a trace stream for every ``lock.commtable`` event."""
        relation = cls()
        for event in event_dicts(events):
            if event.get("name") == "lock.commtable":
                relation.add_table(event.get("args", {}).get("table", {}))
        return relation

    def conflict(self, left: str, right: str) -> bool:
        left_base, left_tag = split_mode(left)
        right_base, right_tag = split_mode(right)
        if left_tag is not None and right_tag is not None:
            left_cls, _, left_method = left_tag.partition(".")
            right_cls, _, right_method = right_tag.partition(".")
            if left_cls == right_cls and (
                (left_method, right_method) in self._commutes.get(
                    left_cls, ()
                )
            ):
                return False
        return left_base == MODE_WRITE or right_base == MODE_WRITE


@dataclass(frozen=True, order=True)
class TxnRef:
    """A sanitized transaction id: serial plus family root serial."""

    serial: int
    root: int

    @property
    def is_root(self) -> bool:
        return self.serial == self.root

    def __repr__(self) -> str:
        if self.is_root:
            return f"T{self.serial}"
        return f"T{self.serial}/r{self.root}"


def parse_txn(text: str) -> TxnRef:
    """Parse the sanitized ``repr`` of a TxnId (``T5`` or ``T5/r3``)."""
    body = text[1:]
    serial, _, root = body.partition("/r")
    return TxnRef(int(serial), int(root) if root else int(serial))


def parse_object(text: str) -> int:
    """Parse the sanitized ``repr`` of an ObjectId (``O3``)."""
    return int(text[1:])


def event_dicts(events: Iterable) -> List[Dict]:
    """Normalize a trace stream to plain dicts (JSONL-shaped)."""
    out = []
    for event in events:
        out.append(event.to_dict() if hasattr(event, "to_dict") else event)
    return out


@dataclass(frozen=True)
class Violation:
    """One protocol-rule or invariant breach found in a trace."""

    checker: str
    index: int          # position in the event stream
    ts: float           # virtual time of the offending event
    message: str

    def __str__(self) -> str:
        return (f"[{self.checker}] event #{self.index} @t={self.ts:.6f}: "
                f"{self.message}")


def lineage_of(args: Dict) -> Tuple[int, ...]:
    """Ancestor serials recorded on the event (parent first, root last)."""
    return tuple(args.get("lineage") or ())
