"""Trace invariant checkers.

Each checker is a small, independent pass over the sanitized trace
stream; none shares state with the others or with the reference model
(:mod:`repro.check.reference`), so a bug has to fool several disjoint
re-implementations of the paper's rules to slip through:

* :func:`check_single_writer` — at most one family per object when any
  present family holds or retains a WRITE lock (multiple readers /
  single writer at family granularity);
* :func:`check_retained_descendants` — a retained lock admits, in a
  conflicting mode, only the retainer itself and its descendants
  (Moss retention; read retentions still share with foreign readers);
* :func:`check_page_version_monotonic` — page installs never regress a
  page's version (the GDO page map always points at the most
  up-to-date copy, so a gather shipping an older version than one
  already seen means a stale page map);
* :func:`check_commit_order` — conflicting grant order must agree with
  root commit order (strictness: under strict O2PL the earlier
  conflicting accessor commits first);
* :func:`check_liveness` — every started family eventually commits or
  aborts, *provided the trace's faults all healed*: a crash without a
  recovery or a partition without a heal excuses stuck families
  (progress is not required of a half-broken cluster), which is why
  the checker must be heal-aware rather than simply demanding
  termination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.check.events import (
    SemanticConflicts,
    Violation,
    TxnRef,
    event_dicts,
    join_mode_strings,
    lineage_of,
    parse_object,
    parse_txn,
)


def _joined(existing: Optional[str], mode: str) -> str:
    """Fold a grant into a tracked mode, keeping semantic identity on
    equal modes (plain runs see exactly the old strongest-mode fold)."""
    return mode if existing is None else join_mode_strings(existing, mode)

#: Grant-shaped lock events: (name prefix, grant predicate).
def _iter_grants(events):
    """Yield ``(index, ts, args, mode)`` for every grant in the stream:
    immediate grants, granted waits, and granted prefetches."""
    for index, event in enumerate(events):
        if event.get("category") != "lock":
            continue
        name = event.get("name", "")
        args = event.get("args", {})
        if name.startswith("lock.grant "):
            yield index, event.get("ts", 0.0), args, args.get("mode")
        elif name.startswith("lock.wait ") and args.get("granted"):
            yield index, event.get("ts", 0.0), args, args.get("mode")
        elif name.startswith("lock.prefetch ") and (
            args.get("outcome") == "granted"
        ):
            yield index, event.get("ts", 0.0), args, args.get("mode") or "W"


def check_single_writer(events) -> List[Violation]:
    """Family-granularity single-writer / multi-reader exclusion."""
    events = event_dicts(events)
    violations: List[Violation] = []
    conflicts = SemanticConflicts.from_events(events)
    # Per object: family root -> strongest mode present (held/retained).
    present: Dict[int, Dict[int, str]] = {}
    grants = {index: (ts, args, mode)
              for index, ts, args, mode in _iter_grants(events)}
    for index, event in enumerate(events):
        name = event.get("name", "")
        args = event.get("args", {})
        if index in grants:
            ts, args, mode = grants[index]
            mode = mode or "W"
            txn = parse_txn(args["txn"])
            obj = parse_object(args["object"])
            families = present.setdefault(obj, {})
            for other, other_mode in sorted(families.items()):
                if other == txn.root:
                    continue
                if conflicts.conflict(other_mode, mode):
                    violations.append(Violation(
                        "invariant.single-writer", index, ts,
                        f"O{obj}: family {txn.root} granted {mode} while "
                        f"family {other} is present with {other_mode}",
                    ))
            families[txn.root] = _joined(families.get(txn.root), mode)
        elif name == "lock.release":
            root = args.get("root")
            for oname in args.get("objects", ()):
                present.get(parse_object(oname), {}).pop(root, None)
        elif name.startswith("fault.crash_abort"):
            root = args.get("root")
            for families in present.values():
                families.pop(root, None)
    return violations


def check_retained_descendants(events) -> List[Violation]:
    """Retained locks admit only compatible strangers (Moss rule 1a).

    A *write* retention admits nobody outside the retainer's
    descendants; a *read* retention still shares with foreign readers.
    The mode qualifier is load-bearing for trace replay: grants are
    recorded at delivery time, so a legally admitted foreign reader
    can appear in the trace just after the read-holding family
    pre-committed its hold into a read retention.  Held modes are
    therefore tracked alongside retentions, so inheritance moves the
    *actual* strongest mode up the tree instead of assuming WRITE.
    """
    events = event_dicts(events)
    violations: List[Violation] = []
    conflicts = SemanticConflicts.from_events(events)
    # Per object: transaction -> held / retained mode.
    holds: Dict[int, Dict[TxnRef, str]] = {}
    retains: Dict[int, Dict[TxnRef, str]] = {}

    def drop_family(root, objects=None):
        tables = [holds, retains] if objects is None else [
            {obj: table.get(obj, {})}
            for table in (holds, retains) for obj in objects
        ]
        for per_object in tables:
            for table in per_object.values():
                for ref in [r for r in table if r.root == root]:
                    del table[ref]

    for index, event in enumerate(events):
        name = event.get("name", "")
        category = event.get("category", "")
        args = event.get("args", {})
        ts = event.get("ts", 0.0)
        if category == "lock":
            grant_mode: Optional[str] = None
            if name.startswith("lock.grant "):
                grant_mode = args.get("mode")
            elif name.startswith("lock.wait ") and args.get("granted"):
                grant_mode = args.get("mode")
            elif name.startswith("lock.prefetch ") and (
                args.get("outcome") == "granted"
            ):
                grant_mode = args.get("mode") or "W"
            if grant_mode is not None:
                txn = parse_txn(args["txn"])
                obj = parse_object(args["object"])
                ancestors = set(lineage_of(args))
                for retainer, retained_mode in sorted(
                    retains.get(obj, {}).items()
                ):
                    if retainer == txn or retainer.serial in ancestors:
                        continue
                    if not conflicts.conflict(retained_mode, grant_mode):
                        continue
                    violations.append(Violation(
                        "invariant.retained-descendants", index, ts,
                        f"O{obj}: {txn!r} admitted ({grant_mode}) while "
                        f"{retainer!r} retains the lock "
                        f"({retained_mode}) and is not an ancestor",
                    ))
                if name.startswith("lock.prefetch "):
                    table = retains.setdefault(obj, {})
                    table[txn] = _joined(table.get(txn), grant_mode)
                else:
                    table = holds.setdefault(obj, {})
                    table[txn] = _joined(table.get(txn), grant_mode)
            elif name == "lock.inherit":
                txn = parse_txn(args["txn"])
                parent = parse_txn(args["parent"])
                for oname in args.get("objects", ()):
                    obj = parse_object(oname)
                    held = holds.setdefault(obj, {}).pop(txn, None)
                    table = retains.setdefault(obj, {})
                    retained = table.pop(txn, None)
                    moved = [m for m in (held, retained) if m is not None]
                    if moved:
                        mode = moved[0]
                        for extra in moved[1:]:
                            mode = join_mode_strings(mode, extra)
                    else:
                        mode = "R"
                    table[parent] = _joined(table.get(parent), mode)
            elif name == "lock.release":
                drop_family(args.get("root"),
                            [parse_object(o)
                             for o in args.get("objects", ())])
        elif category == "txn" and event.get("phase") == "X":
            txn = parse_txn(args["txn"])
            if not txn.is_root and args.get("outcome") == "abort":
                for table in list(holds.values()) + list(retains.values()):
                    table.pop(txn, None)
            elif txn.is_root:
                drop_family(txn.root)
        elif name.startswith("fault.crash_abort"):
            drop_family(args.get("root"))
    return violations


def check_page_version_monotonic(events) -> List[Violation]:
    """Installed page versions never regress (no stale installs).

    Strict O2PL quiesces an object's writers while it is being read or
    shipped, so across the whole cluster the version installed for one
    ``(object, page)`` can only grow: a regression means the page map
    pointed a gather at a stale owner.
    """
    events = event_dicts(events)
    violations: List[Violation] = []
    seen: Dict[Tuple[str, str], int] = {}
    install_names = ("transfer.install", "transfer.demand", "transfer.push")
    for index, event in enumerate(events):
        name = event.get("name", "")
        if not name.startswith(install_names):
            continue
        args = event.get("args", {})
        versions = args.get("versions") or {}
        obj = args.get("object")
        for page, version in sorted(versions.items()):
            key = (obj, str(page))
            prior = seen.get(key)
            if prior is not None and version < prior:
                violations.append(Violation(
                    "invariant.page-version", index, event.get("ts", 0.0),
                    f"{obj} page {page}: installed version {version} after "
                    f"version {prior} was already current (stale page map)",
                ))
            else:
                seen[key] = version
    return violations


def check_commit_order(events) -> List[Violation]:
    """Conflicting grant order must agree with root commit order.

    Strict O2PL holds every lock to root commit/abort, so if committed
    family A was granted a conflicting lock on an object before
    committed family B, then A must commit before B.
    """
    events = event_dicts(events)
    violations: List[Violation] = []
    conflicts = SemanticConflicts.from_events(events)
    commit_pos: Dict[int, int] = {}
    for index, event in enumerate(events):
        if event.get("category") != "txn" or event.get("phase") != "X":
            continue
        args = event.get("args", {})
        txn = parse_txn(args["txn"])
        if txn.is_root and args.get("outcome") == "commit":
            commit_pos[txn.root] = index
    # Per object, the committed families' grants in trace order.
    grants_by_object: Dict[int, List[Tuple[int, int, str, float]]] = {}
    for index, ts, args, mode in _iter_grants(events):
        txn = parse_txn(args["txn"])
        if txn.root not in commit_pos:
            continue
        obj = parse_object(args["object"])
        grants_by_object.setdefault(obj, []).append(
            (index, txn.root, mode or "W", ts)
        )
    for obj, grants in sorted(grants_by_object.items()):
        for position, (index, root, mode, ts) in enumerate(grants):
            for _, earlier_root, earlier_mode, _ in grants[:position]:
                if earlier_root == root:
                    continue
                if not conflicts.conflict(earlier_mode, mode):
                    continue
                if commit_pos[earlier_root] > commit_pos[root]:
                    violations.append(Violation(
                        "invariant.commit-order", index, ts,
                        f"O{obj}: family {earlier_root} conflicted before "
                        f"family {root} but committed after it",
                    ))
    return violations


def check_liveness(events) -> List[Violation]:
    """Every started family terminates once all faults heal.

    Families are identified by the ``txn.start`` instant their root
    emits at begin time (spans are only recorded at their *end*, so an
    interrupted family leaves no span — the instant is the only
    start-of-family evidence).  Termination is the root's commit/abort
    span or a ``fault.crash_abort``.

    Heal-awareness is the whole point: a family stuck behind a node
    that never recovered, or a partition that never healed, is the
    *expected* behaviour of a fail-stop system, not a protocol bug.
    Only when every crash has its recovery and every partition its
    heal does an unterminated family become a violation — that is
    exactly the signature of a ghost holder resurrected from a stale
    durable record (the ``skip-rejoin-invalidation`` mutation).
    """
    events = event_dicts(events)
    violations: List[Violation] = []
    started: Dict[int, Tuple[int, float]] = {}
    terminated: set = set()
    down_nodes: Dict[int, int] = {}  # node -> open crash windows
    open_partitions = 0
    for index, event in enumerate(events):
        name = event.get("name", "")
        args = event.get("args", {})
        if name.startswith("txn.start "):
            root = args.get("root")
            if root is not None and root not in started:
                started[root] = (index, event.get("ts", 0.0))
        elif event.get("category") == "txn" and event.get("phase") == "X":
            txn = parse_txn(args["txn"])
            if txn.is_root:
                terminated.add(txn.root)
        elif name.startswith("fault.crash_abort"):
            terminated.add(args.get("root"))
        elif name.startswith("fault.node_crash"):
            node = args.get("crashed_node")
            down_nodes[node] = down_nodes.get(node, 0) + 1
        elif name.startswith("fault.node_recover"):
            node = args.get("recovered_node")
            down_nodes[node] = down_nodes.get(node, 0) - 1
        elif name.startswith("fault.partition_heal"):
            open_partitions -= 1
        elif name.startswith("fault.partition "):
            open_partitions += 1
    unhealed = open_partitions > 0 or any(
        count > 0 for count in down_nodes.values()
    )
    if unhealed:
        return violations  # stuck families are excused mid-outage
    for root, (index, ts) in sorted(started.items()):
        if root in terminated:
            continue
        violations.append(Violation(
            "invariant.liveness", index, ts,
            f"family {root} started but never committed or aborted, "
            f"with every planned fault healed by trace end",
        ))
    return violations


def run_invariants(events) -> List[Violation]:
    """Run every invariant checker; violations in checker order."""
    events = event_dicts(events)
    violations: List[Violation] = []
    violations.extend(check_single_writer(events))
    violations.extend(check_retained_descendants(events))
    violations.extend(check_page_version_monotonic(events))
    violations.extend(check_commit_order(events))
    violations.extend(check_liveness(events))
    return violations
