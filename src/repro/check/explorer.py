"""The schedule explorer: one fuzz task = one reproducible run.

A :class:`FuzzTask` fully determines an execution — workload seed,
protocol, fault preset, tie-break policy, scenario, scale, node count,
and any test-only protocol mutations.  :func:`run_task` executes it
with tracing on and judges the result with every oracle this repo has:

* the serial-replay serializability oracle and the precedence-graph
  oracle (:mod:`repro.runtime.verify`),
* the nested-O2PL reference model (:mod:`repro.check.reference`),
* the trace invariant checkers (:mod:`repro.check.invariants`).

Identical tasks produce byte-identical traces (everything derives from
the seed and the deterministic simulation), which is what makes the
one-line repro command :func:`repro_command` emits trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.check.events import Violation, event_dicts
from repro.check.invariants import run_invariants
from repro.check.reference import check_reference_model
from repro.faults.plan import FAULT_PRESETS
from repro.gdo.migration import MigrationConfig
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.verify import (
    check_conflict_serializability,
    check_serializability,
)
from repro.util.errors import ConfigurationError, ReproError
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

#: Tie-break policies a default fuzz campaign cycles through: the
#: random walk for breadth plus every adversarial policy.
DEFAULT_POLICIES = (
    "random", "writer-first", "reader-first", "lifo", "starve-node",
)


@dataclass(frozen=True)
class FuzzTask:
    """One fully determined fuzzing execution."""

    seed: int
    protocol: str = "lotec"
    preset: Optional[str] = None      # FAULT_PRESETS key, or None
    policy: str = "random"            # repro.sim.tiebreak spec
    scenario: str = "medium-high"
    scale: float = 0.25
    nodes: int = 4
    migration: bool = False           # adaptive GDO home migration
    semantic: bool = False            # commutativity-based lock modes
    mutate: Tuple[str, ...] = ()      # test-only LockManager mutations

    def describe(self) -> str:
        parts = [
            f"seed={self.seed}", self.protocol,
            f"preset={self.preset or 'none'}", f"policy={self.policy}",
            self.scenario, f"scale={self.scale}", f"nodes={self.nodes}",
        ]
        if self.migration:
            parts.append("migration")
        if self.semantic:
            parts.append("semantic")
        if self.mutate:
            parts.append(f"mutate={','.join(self.mutate)}")
        return " ".join(parts)


@dataclass
class FuzzReport:
    """Everything :func:`run_task` learned about one task."""

    task: FuzzTask
    committed: int = 0
    failed: int = 0
    serializable: bool = True
    conflict_serializable: bool = True
    violations: List[Violation] = field(default_factory=list)
    error: Optional[str] = None       # unexpected runtime exception
    oracle_detail: List[str] = field(default_factory=list)
    trace: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.serializable and self.conflict_serializable
                and not self.violations and self.error is None)

    def failure_summary(self) -> List[str]:
        lines: List[str] = []
        if self.error is not None:
            lines.append(f"runtime error: {self.error}")
        if not self.serializable:
            lines.append("serial-replay oracle: NOT equivalent")
        if not self.conflict_serializable:
            lines.append("precedence-graph oracle: cycle")
        lines.extend(self.oracle_detail)
        lines.extend(str(violation) for violation in self.violations)
        return lines


def build_config(task: FuzzTask) -> ClusterConfig:
    if task.preset is not None and task.preset not in FAULT_PRESETS:
        raise ConfigurationError(
            f"unknown fault preset {task.preset!r}; "
            f"known: {sorted(FAULT_PRESETS)}"
        )
    if task.scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {task.scenario!r}; known: {sorted(SCENARIOS)}"
        )
    return ClusterConfig(
        num_nodes=task.nodes, protocol=task.protocol, seed=task.seed,
        audit_accesses=False, trace=True, tiebreak=task.policy,
        faults=FAULT_PRESETS[task.preset] if task.preset else None,
        # Default policy knobs: eager enough to actually migrate at
        # fuzz scale, so the checkers exercise moved entries.
        migration=MigrationConfig() if task.migration else None,
        semantic_locks=task.semantic,
    )


def run_task(task: FuzzTask, keep_trace: bool = False) -> FuzzReport:
    """Execute one task and judge it with every checker.

    ``keep_trace`` attaches the sanitized trace-event dicts to the
    report (for artifact dumps and byte-identity tests).
    """
    report = FuzzReport(task=task)
    config = build_config(task)
    params = SCENARIOS[task.scenario].scaled(task.scale)
    workload = generate_workload(params, seed=task.seed)
    cluster = Cluster(config)
    if task.mutate:
        cluster.lockmgr.test_mutations = frozenset(task.mutate)
    try:
        run = run_workload(cluster, workload)
        report.committed = run.committed
        report.failed = run.failed
    except ReproError as exc:
        # The workload runner tolerates transaction aborts; anything
        # escaping it is a protocol-level failure the fuzzer caught.
        # A run that ends with families still in flight (the liveness
        # failure mode: quiescence with untriggered processes) lands
        # here too — so the invariant checkers still get to judge the
        # partial trace.  The state oracles are skipped: the cluster is
        # not in a judgeable end state.
        report.error = f"{type(exc).__name__}: {exc}"
        report.trace = event_dicts(cluster.trace_events)
        report.violations.extend(run_invariants(report.trace))
        return report
    events = event_dicts(cluster.trace_events)
    if keep_trace:
        report.trace = events
    try:
        serial = check_serializability(cluster)
        report.serializable = serial.equivalent
        report.oracle_detail.extend(
            serial.state_mismatches + serial.result_mismatches
        )
    except ReproError as exc:
        # e.g. divergent page owners while digesting state: the run is
        # internally inconsistent — count it as an oracle failure.
        report.serializable = False
        report.oracle_detail.append(
            f"oracle error: {type(exc).__name__}: {exc}"
        )
    conflict = check_conflict_serializability(cluster)
    report.conflict_serializable = conflict.equivalent
    report.oracle_detail.extend(
        line for line in conflict.state_mismatches
        if not conflict.equivalent
    )
    report.violations.extend(check_reference_model(
        events, allow_recursive_reads=config.allow_recursive_reads
    ))
    report.violations.extend(run_invariants(events))
    if not report.ok and not report.trace:
        report.trace = events
    return report


def repro_command(task: FuzzTask) -> str:
    """The one-liner that re-runs exactly this task."""
    parts = [
        "repro fuzz --seeds 1", f"--seed-base {task.seed}",
        f"--protocols {task.protocol}",
        f"--presets {task.preset or 'none'}",
        f"--policies {task.policy}",
        f"--scenario {task.scenario}", f"--scale {task.scale}",
        f"--nodes {task.nodes}",
    ]
    if task.migration:
        parts.append("--migration")
    if task.semantic:
        parts.append("--semantic")
    if task.mutate:
        parts.append(f"--mutate {','.join(task.mutate)}")
    return " ".join(parts)


def minimize(task: FuzzTask, max_attempts: int = 8) -> FuzzTask:
    """Greedily shrink a failing task while it keeps failing.

    Tries, in order: dropping the fault preset, reverting the tie-break
    policy to plain FIFO, and halving the workload scale (twice).  Each
    candidate reduction is re-executed (bounded by ``max_attempts``)
    and kept only if the failure survives — so the returned task is
    always a genuinely failing task, at most as big as the input.
    """
    current = task
    attempts = 0

    def still_fails(candidate: FuzzTask) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return not run_task(candidate).ok

    for build in (
        lambda t: replace(t, preset=None) if t.preset else None,
        lambda t: replace(t, migration=False) if t.migration else None,
        lambda t: replace(t, policy="fifo") if t.policy != "fifo" else None,
        lambda t: replace(t, scale=round(t.scale / 2, 4))
        if t.scale > 0.06 else None,
        lambda t: replace(t, scale=round(t.scale / 2, 4))
        if t.scale > 0.06 else None,
    ):
        candidate = build(current)
        if candidate is None:
            continue
        if still_fails(candidate):
            current = candidate
    return current
