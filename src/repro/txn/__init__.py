"""Nested object transactions and nested object 2PL (O2PL).

:mod:`repro.txn.transaction` models the transaction tree of §3 (every
method invocation is a [sub-]transaction; families are rooted at user
invocations) and the per-transaction state the algorithms need: undo
log, dirtied pages, and the set of objects whose locks the transaction
holds or retains.

:mod:`repro.txn.locks` is the lock manager — the executable form of
Algorithms 4.1-4.4, charging GDO messages on the simulated network and
cooperating with the deadlock detector.
"""

from repro.txn.transaction import Transaction, TxnState, TxnStats
from repro.txn.locks import LockManager

__all__ = ["Transaction", "TxnState", "TxnStats", "LockManager"]
