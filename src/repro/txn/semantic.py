"""Semantic lock modes and commutative-increment merging.

A :class:`SemanticMode` decorates the plain R/W lattice with the
invoking method's identity: ``W+Account.deposit`` is a write lock that
conflicts only with modes the class's commutativity table says do not
commute with ``deposit``.  Everything that stores or compares lock
modes keeps working on the plain lattice via the ``base`` attribute
(``getattr(mode, "base", mode)`` degrades a plain ``LockMode``
gracefully), and the trace serializer renders the mode as
``"<base>+<Class>.<method>"`` so the post-hoc checkers can re-judge
every semantic grant against the table.

:class:`IncrementMerger` makes concurrently granted blind increments
*correct*, not just permitted.  Tracked increment writes are
**store-virtual**: they never touch the node store — each is recorded
as a per-transaction delta, and the store keeps whatever committed
bytes the last page install put there.  The governing invariant is

    family-visible value  =  store value  +  the family's live deltas

* reads through the transaction context add the family's own deltas
  (read-your-own-increments; no *other* family's deltas can be live at
  an observer's read, because observation never commutes with
  incrementing);
* a plain overwrite of a tracked slot stores ``value - deltas`` so the
  invariant (and plain undo logging) keeps working around it;
* root commit folds the family's deltas into a per-slot **ledger** of
  the committed sum and writes the ledger value into the committing
  node's store — the commit makes that node the slot's page owner, so
  every later fetch ships the merged sum.

Because stores only ever hold committed increment bytes, page installs
can never clobber (or leak) another family's uncommitted increments,
and abort is pure bookkeeping: drop the transaction's deltas.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.gdo.entry import LockMode
from repro.memory.layout import Slot
from repro.util.ids import NodeId, ObjectId, TxnId


def base_of(mode) -> LockMode:
    """The plain R/W lattice element under a (possibly semantic) mode."""
    return getattr(mode, "base", mode)


def modes_conflict(left, right) -> bool:
    """Conflict between two grant modes (plain or semantic)."""
    if isinstance(left, SemanticMode):
        return left.conflicts_with(right)
    if isinstance(right, SemanticMode):
        return right.conflicts_with(left)
    return left is LockMode.WRITE or right is LockMode.WRITE


def join_modes(held, granted):
    """The mode a holder entry records after a re-entrant grant.

    Equal modes join to themselves (re-acquiring ``W+deposit`` keeps
    the semantic tag through Moss retention); any other combination
    collapses to the plain base join — the family now embodies two
    different methods, so only the R/W envelope is safe to relax on.
    """
    if held is None:
        return granted
    if held == granted:
        return held
    if base_of(held) is LockMode.WRITE or base_of(granted) is LockMode.WRITE:
        return LockMode.WRITE
    return LockMode.READ


class SemanticMode:
    """A plain lock mode refined by the invoking method's identity."""

    __slots__ = ("base", "tag", "table")

    def __init__(self, base: LockMode, tag: str, table) -> None:
        self.base = base
        self.tag = tag  # "Class.method"
        self.table = table

    @property
    def value(self) -> str:
        return f"{self.base.value}+{self.tag}"

    def conflicts_with(self, other) -> bool:
        other_tag = getattr(other, "tag", None)
        if other_tag is not None:
            left_cls, left_method = self.tag.split(".", 1)
            right_cls, right_method = other_tag.split(".", 1)
            if left_cls == right_cls and self.table.commutes(
                left_method, right_method
            ):
                return False
            return (self.base is LockMode.WRITE
                    or base_of(other) is LockMode.WRITE)
        # Plain requester vs semantic holder (or vice versa): the
        # plain side has no method identity to commute on.
        return self.base is LockMode.WRITE or other is LockMode.WRITE

    def __eq__(self, other) -> bool:
        if isinstance(other, SemanticMode):
            return self.base is other.base and self.tag == other.tag
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.base, self.tag))

    def __repr__(self) -> str:
        # The trace sanitizer falls back to repr() for non-enum
        # objects; this exact string is what the checkers parse.
        return self.value


class IncrementMerger:
    """Store-virtual delta ledger for concurrently granted increments.

    Per live transaction it accumulates ``(object, slot) -> delta``;
    per slot it keeps the committed sum (the *ledger*) once the first
    increment family resolves.  Resolution rules:

    * **sub pre-commit** — the parent absorbs the child's deltas and
      plain-write notes (Moss-style rollup, mirroring undo-log
      merging);
    * **abort** (sub, root, or crash rollback) — the transaction's
      deltas are dropped; the store was never touched, so there is
      nothing to restore;
    * **root commit** — each delta folds into the ledger (first
      resolution seeds it from the committing node's store, whose
      bytes are the latest committed base — live deltas are virtual
      and never reach any store), and the ledger value is written
      into the committing node's store so the new page owner — which
      the commit just made authoritative — carries the merged sum;
    * a slot the family **plainly overwrote** (noted by the write
      interceptor) takes its post-commit ledger value from the store
      (plus any increments the family applied *after* the overwrite)
      instead of delta folding — the overwrite supersedes the sum.
    """

    def __init__(self, stores: Dict[NodeId, "NodeStore"]) -> None:
        self.stores = stores
        self._live: Dict[TxnId, Dict[Tuple[ObjectId, Slot], object]] = {}
        self._plain: Dict[TxnId, set] = {}
        self._ledger: Dict[Tuple[ObjectId, Slot], object] = {}

    # -- write interception -------------------------------------------------

    def record(self, txn, object_id: ObjectId, slot: Slot, delta) -> None:
        """One tracked write: fold its delta into the transaction."""
        deltas = self._live.setdefault(txn.id, {})
        key = (object_id, slot)
        deltas[key] = deltas.get(key, 0) + delta

    def family_adjustment(self, txn, object_id: ObjectId, slot: Slot):
        """Sum of the family's own live deltas on the slot.

        Reads add this on top of the store value (read-your-own-
        increments); no *other* family's deltas can be live at an
        observer's read because observation never commutes with
        incrementing, and commuting families' deltas are virtual.
        """
        if not self._live:
            return 0
        root = txn.id.root
        key = (object_id, slot)
        total = 0
        for txn_id, deltas in self._live.items():
            if txn_id.root == root:
                total += deltas.get(key, 0)
        return total

    def plain_write_adjustment(self, txn, object_id: ObjectId, slot: Slot):
        """Intercept a plain (non-increment) write to a tracked slot.

        Returns the family adjustment the caller must *subtract* from
        the stored bytes — the store must keep satisfying
        ``family-visible = store + family deltas`` — and notes the
        slot so root commit rebuilds the ledger from the store instead
        of folding the (superseded) deltas.
        """
        if not self._live and not self._ledger:
            return 0
        key = (object_id, slot)
        adjust = self.family_adjustment(txn, object_id, slot)
        if adjust or key in self._ledger:
            self._plain.setdefault(txn.id, set()).add(key)
        return adjust

    def has_deltas(self, txn) -> bool:
        return bool(self._live.get(txn.id))

    def ledger_value(self, object_id: ObjectId,
                     slot: Slot) -> Optional[object]:
        return self._ledger.get((object_id, slot))

    # -- resolutions --------------------------------------------------------

    def on_sub_commit(self, txn) -> None:
        deltas = self._live.pop(txn.id, None)
        plain = self._plain.pop(txn.id, None)
        if deltas:
            merged = self._live.setdefault(txn.parent.id, {})
            for key, delta in deltas.items():
                merged[key] = merged.get(key, 0) + delta
        if plain:
            self._plain.setdefault(txn.parent.id, set()).update(plain)

    def on_abort(self, txn) -> None:
        """Drop the transaction's deltas; stores were never written."""
        self._live.pop(txn.id, None)
        self._plain.pop(txn.id, None)

    def on_root_commit(self, root) -> None:
        deltas = self._live.pop(root.id, None) or {}
        plain = self._plain.pop(root.id, None) or frozenset()
        if not deltas and not plain:
            return
        store = self.stores[root.node]
        for key in sorted(set(deltas) | set(plain),
                          key=self._ledger_order):
            object_id, slot = key
            if key in plain:
                # The family's overwrite went through the store (minus
                # its then-live deltas); store + total deltas is the
                # family-visible value the overwrite established plus
                # any increments applied after it.
                value = store.read_slot(object_id, slot) + deltas.get(key, 0)
            elif key in self._ledger:
                value = self._ledger[key] + deltas[key]
            else:
                # First resolution seeds the ledger: the store bytes
                # are the latest committed base (plain writers
                # serialize ahead of increment holders; live deltas
                # are virtual and never reach a store).
                value = store.read_slot(object_id, slot) + deltas[key]
            self._ledger[key] = value
            # Fix-up: the commit just made this node the owner of the
            # slot's (dirtied) pages; the authoritative copy must
            # carry the merged sum, not this family's local view.
            store.write_slot(object_id, slot, value)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _ledger_order(key):
        object_id, slot = key
        return (object_id.value, slot)
