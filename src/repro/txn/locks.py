"""The lock manager: Algorithms 4.1-4.4 on the simulated network.

Lock processing is split exactly as in the paper:

* **Local operations** touch only the holder list cached at the site
  where the holding family executes — they cost no messages.  These are
  intra-family acquisitions, pre-commit lock inheritance, and
  sub-transaction aborts whose locks stay retained by an ancestor.
* **Global operations** message the object's GDO home node: first
  acquisition by a family, enqueueing behind another family, root
  commit/abort release (with piggybacked dirty-page info), and the
  grant messages that carry the holder list and page map to a newly
  admitted family's site (Algorithm 4.2 / 4.4).

The generator methods (``acquire``, ``root_commit_release``, the abort
releases) are simulation processes: ``yield``ed sends advance the
virtual clock and are charged to :class:`~repro.net.NetworkStats`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.faults.injector import NULL_INJECTOR
from repro.faults.wal import NULL_WAL
from repro.gdo.cache import EntryCacheTracker
from repro.gdo.directory import Directory
from repro.gdo.entry import DirectoryEntry, GrantDecision, LockMode, Waiter
from repro.net.message import Message, MessageCategory
from repro.net.network import Network
from repro.net.sizes import SizeModel
from repro.obs.tracer import NULL_TRACER
from repro.txn.semantic import SemanticMode
from repro.txn.transaction import Transaction
from repro.util.backoff import backoff_delay
from repro.util.errors import (
    DeadlockError,
    LockTimeoutError,
    NodeCrashError,
    ProtocolError,
    RecursiveInvocationError,
)
from repro.util.ids import NodeId, ObjectId


@dataclass
class LockStats:
    """Lock-operation counters (the §5.1 locking-overhead discussion)."""

    local_acquisitions: int = 0
    global_acquisitions: int = 0
    waits: int = 0
    deadlocks: int = 0
    recursive_rejections: int = 0
    prefetch_granted: int = 0
    prefetch_denied: int = 0
    lock_timeouts: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "local_acquisitions": self.local_acquisitions,
            "global_acquisitions": self.global_acquisitions,
            "waits": self.waits,
            "deadlocks": self.deadlocks,
            "recursive_rejections": self.recursive_rejections,
            "prefetch_granted": self.prefetch_granted,
            "prefetch_denied": self.prefetch_denied,
            "lock_timeouts": self.lock_timeouts,
        }


class _CommuteAllTable:
    """TEST-ONLY wrapper: reports every same-class method pair as
    commuting.  Mirrors the honest table's read surface so
    :class:`~repro.txn.semantic.SemanticMode` can consume it."""

    def __init__(self, honest):
        self.class_name = honest.class_name
        self.methods = honest.methods

    def commutes(self, left: str, right: str) -> bool:
        return True


@dataclass
class _BlockedFamily:
    object_id: ObjectId
    waiter: Waiter
    txn: Transaction


class LockManager:
    """Drives directory entries, charges GDO traffic, detects deadlock."""

    def __init__(self, env, network: Network, directory: Directory,
                 sizes: SizeModel, cache: EntryCacheTracker,
                 allow_recursive_reads: bool = False, tracer=None,
                 injector=None, migration=None, wal=None):
        self.env = env
        self.network = network
        self.directory = directory
        self.sizes = sizes
        self.cache = cache
        self.allow_recursive_reads = allow_recursive_reads
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Per-node durable record (repro.faults.wal); the home node's
        #: holder lists are snapshotted on every global grant/release so
        #: crash recovery can replay them.  NULL_WAL no-ops by default.
        self.wal = wal if wal is not None else NULL_WAL
        #: Optional :class:`~repro.gdo.migration.HomeMigrationManager`;
        #: ``None`` keeps the static partition (and adds zero work).
        self.migration = migration
        # Entries with a home handoff currently on the wire; blocks a
        # second concurrent migration of the same entry.
        self._migrating: Set[ObjectId] = set()
        self.stats = LockStats()
        # At most one blocked transaction per (sequential) family.
        self._blocked: Dict[int, _BlockedFamily] = {}
        # Root serials of families killed by a node crash.  In-flight
        # helper processes (prefetchers) consult this so they never
        # grant new locks to a dead family after its cleanup ran.
        self.dead_families: Set[int] = set()
        # Per-object grant history: (family root serial, mode, sim time)
        # in grant order.  Feeds the precedence-graph oracle
        # (repro.runtime.verify.check_conflict_serializability).
        self.grant_history: Dict[ObjectId, List[Tuple[int, LockMode, float]]] = {}
        # Test-only deliberate protocol breakages, by name (the
        # repro.check mutation smoke tests prove the fuzzer's checkers
        # catch them).  Always empty in production paths.
        self.test_mutations: frozenset = frozenset()
        # Per-class commutativity tables (semantic lock modes); empty
        # unless ClusterConfig.semantic_locks registered them.
        self._commutativity: Dict[str, object] = {}
        self._mutated_tables: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Semantic lock modes
    # ------------------------------------------------------------------

    def register_commutativity(self, class_name: str, table) -> None:
        """Install one class's commutativity table (semantic modes on)."""
        self._commutativity[class_name] = table

    def commutativity_tables(self) -> Dict[str, object]:
        """The honest registered tables (checker artifact source)."""
        return dict(self._commutativity)

    def semantic_mode_for(self, class_name: str, method_name: str,
                          base: LockMode):
        """The lock mode for invoking ``method_name`` on ``class_name``.

        Returns a :class:`SemanticMode` when the class has a registered
        table and the method is eligible; otherwise the plain base mode
        (the conservative R/W fallback).
        """
        table = self._commutativity.get(class_name)
        if table is None:
            return base
        summary = table.methods.get(method_name)
        if summary is None or not summary.semantic:
            return base
        if "commute-conflicting-writes" in self.test_mutations:
            table = self._mutated_table(class_name, table)
        return SemanticMode(base, f"{class_name}.{method_name}", table)

    def _mutated_table(self, class_name: str, honest):
        """TEST-ONLY breakage (``commute-conflicting-writes``): hand
        out a table claiming every same-class pair commutes, so two
        genuinely conflicting writers are granted concurrently.  The
        honest table is what the trace artifact carries, so the
        reference model and the serializability oracles must catch the
        resulting lost updates / non-serializable schedules."""
        mutated = self._mutated_tables.get(class_name)
        if mutated is None:
            mutated = _CommuteAllTable(honest)
            self._mutated_tables[class_name] = mutated
        return mutated

    def _record_grant(self, object_id: ObjectId, txn, mode: LockMode) -> None:
        self.grant_history.setdefault(object_id, []).append(
            (txn.id.root, mode, self.env.now)
        )

    # ------------------------------------------------------------------
    # Acquisition (Algorithms 4.1 and 4.2)
    # ------------------------------------------------------------------

    def acquire(self, txn: Transaction, object_id: ObjectId, mode: LockMode):
        """Acquire the object's lock for ``txn`` (simulation process).

        Returns the page-map snapshot sent with a *global* grant, or
        ``None`` for purely local grants (no data movement is implied
        by a local grant — the family's site already has whatever it
        fetched at its global acquisition).
        """
        entry = self.directory.entry(object_id)
        node = txn.node
        # Algorithm 4.1: serve from the locally cached holder list when
        # this site caches the entry AND the requester belongs to the
        # holding family; every other case forwards to the global path.
        if (
            self.cache.is_local(object_id, node)
            and entry.family_present(txn.id.root)
        ):
            decision = entry.decide(txn, mode, self.allow_recursive_reads)
            if decision is GrantDecision.RECURSIVE:
                self.stats.recursive_rejections += 1
                raise RecursiveInvocationError(txn.id, object_id)
            if decision is GrantDecision.GRANTED:
                entry.grant(txn, mode)
                self._record_grant(object_id, txn, mode)
                txn.lock_objects.add(object_id)
                self.stats.local_acquisitions += 1
                if self.tracer.enabled:
                    self.tracer.lock_granted(txn, object_id, mode, "local",
                                             info=entry.trace_info())
                return None
            if decision is GrantDecision.WAIT_LOCAL:
                self.stats.local_acquisitions += 1
                payload = yield from self._wait(entry, txn, mode, local=True)
                txn.lock_objects.add(object_id)
                return payload
            # WAIT_GLOBAL: our family retains the lock, but readers from
            # another family also hold it — Algorithm 4.1's ELSE branch
            # forwards such requests to GlobalLockAcquisition.
        # Algorithm 4.2: global processing at the entry's home node.
        self.stats.global_acquisitions += 1
        if self.migration is not None:
            self.migration.record_access(object_id, node)
        if (self.injector.failover_detect_s() > 0
                and self.injector.is_down(entry.home_node, self.env.now)):
            yield from self._reroute_failover(entry)
        home = entry.home_node
        request_started = self.env.now
        self.tracer.gdo_forward(node, home, object_id)
        request = Message(
            src=node, dst=home,
            category=MessageCategory.LOCK_REQUEST,
            size_bytes=self.sizes.lock_request(), object_id=object_id,
        )
        yield self.network.send(request)
        if entry.home_node != home:
            # The entry's home migrated while our request was on the
            # wire: the stale home forwards it (one extra hop).
            yield from self._forward_request(object_id, home,
                                             entry.home_node)
        family_already_present = entry.family_present(txn.id.root)
        decision = entry.decide(txn, mode, self.allow_recursive_reads)
        if decision is GrantDecision.RECURSIVE:
            self.stats.recursive_rejections += 1
            raise RecursiveInvocationError(txn.id, object_id)
        if decision is GrantDecision.GRANTED:
            entry.grant(txn, mode)
            self._record_grant(object_id, txn, mode)
            self.cache.on_granted(object_id, node)
            self._wal_record_holders(object_id, entry)
            if family_already_present:
                # Re-entrant grant (the family already holds/retains the
                # lock, e.g. after its cached entry was displaced): no
                # page map and NO data transfer — the family's site has
                # been current since its first acquisition, and may hold
                # uncommitted writes a transfer must never clobber.
                snapshot = None
                grant_size = self.sizes.control()
            else:
                snapshot = entry.page_map_snapshot()
                grant_size = self.sizes.lock_grant(
                    holder_entries=len(entry.holder_entries()),
                    page_map_entries=len(snapshot),
                )
            grant = Message(
                src=entry.home_node, dst=node,
                category=MessageCategory.LOCK_GRANT,
                size_bytes=grant_size,
                object_id=object_id,
            )
            yield self.network.send(grant)
            txn.lock_objects.add(object_id)
            self.tracer.gdo_request_latency(
                entry.home_node, self.env.now - request_started
            )
            if self.tracer.enabled:
                self.tracer.lock_granted(txn, object_id, mode, "global",
                                         info=entry.trace_info())
            self.directory.refresh_deadlock_edges(object_id)
            # A grant can complete a cycle for families already queued
            # behind this lock (reader preference), so re-check.
            self._detect_deadlocks()
            return snapshot
        payload = yield from self._wait(
            entry, txn, mode, local=(decision is GrantDecision.WAIT_LOCAL)
        )
        self.tracer.gdo_request_latency(
            entry.home_node, self.env.now - request_started
        )
        txn.lock_objects.add(object_id)
        return payload

    def try_prefetch(self, txn: Transaction, object_id: ObjectId,
                     mode: LockMode):
        """Optimistic, non-blocking pre-acquisition (§5.1/§6).

        Charges a GDO round trip; if the lock is free for ``txn`` it is
        granted and immediately demoted to *retained* so descendants of
        ``txn`` acquire it locally.  If not immediately grantable, the
        request gives up (no queueing — optimism never blocks, so it
        cannot add deadlocks).  Returns the page-map snapshot on a
        fresh grant, else None.
        """
        entry = self.directory.entry(object_id)
        node = txn.node
        if txn.id.root in self.dead_families:
            raise NodeCrashError(txn.id, node=node)
        if entry.family_present(txn.id.root):
            return None  # already ours: nothing to pre-acquire
        if self.migration is not None:
            self.migration.record_access(object_id, node)
        if (self.injector.failover_detect_s() > 0
                and self.injector.is_down(entry.home_node, self.env.now)):
            yield from self._reroute_failover(entry)
        home = entry.home_node
        request = Message(
            src=node, dst=home,
            category=MessageCategory.LOCK_REQUEST,
            size_bytes=self.sizes.lock_request(), object_id=object_id,
        )
        yield self.network.send(request)
        if entry.home_node != home:
            yield from self._forward_request(object_id, home,
                                             entry.home_node)
        if txn.id.root in self.dead_families:
            # The family's node crashed while the request was on the
            # wire; granting now would leak a lock nobody releases.
            raise NodeCrashError(txn.id, node=node)
        decision = entry.decide(txn, mode, self.allow_recursive_reads)
        if decision is not GrantDecision.GRANTED or entry.family_present(
            txn.id.root
        ):
            self.stats.prefetch_denied += 1
            self.tracer.lock_prefetch(txn, object_id, granted=False,
                                      mode=mode)
            nack = Message(
                src=entry.home_node, dst=node,
                category=MessageCategory.CONTROL,
                size_bytes=self.sizes.control(), object_id=object_id,
            )
            yield self.network.send(nack)
            return None
        entry.grant(txn, mode)
        self._record_grant(object_id, txn, mode)
        entry.demote_to_retained(txn)
        self.cache.on_granted(object_id, node)
        self._wal_record_holders(object_id, entry)
        self.stats.prefetch_granted += 1
        self.tracer.lock_prefetch(txn, object_id, granted=True, mode=mode)
        snapshot = entry.page_map_snapshot()
        grant = Message(
            src=entry.home_node, dst=node,
            category=MessageCategory.LOCK_GRANT,
            size_bytes=self.sizes.lock_grant(
                holder_entries=len(entry.holder_entries()),
                page_map_entries=len(snapshot),
            ),
            object_id=object_id,
        )
        yield self.network.send(grant)
        if txn.id.root in self.dead_families:
            # Crash landed during the grant's flight; the crash cleanup
            # already reclaimed the entry, so just stop quietly.
            raise NodeCrashError(txn.id, node=node)
        txn.lock_objects.add(object_id)
        self.directory.refresh_deadlock_edges(object_id)
        self._detect_deadlocks()
        return snapshot

    def _wal_record_holders(self, object_id: ObjectId,
                            entry: DirectoryEntry) -> None:
        """Snapshot the entry's holders into its home's durable record.

        A crashed home takes no writes: its stable storage keeps the
        last pre-crash snapshot, which is exactly what the node must
        reconcile (discard stale holders) when it rejoins — see
        :meth:`repro.faults.recovery.RecoveryManager.rejoin`.
        """
        home = entry.home_node
        if self.injector.is_down(home, self.env.now):
            return
        self.wal.record_holders(home.value, object_id, entry)

    def _reroute_failover(self, entry: DirectoryEntry):
        """Wait out a dead home until failover re-homes the entry.

        Without failover armed, a request to a down home rides the
        retransmission loop until the node recovers — correct, but the
        family stalls for the whole crash window.  With it, back off on
        the unified curve (base = the detection timeout, so the first
        re-check lands right around the failover instant) until either
        the entry was re-homed to the live successor or the node
        recovered first; the caller then re-reads ``entry.home_node``.
        """
        self.injector.stats.failover_reroutes += 1
        base = self.injector.failover_detect_s()
        attempt = 0
        while self.injector.is_down(entry.home_node, self.env.now):
            yield self.env.timeout(backoff_delay(base, attempt))
            attempt += 1

    def _forward_request(self, object_id: ObjectId, old_home: NodeId,
                         new_home: NodeId):
        """One extra hop for a request that raced a home migration: the
        stale home still answers its old address and relays to the new
        home (DESIGN §11's forwarding protocol)."""
        if self.migration is not None:
            self.migration.note_forwarded()
        self.tracer.gdo_request_forwarded(object_id, old_home, new_home)
        relay = Message(
            src=old_home, dst=new_home,
            category=MessageCategory.LOCK_REQUEST,
            size_bytes=self.sizes.lock_request(), object_id=object_id,
        )
        yield self.network.send(relay)

    def _wait(self, entry: DirectoryEntry, txn: Transaction, mode: LockMode,
              local: bool):
        """Block until granted; raises DeadlockError if chosen as victim."""
        self.stats.waits += 1
        wake = self.env.event(name=f"lockwait:{entry.object_id!r}")
        # Scheduling hints for same-instant tie-break policies
        # (repro.sim.tiebreak): which family/node/mode this wake admits.
        wake.hints = {
            "kind": "lockwait",
            # Tie-break policies key on the plain base (writer-first
            # must treat W+tag exactly like W).
            "mode": getattr(mode, "base", mode).value,
            "node": txn.node.value, "root": txn.id.root,
            "object": entry.object_id.value,
        }
        waiter = Waiter(txn=txn, mode=mode, wake=wake)
        if local:
            entry.enqueue_local(waiter)
        else:
            entry.enqueue_global(waiter)
        root = txn.id.root
        if root in self._blocked:
            raise ProtocolError(
                f"family {root} blocked twice concurrently; families are "
                f"sequential (one live request at a time)"
            )
        self._blocked[root] = _BlockedFamily(
            object_id=entry.object_id, waiter=waiter, txn=txn
        )
        self.directory.refresh_deadlock_edges(entry.object_id)
        self._detect_deadlocks()
        token = self.tracer.lock_wait_begin(
            txn, entry.object_id, mode, "local" if local else "global"
        )
        # Shard attribution is pinned at enqueue time: a migration
        # mid-wait must not unbalance the inc/dec pair.
        shard = entry.home_node
        if not local:
            self.tracer.gdo_queue_depth(shard, +1)
        timeout_s = self.injector.lock_wait_timeout_s()
        try:
            if timeout_s > 0:
                payload = yield from self._wait_bounded(entry, waiter,
                                                        timeout_s)
            else:
                payload = yield waiter.wake
        except BaseException:
            self.tracer.lock_wait_end(token, ok=False)
            raise
        finally:
            if not local:
                self.tracer.gdo_queue_depth(shard, -1)
            self._blocked.pop(root, None)
        self.tracer.lock_wait_end(token, ok=True)
        self._record_grant(entry.object_id, txn, mode)
        return payload

    def _wait_bounded(self, entry: DirectoryEntry, waiter: Waiter,
                      timeout_s: float):
        """Race the wake event against the fault plan's wait bound.

        On timeout the waiter is withdrawn from the entry and the whole
        family aborts with :class:`LockTimeoutError` (the executor
        retries it with backoff).  Two races need care: the grant may
        already be *in flight* when the timer fires (the waiter is no
        longer queued — honor the grant), and the wake may fail at the
        same instant the timer fires (deadlock victim — re-raise it).
        """
        started = self.env.now
        index, value = yield self.env.any_of(
            [waiter.wake, self.env.timeout(timeout_s)]
        )
        if index == 0:
            return value
        if waiter.wake.triggered:
            if waiter.wake.ok:
                return waiter.wake.value
            raise waiter.wake.value
        if not entry.remove_waiter(waiter.txn_id):
            if waiter.txn_id.root in self.dead_families:
                raise NodeCrashError(waiter.txn_id)
            # Already granted; the grant message is on the wire.
            payload = yield waiter.wake
            return payload
        self.directory.refresh_deadlock_edges(entry.object_id)
        waited = self.env.now - started
        self.stats.lock_timeouts += 1
        self.injector.stats.lock_timeouts += 1
        self.tracer.lock_timeout(waiter.txn, entry.object_id, waited)
        raise LockTimeoutError(waiter.txn_id, entry.object_id, waited)

    def _detect_deadlocks(self) -> None:
        """Search for cycles from every blocked family; abort victims.

        Cycles can appear not only when a family enqueues but also when
        a *grant* changes an entry's blocker set (reader preference can
        admit family B onto a lock family A already waits for), so this
        runs after every edge refresh.  Victim removal changes the
        graph; loop until no cycle remains.
        """
        progress = True
        while progress:
            progress = False
            for start_root in sorted(self._blocked):
                cycle = self.directory.deadlock.find_cycle(start_root)
                if cycle is None:
                    continue
                self._abort_victim(cycle)
                progress = True
                break

    def _abort_victim(self, cycle) -> None:
        victim_root = self.directory.deadlock.pick_victim(cycle)
        blocked = self._blocked.get(victim_root)
        if blocked is None:
            # The victim family is running (not blocked): it cannot be
            # preempted mid-method; abort the youngest *blocked* family
            # in the cycle instead.
            blocked_roots = [r for r in cycle if r in self._blocked]
            if not blocked_roots:
                raise ProtocolError(f"deadlock cycle {cycle} with no blocked family")
            victim_root = max(blocked_roots)
            blocked = self._blocked[victim_root]
        self.stats.deadlocks += 1
        self.tracer.deadlock(victim_root, cycle)
        self._blocked.pop(victim_root, None)
        entry = self.directory.entry(blocked.object_id)
        entry.remove_waiter(blocked.txn.id)
        self.directory.refresh_deadlock_edges(blocked.object_id)
        blocked.waiter.wake.fail(DeadlockError(blocked.txn.id, cycle))

    # ------------------------------------------------------------------
    # Release (Algorithms 4.3 and 4.4)
    # ------------------------------------------------------------------

    def precommit_release(self, txn: Transaction) -> None:
        """Pre-commit lock disposition — purely local (Algorithm 4.3).

        The parent inherits and retains every lock ``txn`` holds or
        retains; any now-grantable local waiter is woken on the spot.
        """
        parent = txn.parent
        if parent is None:
            raise ProtocolError("precommit_release on a root transaction")
        if "skip-precommit-retention" in self.test_mutations:
            self._mutated_precommit_drop(txn)
            return
        if txn.lock_objects:
            self.tracer.lock_inherited(txn, parent, sorted(txn.lock_objects))
        wakes = []
        for object_id in sorted(txn.lock_objects):
            entry = self.directory.entry(object_id)
            entry.release_to_parent(txn, parent)
            wakes.extend(
                waiter.wake
                for waiter in entry.pump(self.allow_recursive_reads)
            )
        # Same-instant wakes ride one batched heap entry (FIFO order
        # preserved — see Environment.succeed_all).
        self.env.succeed_all(wakes)

    def _mutated_precommit_drop(self, txn: Transaction) -> None:
        """TEST-ONLY breakage (``skip-precommit-retention``): instead
        of the parent inheriting and retaining the pre-committing
        child's locks (Algorithm 4.3), drop whatever the family no
        longer strictly holds and wake anyone queued — other families
        can then touch the objects while this family's root is still
        running.  The reference model and the serializability oracles
        must both catch the fallout; nothing is traced here precisely
        because a real bug would not announce itself.
        """
        for object_id in sorted(txn.lock_objects):
            entry = self.directory.entry(object_id)
            entry.release_on_abort(txn)
            for waiter in entry.pump(self.allow_recursive_reads):
                waiter.wake.succeed(entry.page_map_snapshot())
            self.directory.refresh_deadlock_edges(object_id)
        self._detect_deadlocks()

    def sub_abort_release(self, txn: Transaction):
        """Sub-transaction abort (Algorithm 4.3, last case) — process.

        Locks retained by an ancestor stay retained (local, free);
        locks the family no longer needs are released globally with no
        dirty-page info.
        """
        freed: List[ObjectId] = []
        wakes = []
        for object_id in sorted(txn.lock_objects):
            entry = self.directory.entry(object_id)
            family_gone = entry.release_on_abort(txn)
            if family_gone:
                # Defer pumping to the global path so newly admitted
                # families get their grant message and cache update.
                freed.append(object_id)
            else:
                wakes.extend(
                    waiter.wake
                    for waiter in entry.pump(self.allow_recursive_reads)
                )
        self.env.succeed_all(wakes)
        yield from self._global_release(
            node=txn.node, root_serial=txn.id.root, object_ids=freed,
            dirty={}, resident_versions={}, cause="sub-abort",
        )

    def root_commit_release(self, root: Transaction, resident_versions):
        """Root commit (Algorithm 4.4) — simulation process.

        ``resident_versions`` maps object id -> {page: local version} at
        the committing node; with the dirty sets accumulated up the
        tree it updates the page map before other families are admitted.
        """
        yield from self._global_release(
            node=root.node, root_serial=root.id.root,
            object_ids=sorted(root.lock_objects),
            dirty=root.dirty, resident_versions=resident_versions,
            cause="commit",
        )

    def root_abort_release(self, root: Transaction):
        """Root abort: release everything, no dirty info (Algorithm 4.3)."""
        yield from self._global_release(
            node=root.node, root_serial=root.id.root,
            object_ids=sorted(root.lock_objects),
            dirty={}, resident_versions={}, cause="abort",
        )

    def _global_release(self, node: NodeId, root_serial: int,
                        object_ids: List[ObjectId],
                        dirty: Dict[ObjectId, set],
                        resident_versions: Dict[ObjectId, Dict[int, int]],
                        cause: str = "commit"):
        if not object_ids:
            return
        self.tracer.lock_released(node, root_serial, object_ids, cause)
        # One release message per distinct home node, dirty info
        # piggybacked (§4.1: "Dirty page information may be piggybacked
        # on each global lock release message").
        by_home: Dict[NodeId, List[ObjectId]] = defaultdict(list)
        for object_id in object_ids:
            by_home[self.directory.entry(object_id).home_node].append(object_id)
        sends = []
        for home, oids in sorted(by_home.items()):
            dirty_entries = sum(len(dirty.get(oid, ())) for oid in oids)
            message = Message(
                src=node, dst=home,
                category=MessageCategory.LOCK_RELEASE,
                size_bytes=self.sizes.lock_release(dirty_entries),
            )
            sends.append(self.network.send(message))
        yield self.env.all_of(sends)
        # Any object whose home migrated while the release was on the
        # wire gets its share relayed by the stale home (one hop each).
        forwards = []
        for home, oids in sorted(by_home.items()):
            for object_id in oids:
                new_home = self.directory.entry(object_id).home_node
                if new_home != home:
                    if self.migration is not None:
                        self.migration.note_forwarded()
                    self.tracer.gdo_request_forwarded(object_id, home,
                                                      new_home)
                    relay = Message(
                        src=home, dst=new_home,
                        category=MessageCategory.LOCK_RELEASE,
                        size_bytes=self.sizes.lock_release(
                            len(dirty.get(object_id, ()))
                        ),
                        object_id=object_id,
                    )
                    forwards.append(self.network.send(relay))
        if forwards:
            yield self.env.all_of(forwards)
        for object_id in object_ids:
            entry = self.directory.entry(object_id)
            entry.apply_commit(
                node,
                dirty.get(object_id, ()),
                resident_versions.get(object_id, {}),
            )
            roots_before = entry.blocking_family_roots()
            entry.release_family(root_serial)
            # Drop any of our own stragglers still queued (family abort).
            for waiter in entry.remove_family_waiters(root_serial):
                if not waiter.wake.triggered:
                    waiter.wake.fail(
                        ProtocolError(f"waiter of released family {root_serial}")
                    )
            if entry.is_free:
                # Other families may still hold the lock (shared read):
                # their site's cached holder list stays authoritative.
                self.cache.on_freed(object_id)
            woken = entry.pump(self.allow_recursive_reads)
            self._deliver_grants(entry, woken, roots_before)
            self._wal_record_holders(object_id, entry)
            self.directory.refresh_deadlock_edges(object_id)
        self._detect_deadlocks()
        if self.migration is not None:
            # Detached: re-homing is the directory's own housekeeping.
            # Running it inline would suspend the releasing family past
            # the point where pumped waiters resume, letting a
            # later-granted family commit (and trace its commit) before
            # the releaser does — inverting commit order vs conflict
            # order and breaking the serial-replay oracle.
            self.env.process(
                self._maybe_migrate(list(object_ids)),
                name=f"gdo-migrate:{root_serial}",
            )

    def _maybe_migrate(self, object_ids: List[ObjectId]):
        """Adaptive re-homing of freshly quiesced entries (DESIGN §11).

        Spawned as a detached background process at the tail of a
        global release, after grants were pumped: an entry is only
        moved when it is fully quiescent — no holders, no retainers, no
        queued waiters — so the move is pure accounting (no in-flight
        grant ever references the old home) and correctness is
        untouched.  The handoff message is charged and yielded; if
        anything touched the entry while the handoff was on the wire,
        the move is abandoned (the access counts survive, so it is
        reconsidered at the next quiesce).
        """
        for object_id in object_ids:
            entry = self.directory.entry(object_id)
            if object_id in self._migrating:
                continue
            if not entry.is_free or entry.has_waiters():
                continue
            target = self.migration.pick_target(object_id, entry.home_node)
            if target is None:
                continue
            old_home = entry.home_node
            snapshot = entry.page_map_snapshot()
            handoff = Message(
                src=old_home, dst=target,
                category=MessageCategory.GDO_MIGRATE,
                size_bytes=self.sizes.migration_transfer(
                    holder_entries=len(entry.holder_entries()),
                    page_map_entries=len(snapshot),
                ),
                object_id=object_id,
            )
            self._migrating.add(object_id)
            try:
                yield self.network.send(handoff)
            finally:
                self._migrating.discard(object_id)
            if not entry.is_free or entry.has_waiters():
                continue  # a racing request got in first: stay put
            moved_from = self.directory.move_home(object_id, target)
            self.wal.record_home_moved(moved_from.value, target.value,
                                       object_id)
            # The quiescent entry has no holders, but a stale cached
            # holder list at any site would now route Algorithm 4.1's
            # fast path to the wrong home — drop it.
            self.cache.on_freed(object_id)
            self.migration.note_migrated(object_id)

    def _deliver_grants(self, entry: DirectoryEntry, woken: List[Waiter],
                        roots_before) -> None:
        """Send grant messages to newly admitted families (Algorithm 4.4:
        "Send the list pointed to by HolderPtr and the page map to the
        new holder's site").  Waiters wake when the grant arrives."""
        if not woken:
            return
        snapshot = entry.page_map_snapshot()
        by_site: Dict[NodeId, List[Waiter]] = defaultdict(list)
        immediate: List[Waiter] = []
        for waiter in woken:
            if waiter.txn_id.root in roots_before:
                immediate.append(waiter)  # family already held: local wake
            else:
                by_site[waiter.txn.node].append(waiter)
        self.env.succeed_all([waiter.wake for waiter in immediate])
        for site, waiters in sorted(by_site.items()):
            self.cache.on_granted(entry.object_id, site)
            grant = Message(
                src=entry.home_node, dst=site,
                category=MessageCategory.LOCK_GRANT,
                size_bytes=self.sizes.lock_grant(
                    holder_entries=len(entry.holder_entries()),
                    page_map_entries=len(snapshot),
                ),
                object_id=entry.object_id,
            )
            delivery = self.network.send(grant)

            def wake_all(_event, wakes=[w.wake for w in waiters],
                         payload=snapshot):
                self.env.succeed_all(wakes, payload)

            delivery.add_callback(wake_all)

    # ------------------------------------------------------------------
    # Crash recovery (fault injection)
    # ------------------------------------------------------------------

    def crash_release(self, roots) -> None:
        """Forcibly reclaim directory state of crash-aborted families.

        A crashed family cannot run its own release protocol (its node
        is down and its processes were interrupted), so the GDO acts
        unilaterally: every entry drops the family's queued waiters
        (their processes are already dead — no wake is delivered) and
        releases its held/retained locks, then pumps so survivors stop
        waiting on a ghost.  Runs instantaneously at the crash instant;
        the control traffic a real directory would need is deliberately
        not charged, because the crashed node could not answer it.

        Idempotent with respect to the family's own in-flight abort
        processing: ``release_family`` and ``remove_family_waiters``
        are no-ops once the family is gone from an entry.
        """
        dead = set(roots)
        self.dead_families.update(dead)
        if not dead:
            return
        for object_id, entry in sorted(self.directory.entries().items()):
            roots_before = entry.blocking_family_roots()
            touched = False
            for root in sorted(dead):
                if entry.remove_family_waiters(root):
                    touched = True
                if entry.family_present(root):
                    entry.release_family(root)
                    touched = True
            if not touched:
                continue
            if entry.is_free:
                self.cache.on_freed(object_id)
            woken = entry.pump(self.allow_recursive_reads)
            self._deliver_grants(entry, woken, roots_before)
            self.directory.refresh_deadlock_edges(object_id)
        for root in sorted(dead):
            self.directory.deadlock.drop_family(root)
        self._detect_deadlocks()
