"""Transaction tree state for nested object transactions (§3).

A :class:`Transaction` is created per method invocation: user
invocations create roots, invocations made inside a transaction create
children (the 1:1 mapping of §3.3).  Transaction families execute at a
single site (§4.1), so ``node`` is identical across a family.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.memory.undo import UndoLog
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId, TxnId


class TxnState(enum.Enum):
    ACTIVE = "active"
    PRECOMMITTED = "precommitted"  # sub-transaction committed, locks inherited
    COMMITTED = "committed"        # root committed, locks released globally
    ABORTED = "aborted"


class Transaction:
    """One [sub-]transaction and its recovery / locking state."""

    def __init__(self, txn_id: TxnId, node: NodeId,
                 parent: Optional["Transaction"] = None,
                 label: str = "", recovery_factory=UndoLog):
        if parent is not None and parent.node != node:
            raise ProtocolError(
                "transaction families execute at a single site (§4.1); "
                f"child at {node!r} differs from parent at {parent.node!r}"
            )
        self.id = txn_id
        self.node = node
        self.parent = parent
        self.label = label
        self.children: List[Transaction] = []
        self.state = TxnState.ACTIVE
        # Recovery state: UndoLog (default) or ShadowLog (§4.1 offers
        # both).  Children must use the same mechanism as their parent
        # so logs can merge at pre-commit; the executor guarantees it.
        self.undo = recovery_factory()
        # Pages dirtied by *this* transaction's own writes (plus, after
        # pre-commits, those inherited from children — dirty information
        # flows up the tree exactly like locks do).
        self.dirty: Dict[ObjectId, Set[int]] = {}
        # Objects whose locks this transaction holds or retains.
        self.lock_objects: Set[ObjectId] = set()
        # Family-level accounting, meaningful on the root: network delay
        # deferred from synchronous demand fetches, pages shipped at
        # acquisitions, and pages actually touched (for over-prediction
        # accounting at commit).
        self.pending_delay: float = 0.0
        self.transfer_log: Dict[ObjectId, Set[int]] = {}
        self.touch_pages: Dict[ObjectId, Set[int]] = {}
        # Page-map snapshots from lock-only prefetches: the data
        # transfer they deferred runs at the object's first real use.
        self.prefetch_maps: Dict[ObjectId, dict] = {}
        if parent is None:
            self._ancestor_ids: FrozenSet[TxnId] = frozenset()
            self.depth = 0
        else:
            self._ancestor_ids = parent._ancestor_ids | {parent.id}
            self.depth = parent.depth + 1
            parent.children.append(self)

    # -- tree structure -------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def root(self) -> "Transaction":
        txn = self
        while txn.parent is not None:
            txn = txn.parent
        return txn

    def is_ancestor_of(self, other: "Transaction") -> bool:
        """Proper ancestor test (a transaction is not its own ancestor)."""
        return self.id in other._ancestor_ids

    def ancestors(self) -> List["Transaction"]:
        chain = []
        txn = self.parent
        while txn is not None:
            chain.append(txn)
            txn = txn.parent
        return chain

    # -- write tracking ---------------------------------------------------------

    def record_dirty(self, object_id: ObjectId, pages) -> None:
        self.dirty.setdefault(object_id, set()).update(pages)

    def family_dirty_view(self) -> Dict[ObjectId, Set[int]]:
        """Dirty pages across this transaction and its live ancestors
        (used by release piggybacking at the root)."""
        merged: Dict[ObjectId, Set[int]] = {}
        for txn in [self] + self.ancestors():
            for object_id, pages in txn.dirty.items():
                merged.setdefault(object_id, set()).update(pages)
        return merged

    # -- state transitions ---------------------------------------------------------

    def precommit(self) -> None:
        """Sub-transaction commit: effects and locks pass to the parent.

        Rule 3 of §4.1 — callable only on sub-transactions whose
        children have all finished (enforced), and only once.
        """
        if self.parent is None:
            raise ProtocolError("roots commit, they do not pre-commit")
        if self.state is not TxnState.ACTIVE:
            raise ProtocolError(f"precommit of {self.id!r} in state {self.state}")
        for child in self.children:
            if child.state is TxnState.ACTIVE:
                raise ProtocolError(
                    f"{self.id!r} cannot pre-commit: child {child.id!r} active "
                    f"(rule 3: all sub-transactions must have finished)"
                )
        self.state = TxnState.PRECOMMITTED
        self.parent.undo.merge_child(self.undo)
        for object_id, pages in self.dirty.items():
            self.parent.record_dirty(object_id, pages)
        self.dirty.clear()
        self.parent.lock_objects.update(self.lock_objects)

    def mark_committed(self) -> None:
        if not self.is_root:
            raise ProtocolError("only roots reach COMMITTED")
        if self.state is not TxnState.ACTIVE:
            raise ProtocolError(f"commit of {self.id!r} in state {self.state}")
        self.state = TxnState.COMMITTED

    def mark_aborted(self) -> None:
        self.state = TxnState.ABORTED

    # -- observability ---------------------------------------------------------

    def trace_info(self) -> Dict[str, object]:
        """Compact description for trace-event args (span begin time, so
        the state field is omitted — it is always ACTIVE here)."""
        return {
            "txn": self.id,
            "label": self.label,
            "depth": self.depth,
            "is_root": self.is_root,
        }

    def __repr__(self) -> str:
        return f"<Txn {self.id!r} {self.state.value} @{self.node!r} {self.label}>"


@dataclass
class TxnStats:
    """Outcome counters for one run (root-transaction granularity)."""

    commits: int = 0
    aborts_user: int = 0
    aborts_deadlock: int = 0
    aborts_recursive: int = 0
    aborts_lock_timeout: int = 0
    aborts_crash: int = 0
    retries: int = 0
    sub_commits: int = 0
    sub_aborts: int = 0
    root_latencies: List[float] = field(default_factory=list)

    @property
    def total_roots(self) -> int:
        """Root families that reached a terminal outcome (deadlock and
        lock-timeout aborts are retried, so they are not terminal)."""
        return (self.commits + self.aborts_user + self.aborts_recursive
                + self.aborts_crash)

    @property
    def mean_latency(self) -> float:
        if not self.root_latencies:
            return 0.0
        return sum(self.root_latencies) / len(self.root_latencies)

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile (nearest-rank); ``fraction`` in [0, 1]."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if not self.root_latencies:
            return 0.0
        ordered = sorted(self.root_latencies)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def throughput(self, elapsed: float) -> float:
        """Committed roots per simulated second."""
        if elapsed <= 0:
            return 0.0
        return self.commits / elapsed

    def snapshot(self) -> Dict[str, object]:
        return {
            "commits": self.commits,
            "aborts_user": self.aborts_user,
            "aborts_deadlock": self.aborts_deadlock,
            "aborts_recursive": self.aborts_recursive,
            "aborts_lock_timeout": self.aborts_lock_timeout,
            "aborts_crash": self.aborts_crash,
            "retries": self.retries,
            "sub_commits": self.sub_commits,
            "sub_aborts": self.sub_aborts,
            "mean_latency": self.mean_latency,
        }
