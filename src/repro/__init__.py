"""repro — a reproduction of LOTEC (Graham & Sui, PODC 1999).

A software DSM consistency protocol for closed nested object
transactions, together with the full substrate the paper depends on:
a discrete-event simulated cluster, a parameterized network, paged
object memory with compile-time access analysis, a partitioned Global
Directory of Objects, nested object two-phase locking, and the
COTEC / OTEC / LOTEC protocol suite (plus the announced nested-object
Release Consistency extension).

Quick start::

    from repro import Attr, Cluster, ClusterConfig, method, shared_class

    @shared_class
    class Counter:
        value = Attr(size=8, default=0)

        @method
        def add(self, ctx, amount):
            self.value += amount

    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec"))
    counter = cluster.create(Counter)
    cluster.call(counter, "add", 3)
    assert cluster.read_attr(counter, "value") == 3

The same cluster can run over real localhost TCP sockets instead of
the virtual clock — pass ``transport="tcp"`` (and optionally
``transport_processes=True``) to :class:`ClusterConfig`; see
:class:`Transport` / :class:`SimTransport` / :class:`TcpTransport`.
"""

from repro.faults import FAULT_PRESETS, CrashEvent, FaultPlan
from repro.net import SimTransport, Transport
from repro.net.network_config import NetworkConfig
from repro.obs import MetricsRegistry, NullTracer, TraceEvent, Tracer
from repro.net.presets import (
    ETHERNET_10M,
    FAST_ETHERNET_100M,
    GIGABIT_1G,
    SOFTWARE_COSTS,
    preset_network,
)
from repro.objects.schema import Array, Attr, method, shared_class
from repro.runtime.cluster import Cluster, TxnTicket
from repro.runtime.config import ClusterConfig
from repro.runtime.verify import (
    check_conflict_serializability,
    check_serializability,
    replay_serially,
)
from repro.util.errors import (
    ConfigurationError,
    DeadlockError,
    LockTimeoutError,
    NodeCrashError,
    ProtocolError,
    RecursiveInvocationError,
    ReproError,
    TransactionAborted,
)

# Single source of truth is the installed package metadata
# (pyproject.toml); the literal fallback covers running straight from
# a source tree that was never pip-installed.
try:  # pragma: no cover - which branch runs depends on the install mode
    from importlib.metadata import PackageNotFoundError, version as _version

    __version__ = _version("repro")
except PackageNotFoundError:  # pragma: no cover
    __version__ = "1.2.0"

# The experiment harness imports repro.__version__ (cache keys), so it
# loads last.
from repro.bench import (  # noqa: E402
    ExperimentResult,
    ExperimentRunner,
    ResultCache,
    run_experiment,
)
from repro.check import (  # noqa: E402
    FuzzTask,
    check_reference_model,
    run_campaign,
    run_invariants,
    run_task,
)

__all__ = [
    "Array",
    "Attr",
    "Cluster",
    "ClusterConfig",
    "ConfigurationError",
    "CrashEvent",
    "DeadlockError",
    "ETHERNET_10M",
    "ExperimentResult",
    "ExperimentRunner",
    "FAULT_PRESETS",
    "FaultPlan",
    "FuzzTask",
    "LockTimeoutError",
    "NodeCrashError",
    "ResultCache",
    "FAST_ETHERNET_100M",
    "GIGABIT_1G",
    "MetricsRegistry",
    "NetworkConfig",
    "NullTracer",
    "ProtocolError",
    "RecursiveInvocationError",
    "ReproError",
    "SOFTWARE_COSTS",
    "SimTransport",
    "TcpTransport",
    "TraceEvent",
    "Tracer",
    "Transport",
    "TransactionAborted",
    "TxnTicket",
    "check_serializability",
    "check_conflict_serializability",
    "check_reference_model",
    "method",
    "preset_network",
    "replay_serially",
    "run_campaign",
    "run_experiment",
    "run_invariants",
    "run_task",
    "shared_class",
    "__version__",
]


def __getattr__(name):
    # Lazy, mirroring repro.net: the TCP backend's asyncio/threading
    # machinery loads only when the real-socket transport is requested.
    if name == "TcpTransport":
        from repro.net.tcp import TcpTransport

        return TcpTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
