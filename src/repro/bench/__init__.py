"""Experiment harness: one driver per paper figure/table.

Each driver regenerates a figure's underlying numbers (same series the
paper plots) on this reproduction's simulator and returns a structured
result; :mod:`repro.bench.report` renders them as ASCII tables.  See
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
paper-vs-measured outcomes.
"""

from repro.bench.experiments import (
    ExperimentResult,
    run_aggregation_ablation,
    run_bytes_figure,
    run_claims_messages,
    run_claims_reduction,
    run_gdo_cache_ablation,
    run_multicast_ablation,
    run_object_grain_ablation,
    run_per_class_ablation,
    run_prediction_ablation,
    run_prefetch_ablation,
    run_rc_ablation,
    run_recovery_ablation,
    run_time_figure,
)
from repro.bench.report import format_bar_chart, format_series_table, format_table

__all__ = [
    "ExperimentResult",
    "run_bytes_figure",
    "run_time_figure",
    "run_claims_reduction",
    "run_claims_messages",
    "run_rc_ablation",
    "run_recovery_ablation",
    "run_multicast_ablation",
    "run_prefetch_ablation",
    "run_per_class_ablation",
    "run_object_grain_ablation",
    "run_prediction_ablation",
    "run_gdo_cache_ablation",
    "run_aggregation_ablation",
    "format_table",
    "format_bar_chart",
    "format_series_table",
]
