"""Experiment harness: one driver per paper figure/table.

Each driver declares its runs as an
:class:`~repro.bench.parallel.ExperimentPlan` (one fresh deterministic
cluster per configuration under comparison) and regenerates a figure's
underlying numbers (same series the paper plots) on this
reproduction's simulator; :class:`~repro.bench.parallel.ExperimentRunner`
executes plans serially or across a process pool, memoized through
:class:`~repro.bench.cache.ResultCache`, and
:mod:`repro.bench.report` renders the results as ASCII tables.  See
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
paper-vs-measured outcomes.
"""

from repro.bench.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.bench.experiments import (
    EXPERIMENTS,
    PLAN_BUILDERS,
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    build_plan,
    run_aggregation_ablation,
    run_bytes_figure,
    run_claims_locality,
    run_claims_messages,
    run_claims_reduction,
    run_gdo_cache_ablation,
    run_multicast_ablation,
    run_object_grain_ablation,
    run_per_class_ablation,
    run_prediction_ablation,
    run_prefetch_ablation,
    run_rc_ablation,
    run_recovery_ablation,
    run_time_figure,
)
from repro.bench.parallel import (
    ExperimentPlan,
    ExperimentRunner,
    RunSpec,
    run_experiment,
)
from repro.bench.report import (
    format_bar_chart,
    format_bench_summary,
    format_series_table,
    format_table,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXPERIMENTS",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentRunner",
    "PLAN_BUILDERS",
    "RESULT_SCHEMA_VERSION",
    "ResultCache",
    "RunSpec",
    "build_plan",
    "run_experiment",
    "run_bytes_figure",
    "run_time_figure",
    "run_claims_reduction",
    "run_claims_messages",
    "run_claims_locality",
    "run_rc_ablation",
    "run_recovery_ablation",
    "run_multicast_ablation",
    "run_prefetch_ablation",
    "run_per_class_ablation",
    "run_object_grain_ablation",
    "run_prediction_ablation",
    "run_gdo_cache_ablation",
    "run_aggregation_ablation",
    "format_table",
    "format_bar_chart",
    "format_bench_summary",
    "format_series_table",
]
