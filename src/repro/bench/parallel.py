"""Parallel, cacheable execution of experiment plans.

Every experiment in :mod:`repro.bench.experiments` is a pure function
of its inputs: one deterministic cluster simulation per configuration
under comparison, with no shared state between configurations.  This
module turns that purity into throughput and memoization:

* a :class:`RunSpec` declares one cluster run — workload parameters,
  seed, :class:`~repro.runtime.config.ClusterConfig`, and the named
  extractor that reduces the finished run to a JSON-primitive
  *measurement* dict;
* an :class:`ExperimentPlan` is an ordered list of specs plus a
  ``collect`` function that folds the measurements (in spec order)
  into an :class:`~repro.bench.experiments.ExperimentResult`;
* an :class:`ExperimentRunner` executes the specs of one plan — or of
  a whole batch of plans at once — serially or across a
  ``multiprocessing`` pool, consulting an optional
  :class:`~repro.bench.cache.ResultCache` first.

Measurements are canonicalized through a JSON round-trip before they
reach ``collect``, so a result assembled from pool workers or from
cache files is byte-identical to one computed serially in-process.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.util.errors import ConfigurationError
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.runner import WorkloadRun, run_workload

#: Measurement extractors, by name.  Referenced by name (not by object)
#: so a :class:`RunSpec` stays picklable and cache keys stay stable.
EXTRACTORS: Dict[str, Callable[[WorkloadRun], Dict[str, object]]] = {}

#: Custom run builders for experiments that drive a cluster directly
#: instead of running a generated workload (e.g. ``abl-aggregate``).
#: A builder takes ``(config, args_dict)`` and returns a measurement.
BUILDERS: Dict[str, Callable[[ClusterConfig, Dict[str, object]],
                             Dict[str, object]]] = {}


def register_extractor(name: str):
    def decorate(fn):
        EXTRACTORS[name] = fn
        return fn
    return decorate


def register_builder(name: str):
    def decorate(fn):
        BUILDERS[name] = fn
        return fn
    return decorate


def _require_json_native(value, path: str) -> None:
    """Reject any payload value ``json.dumps`` could not round-trip.

    The cache fingerprints ``json.dumps(payload)``: a value that only
    serializes via a fallback ``repr`` (worst case one carrying a
    memory address) would make the key unstable across processes —
    silently always-missing, or colliding when the repr elides what
    differs.  Failing at construction turns that silent hazard into a
    loud :class:`ConfigurationError` naming the offending field.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _require_json_native(item, f"{path}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"RunSpec payload key {key!r} at {path} is "
                    f"{type(key).__name__}, not str — the cache key would "
                    f"depend on json.dumps coercion"
                )
            _require_json_native(item, f"{path}.{key}")
        return
    raise ConfigurationError(
        f"RunSpec payload value at {path} is {type(value).__name__} "
        f"({value!r}), not JSON-native — its cache fingerprint would fall "
        f"back to repr() and be unstable across processes"
    )


@dataclass(frozen=True)
class RunSpec:
    """One deterministic cluster run, declared rather than executed.

    Attributes:
        driver: experiment id this run belongs to (part of the cache
            key, so drivers never collide on each other's entries).
        key: label of this run within its experiment (protocol name,
            sweep point, variant, ...) — display only, not keyed.
        config: the full cluster configuration for the run.
        params: workload generator parameters; ``None`` when the run
            uses a custom ``builder`` instead of a generated workload.
        seed: workload-generation seed.
        builder: name of a registered custom builder ('' = the
            standard generate-workload-and-run path).
        builder_args: ``(name, value)`` pairs passed to the builder.
        extractor: name of the registered measurement extractor.
    """

    driver: str
    key: str
    config: ClusterConfig
    params: Optional[WorkloadParams] = None
    seed: int = 11
    builder: str = ""
    builder_args: Tuple[Tuple[str, object], ...] = ()
    extractor: str = "standard"

    def __post_init__(self) -> None:
        # The cache fingerprints json.dumps(payload); anything that
        # would serialize via a repr fallback must fail loudly here,
        # not silently produce an always-miss (or colliding) key.
        _require_json_native(self.payload(), "payload")

    def payload(self) -> Dict[str, object]:
        """Everything that determines this run's measurement, as plain
        data — the cache fingerprints exactly this."""
        return {
            "driver": self.driver,
            "seed": self.seed,
            "config": asdict(self.config),
            "params": None if self.params is None else asdict(self.params),
            "builder": self.builder,
            "builder_args": [list(pair) for pair in self.builder_args],
            "extractor": self.extractor,
        }


@dataclass
class ExperimentPlan:
    """An experiment as data: ordered runs plus the fold over them."""

    experiment: str
    specs: List[RunSpec]
    collect: Callable[[List[Dict[str, object]]], object]


# ---------------------------------------------------------------------------
# Measurement extraction
# ---------------------------------------------------------------------------

def state_digest_hash(cluster: Cluster) -> str:
    """Stable hash of the cluster's authoritative object state (the
    recovery ablation compares these across rollback mechanisms)."""
    blob = json.dumps(cluster.state_digest(), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cluster_measurement(cluster: Cluster) -> Dict[str, object]:
    """The cluster-level portion of a measurement: every aggregate any
    driver reads, reduced to JSON primitives."""
    stats = cluster.network_stats
    data_messages = sum(
        count
        for category, count in stats.by_category_messages.items()
        if category.is_consistency_data
    )
    categories = set(stats.by_category_messages) | set(stats.by_category_bytes)
    measurement: Dict[str, object] = {
        "sim_time": cluster.env.now,
        "network": {
            "total_bytes": stats.total_bytes,
            "total_messages": stats.total_messages,
            "total_time": stats.total_time,
            "consistency_bytes": stats.consistency_bytes(),
            "data_messages": data_messages,
            "remote_directory_messages": stats.directory_messages(),
            "by_category": {
                category.value: {
                    "messages": stats.by_category_messages.get(category, 0),
                    "bytes": stats.by_category_bytes.get(category, 0),
                }
                for category in sorted(categories, key=lambda c: c.value)
            },
        },
        "locks": cluster.lock_stats.snapshot(),
        "txn": {"mean_latency": cluster.txn_stats.mean_latency},
        "cache": {"hit_rate": cluster.cache_stats.hit_rate},
        "prediction": cluster.protocol.snapshot(),
        "state_digest": state_digest_hash(cluster),
    }
    if cluster.migration is not None:
        measurement["migration"] = cluster.migration.stats.snapshot()
    if cluster.tracer.enabled and cluster.metrics is not None:
        # Per-run metrics ride home inside the measurement, so a pool
        # worker's registry survives the trip back to the parent.
        measurement["metrics"] = cluster.metrics.snapshot()
    return measurement


@register_extractor("standard")
def extract_standard(run: WorkloadRun) -> Dict[str, object]:
    """Everything the figure/claim/ablation collectors read from one
    workload run."""
    stats = run.cluster.network_stats
    objects: Dict[str, Dict[str, object]] = {}
    for index, handle in enumerate(run.handles):
        traffic = stats.by_object.get(handle.object_id)
        if traffic is not None:
            objects[str(index)] = {
                "bytes": traffic.bytes,
                "data_bytes": traffic.data_bytes,
                "data_messages": traffic.data_messages,
                "messages": traffic.messages,
                "time": traffic.time,
            }
    measurement = cluster_measurement(run.cluster)
    measurement["committed"] = run.committed
    measurement["failed"] = run.failed
    measurement["objects"] = objects
    return measurement


def _canonical(measurement: Dict[str, object]) -> Dict[str, object]:
    """JSON round-trip: makes fresh, pooled, and cached measurements
    indistinguishable (tuples become lists, keys become strings)."""
    return json.loads(json.dumps(measurement))


def execute_run(spec: RunSpec) -> Dict[str, object]:
    """Run one spec to completion and reduce it to a measurement.

    This is the unit of work shipped to pool workers; everything it
    needs travels inside the picklable ``spec``.
    """
    # Builders and extractors are registered when the driver module
    # loads; a freshly spawned worker may not have imported it yet.
    import repro.bench.experiments  # noqa: F401

    if spec.builder:
        builder = BUILDERS[spec.builder]
        measurement = builder(spec.config, dict(spec.builder_args))
    else:
        if spec.params is None:
            raise ValueError(f"spec {spec.driver}/{spec.key} has neither "
                             f"workload params nor a builder")
        workload = generate_workload(spec.params, seed=spec.seed)
        run = run_workload(Cluster(spec.config), workload)
        measurement = EXTRACTORS[spec.extractor](run)
    return _canonical(measurement)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

@dataclass
class RunnerStats:
    """Outcome of the runner's most recent ``execute`` batch."""

    runs: int = 0
    cache_hits: int = 0
    executed: int = 0

    def record(self, runs: int, cache_hits: int) -> None:
        self.runs = runs
        self.cache_hits = cache_hits
        self.executed = runs - cache_hits


class ExperimentRunner:
    """Executes experiment plans, optionally in parallel and cached.

    ``jobs`` is the worker-process count (1 = serial, in-process).
    ``cache`` is a :class:`~repro.bench.cache.ResultCache` or ``None``.
    Results are always merged in spec order, so the output of a
    parallel run is byte-identical to the serial one.
    """

    def __init__(self, jobs: int = 1, cache=None):
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.last_stats = RunnerStats()
        self.last_plan_sizes: Dict[str, int] = {}
        self.last_plan_hits: Dict[str, int] = {}
        self._last_hit_flags: List[bool] = []

    # -- plan execution ----------------------------------------------------

    def run_plan(self, plan: ExperimentPlan):
        return plan.collect(self.execute(plan.specs))

    def run(self, experiment_id: str, **kwargs):
        """Build and run one registered experiment; extra keyword
        arguments reach the plan builder (seed, scale, num_nodes, plus
        any driver-specific knobs)."""
        from repro.bench.experiments import build_plan

        return self.run_plan(build_plan(experiment_id, **kwargs))

    def run_many(self, experiment_ids: Sequence[str], **kwargs):
        """Run a batch of experiments as one flat spec list, so the
        pool stays busy across experiment boundaries.  Returns
        ``{experiment id: result}`` in the requested order."""
        from repro.bench.experiments import build_plan

        plans = [(eid, build_plan(eid, **kwargs)) for eid in experiment_ids]
        specs = [spec for _, plan in plans for spec in plan.specs]
        measurements = self.execute(specs)
        self.last_plan_sizes = {eid: len(plan.specs) for eid, plan in plans}
        self.last_plan_hits = {}
        results = {}
        offset = 0
        for eid, plan in plans:
            size = len(plan.specs)
            chunk = measurements[offset:offset + size]
            self.last_plan_hits[eid] = sum(
                self._last_hit_flags[offset:offset + size]
            )
            offset += size
            results[eid] = plan.collect(chunk)
        return results

    # -- spec execution ----------------------------------------------------

    def execute(self, specs: Sequence[RunSpec]) -> List[Dict[str, object]]:
        """Measurements for every spec, in order: cache first, then the
        pool (or the current process) for the misses."""
        results: List[Optional[Dict[str, object]]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending:
            todo = [specs[index] for index in pending]
            if self.jobs > 1 and len(todo) > 1:
                processes = min(self.jobs, len(todo))
                with multiprocessing.get_context().Pool(processes) as pool:
                    fresh = pool.map(execute_run, todo, chunksize=1)
            else:
                fresh = [execute_run(spec) for spec in todo]
            for index, measurement in zip(pending, fresh):
                results[index] = measurement
                if self.cache is not None:
                    self.cache.put(specs[index], measurement)
        self.last_stats.record(runs=len(specs),
                               cache_hits=len(specs) - len(pending))
        executed = set(pending)
        self._last_hit_flags = [
            index not in executed for index in range(len(specs))
        ]
        return results  # type: ignore[return-value]


def run_experiment(experiment_id: str, *, jobs: int = 1, cache=None,
                   **kwargs):
    """One-call public entry point: run a registered experiment.

    >>> result = run_experiment("fig6", jobs=4, scale=0.5)
    >>> print(result.render())
    """
    return ExperimentRunner(jobs=jobs, cache=cache).run(
        experiment_id, **kwargs
    )
