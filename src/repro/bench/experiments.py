"""Experiment drivers: one per paper figure / table / ablation.

All drivers follow the same pattern: generate one workload from a
seed, run it on one fresh cluster per configuration under comparison
(identical load, only the knob under study differs), and return the
series the corresponding paper artifact plots.  ``scale`` shrinks the
root-transaction count so the same driver serves unit tests (fast),
benches (full), and exploratory runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.report import format_bar_chart, format_series_table
from repro.net.presets import SOFTWARE_COSTS, preset_network
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import Workload, generate_workload
from repro.workload.params import SCENARIOS, WorkloadParams
from repro.workload.runner import WorkloadRun, run_workload

THREE_PROTOCOLS = ("cotec", "otec", "lotec")
FOUR_PROTOCOLS = ("cotec", "otec", "lotec", "rc")
FIVE_PROTOCOLS = ("cotec", "otec", "lotec", "hlotec", "rc")


@dataclass
class ExperimentResult:
    """Series data plus run metadata for one experiment."""

    experiment: str
    x_label: str
    series: Dict[str, Dict[str, object]]
    meta: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return format_series_table(self.experiment, self.x_label, self.series)

    def render_chart(self, width: int = 48) -> str:
        """ASCII bar-chart view of the same series (the paper's bars)."""
        return format_bar_chart(self.experiment, self.series, width=width)

    def totals(self) -> Dict[str, float]:
        """Sum of each series over all x values (numeric entries)."""
        return {
            name: sum(v for v in points.values() if isinstance(v, (int, float)))
            for name, points in self.series.items()
        }


def _base_config(num_nodes: int, seed: int, **overrides) -> ClusterConfig:
    overrides.setdefault("audit_accesses", False)
    return ClusterConfig(num_nodes=num_nodes, seed=seed, **overrides)


def _run(config: ClusterConfig, workload: Workload) -> WorkloadRun:
    return run_workload(Cluster(config), workload)


def _scenario_params(scenario: str, scale: float) -> WorkloadParams:
    try:
        params = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return params.scaled(scale)


def _object_bytes_series(run: WorkloadRun, object_indexes: Sequence[int]):
    stats = run.cluster.network_stats
    series = {}
    for index in object_indexes:
        handle = run.handles[index]
        traffic = stats.by_object.get(handle.object_id)
        series[f"O{index}"] = traffic.data_bytes if traffic else 0
    return series


def _select_objects(run: WorkloadRun, count: int) -> List[int]:
    """The paper plots "various shared objects ... selected to reflect
    a variety of reference patterns": take the most-referenced objects,
    in object-id order."""
    stats = run.cluster.network_stats
    ranked = sorted(
        range(len(run.handles)),
        key=lambda index: -(
            stats.by_object.get(run.handles[index].object_id).bytes
            if run.handles[index].object_id in stats.by_object
            else 0
        ),
    )
    return sorted(ranked[:count])


# ---------------------------------------------------------------------------
# Figures 2-5: bytes to maintain consistency, per shared object
# ---------------------------------------------------------------------------

def run_bytes_figure(scenario: str, seed: int = 11, num_nodes: int = 4,
                     scale: float = 1.0, objects_shown: int = 15,
                     protocols: Sequence[str] = THREE_PROTOCOLS) -> ExperimentResult:
    """Figures 2-5: per-object consistency bytes under each protocol."""
    params = _scenario_params(scenario, scale)
    workload = generate_workload(params, seed=seed)
    runs: Dict[str, WorkloadRun] = {}
    for protocol in protocols:
        runs[protocol] = _run(
            _base_config(num_nodes, seed, protocol=protocol), workload
        )
    # Choose the displayed objects from the baseline run so every
    # protocol reports the same x axis.
    shown = _select_objects(runs[protocols[0]], objects_shown)
    series = {
        protocol: _object_bytes_series(run, shown)
        for protocol, run in runs.items()
    }
    return ExperimentResult(
        experiment=f"bytes per shared object — {scenario}",
        x_label="object",
        series=series,
        meta={
            "scenario": scenario,
            "committed": {p: r.committed for p, r in runs.items()},
            "failed": {p: r.failed for p, r in runs.items()},
            "total_data_bytes": {
                p: r.cluster.network_stats.consistency_bytes()
                for p, r in runs.items()
            },
            "total_messages": {
                p: r.cluster.network_stats.total_messages
                for p, r in runs.items()
            },
        },
    )


# ---------------------------------------------------------------------------
# Figures 6-8: total message time vs software cost, per bandwidth
# ---------------------------------------------------------------------------

def run_time_figure(bandwidth: str, scenario: str = "large-high",
                    seed: int = 11, num_nodes: int = 4, scale: float = 1.0,
                    software_costs: Optional[Sequence[str]] = None,
                    protocols: Sequence[str] = THREE_PROTOCOLS) -> ExperimentResult:
    """Figures 6-8: total message time for one hot shared object across
    per-message software costs at a fixed bandwidth."""
    costs = list(software_costs or SOFTWARE_COSTS)
    params = _scenario_params(scenario, scale)
    workload = generate_workload(params, seed=seed)
    series: Dict[str, Dict[str, object]] = {p: {} for p in protocols}
    hot_series: Dict[str, Dict[str, float]] = {p: {} for p in protocols}
    hot_index: Optional[int] = None
    for cost in costs:
        network = preset_network(bandwidth, cost)
        for protocol in protocols:
            run = _run(
                _base_config(num_nodes, seed, protocol=protocol,
                             network=network),
                workload,
            )
            if hot_index is None:
                hot_index = _select_objects(run, 1)[0]
            stats = run.cluster.network_stats
            # Cluster-wide total message time in microseconds (the
            # stable aggregate of the per-object quantity the paper
            # plots; single-object traces for the hottest object are
            # kept in meta, but retry nondeterminism across sweep
            # points makes them noisy).
            series[protocol][cost] = stats.total_time * 1e6
            handle = run.handles[hot_index]
            traffic = stats.by_object.get(handle.object_id)
            hot_series[protocol][cost] = (
                (traffic.time if traffic else 0.0) * 1e6
            )
    return ExperimentResult(
        experiment=f"total message time (us) @ {bandwidth}",
        x_label="software cost",
        series=series,
        meta={"bandwidth": bandwidth, "hot_object": hot_index,
              "hot_object_series": hot_series, "scenario": scenario},
    )


# ---------------------------------------------------------------------------
# §5 prose claims
# ---------------------------------------------------------------------------

def run_claims_reduction(seed: int = 11, num_nodes: int = 4,
                         scale: float = 1.0,
                         scenarios: Optional[Sequence[str]] = None) -> ExperimentResult:
    """"OTEC generally outperforms COTEC by approximately 20-25% while
    LOTEC outperforms OTEC by another 5-10%" — aggregate consistency
    bytes per scenario, with reduction percentages."""
    chosen = list(scenarios or SCENARIOS)
    series: Dict[str, Dict[str, object]] = {p: {} for p in THREE_PROTOCOLS}
    reductions: Dict[str, Dict[str, float]] = {}
    for scenario in chosen:
        workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
        totals = {}
        for protocol in THREE_PROTOCOLS:
            run = _run(_base_config(num_nodes, seed, protocol=protocol), workload)
            totals[protocol] = run.cluster.network_stats.consistency_bytes()
            series[protocol][scenario] = totals[protocol]
        reductions[scenario] = {
            "otec_vs_cotec": 1 - totals["otec"] / totals["cotec"],
            "lotec_vs_otec": 1 - totals["lotec"] / totals["otec"],
        }
    return ExperimentResult(
        experiment="aggregate consistency bytes per scenario",
        x_label="scenario",
        series=series,
        meta={"reductions": reductions},
    )


def run_claims_messages(scenario: str = "large-high", seed: int = 11,
                        num_nodes: int = 4, scale: float = 1.0) -> ExperimentResult:
    """"LOTEC also sends many more messages (albeit small ones) than
    OTEC or COTEC" — message counts and mean message size."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {
        "messages": {}, "bytes": {}, "mean_message_bytes": {},
    }
    for protocol in THREE_PROTOCOLS:
        run = _run(_base_config(num_nodes, seed, protocol=protocol), workload)
        stats = run.cluster.network_stats
        series["messages"][protocol] = stats.total_messages
        series["bytes"][protocol] = stats.total_bytes
        series["mean_message_bytes"][protocol] = (
            stats.total_bytes / stats.total_messages if stats.total_messages else 0
        )
    return ExperimentResult(
        experiment=f"message counts vs sizes — {scenario}",
        x_label="metric",
        series=series,
        meta={"scenario": scenario},
    )


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def run_rc_ablation(scenario: str = "medium-high", seed: int = 11,
                    num_nodes: int = 4, scale: float = 1.0) -> ExperimentResult:
    """§6 future work: nested-object Release Consistency (and the
    home-based scope-consistency variant) versus the COTEC/OTEC/LOTEC
    suite."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {"data_bytes": {}, "messages": {}}
    for protocol in FIVE_PROTOCOLS:
        run = _run(_base_config(num_nodes, seed, protocol=protocol), workload)
        stats = run.cluster.network_stats
        series["data_bytes"][protocol] = stats.consistency_bytes()
        series["messages"][protocol] = stats.total_messages
    return ExperimentResult(
        experiment=f"RC extension vs lazy protocols — {scenario}",
        x_label="metric",
        series=series,
        meta={"scenario": scenario},
    )


def run_object_grain_ablation(scenario: str = "medium-high", seed: int = 11,
                              num_nodes: int = 4,
                              scale: float = 1.0) -> ExperimentResult:
    """§4.2: page-grain vs object-grain (DSD) transfer under LOTEC —
    the false-sharing-free mode ships only object bytes, not whole
    pages."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {
        "data_bytes": {}, "messages": {}, "data_messages": {},
        "mean_data_message_bytes": {},
    }
    for grain in ("page", "object"):
        run = _run(
            _base_config(num_nodes, seed, protocol="lotec",
                         transfer_grain=grain),
            workload,
        )
        stats = run.cluster.network_stats
        data_messages = sum(
            count
            for category, count in stats.by_category_messages.items()
            if category.is_consistency_data
        )
        series["data_bytes"][grain] = stats.consistency_bytes()
        series["messages"][grain] = stats.total_messages
        series["data_messages"][grain] = data_messages
        series["mean_data_message_bytes"][grain] = (
            stats.consistency_bytes() / data_messages if data_messages else 0
        )
    return ExperimentResult(
        experiment=f"LOTEC transfer grain (page vs object/DSD) — {scenario}",
        x_label="metric",
        series=series,
        meta={"scenario": scenario},
    )


def run_prediction_ablation(seed: int = 11, num_nodes: int = 4,
                            scale: float = 1.0,
                            fractions: Sequence[Tuple[float, float]] = (
                                (0.1, 0.2), (0.2, 0.5), (0.5, 0.8), (0.9, 1.0),
                            )) -> ExperimentResult:
    """Design-choice ablation: how LOTEC's advantage over OTEC varies
    with the fraction of an object each method accesses.  Methods
    touching nearly everything erase the gap (prediction ~ whole
    object); narrow methods widen it."""
    series: Dict[str, Dict[str, object]] = {
        "otec_bytes": {}, "lotec_bytes": {}, "lotec_saving": {},
        "demand_fetches": {},
    }
    for fraction in fractions:
        label = f"{fraction[0]:.0%}-{fraction[1]:.0%}"
        params = _scenario_params("large-high", scale)
        params = WorkloadParams(
            **{**params.__dict__, "access_fraction": fraction}
        )
        workload = generate_workload(params, seed=seed)
        totals = {}
        for protocol in ("otec", "lotec"):
            run = _run(_base_config(num_nodes, seed, protocol=protocol), workload)
            totals[protocol] = run.cluster.network_stats.consistency_bytes()
            if protocol == "lotec":
                series["demand_fetches"][label] = (
                    run.cluster.prediction_stats.demand_fetches
                )
        series["otec_bytes"][label] = totals["otec"]
        series["lotec_bytes"][label] = totals["lotec"]
        series["lotec_saving"][label] = round(
            1 - totals["lotec"] / totals["otec"], 4
        )
    return ExperimentResult(
        experiment="LOTEC saving vs method access fraction",
        x_label="access fraction",
        series=series,
    )


def run_gdo_cache_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4,
                           scale: float = 1.0) -> ExperimentResult:
    """Design-choice ablation: holder-list caching at the holding site
    (§4.1's local/global split) versus sending every lock operation to
    the GDO home node."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {
        "lock_messages": {}, "total_messages": {}, "local_ops": {},
        "cache_hit_rate": {},
    }
    for enabled in (True, False):
        label = "cached" if enabled else "uncached"
        run = _run(
            _base_config(num_nodes, seed, protocol="lotec",
                         gdo_cache_enabled=enabled),
            workload,
        )
        stats = run.cluster.network_stats
        from repro.net.message import MessageCategory

        lock_messages = sum(
            stats.category_messages(category)
            for category in (
                MessageCategory.LOCK_REQUEST,
                MessageCategory.LOCK_GRANT,
                MessageCategory.LOCK_RELEASE,
            )
        )
        series["lock_messages"][label] = lock_messages
        series["total_messages"][label] = stats.total_messages
        series["local_ops"][label] = run.cluster.lock_stats.local_acquisitions
        series["cache_hit_rate"][label] = round(
            run.cluster.cache_stats.hit_rate, 4
        )
    return ExperimentResult(
        experiment=f"GDO holder-list caching — {scenario}",
        x_label="metric",
        series=series,
        meta={"scenario": scenario},
    )


def run_recovery_ablation(scenario: str = "medium-high", seed: int = 11,
                          num_nodes: int = 4,
                          scale: float = 1.0) -> ExperimentResult:
    """§4.1 offers two rollback mechanisms — "local UNDO logs or shadow
    pages".  Compare their bookkeeping volume and confirm identical
    outcomes on the same workload."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {
        "committed": {}, "sim_time_ms": {}, "data_bytes": {},
    }
    digests = {}
    for recovery in ("undo", "shadow"):
        run = _run(
            _base_config(num_nodes, seed, protocol="lotec",
                         recovery=recovery),
            workload,
        )
        series["committed"][recovery] = run.committed
        series["sim_time_ms"][recovery] = run.cluster.env.now * 1e3
        series["data_bytes"][recovery] = (
            run.cluster.network_stats.consistency_bytes()
        )
        digests[recovery] = run.cluster.state_digest()
    return ExperimentResult(
        experiment=f"recovery mechanism (undo log vs shadow pages) — {scenario}",
        x_label="metric",
        series=series,
        meta={"states_equal": digests["undo"] == digests["shadow"]},
    )


def run_multicast_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4,
                           scale: float = 1.0) -> ExperimentResult:
    """§6: "the use of multicast-capable networks" — eager RC pushes
    collapse from one unicast per replica to a single transmission."""
    workload = generate_workload(_scenario_params(scenario, scale), seed=seed)
    series: Dict[str, Dict[str, object]] = {
        "push_bytes": {}, "push_messages": {}, "total_bytes": {},
    }
    from repro.net.message import MessageCategory

    for multicast in (False, True):
        label = "multicast" if multicast else "unicast"
        config = _base_config(num_nodes, seed, protocol="rc")
        config = config.with_network(config.network.with_multicast(multicast))
        run = _run(config, workload)
        stats = run.cluster.network_stats
        series["push_bytes"][label] = stats.category_bytes(
            MessageCategory.UPDATE_PUSH
        )
        series["push_messages"][label] = stats.category_messages(
            MessageCategory.UPDATE_PUSH
        )
        series["total_bytes"][label] = stats.total_bytes
    return ExperimentResult(
        experiment=f"RC update pushes, unicast vs multicast — {scenario}",
        x_label="metric",
        series=series,
        meta={"scenario": scenario},
    )


def run_prefetch_ablation(seed: int = 11, num_nodes: int = 4,
                          scale: float = 1.0,
                          software_cost: str = "100us") -> ExperimentResult:
    """§5.1/§6: optimistic pre-acquisition and object prefetching
    "effectively hides the latency of remote lock acquisition".

    Run a low-contention, deeply nested workload (prefetch's favourable
    regime: many lock round trips, few conflicts) and report mean root
    latency against message cost for each prefetch mode."""
    params = WorkloadParams(
        num_objects=60, num_classes=4, num_roots=max(6, int(30 * scale)),
        pages_min=1, pages_max=3, max_depth=3, mean_branch=3.0,
        skew=0.0, mean_interarrival_s=0.001,
    )
    workload = generate_workload(params, seed=seed)
    network = preset_network("100Mbps", software_cost)
    series: Dict[str, Dict[str, object]] = {
        "mean_latency_us": {}, "messages": {}, "prefetch_granted": {},
        "prefetch_denied": {}, "deadlocks": {},
    }
    for mode in ("off", "locks", "locks+pages"):
        run = _run(
            _base_config(num_nodes, seed, protocol="lotec",
                         prefetch=mode, network=network),
            workload,
        )
        cluster = run.cluster
        series["mean_latency_us"][mode] = (
            cluster.txn_stats.mean_latency * 1e6
        )
        series["messages"][mode] = cluster.network_stats.total_messages
        series["prefetch_granted"][mode] = cluster.lock_stats.prefetch_granted
        series["prefetch_denied"][mode] = cluster.lock_stats.prefetch_denied
        series["deadlocks"][mode] = cluster.lock_stats.deadlocks
    return ExperimentResult(
        experiment="optimistic pre-acquisition / prefetch (low contention)",
        x_label="metric",
        series=series,
    )


def run_per_class_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4,
                           scale: float = 1.0) -> ExperimentResult:
    """§6: per-class consistency protocols.  Put the single hottest
    class on RC (its updates push eagerly to readers) while the rest
    stay on LOTEC, and compare against the pure configurations."""
    params = _scenario_params(scenario, scale)
    workload = generate_workload(params, seed=seed)
    hottest_class = workload.classes[0].schema.name
    configurations = {
        "lotec": (),
        "mixed": ((hottest_class, "rc"),),
        "rc": tuple(
            (info.schema.name, "rc") for info in workload.classes
        ),
    }
    series: Dict[str, Dict[str, object]] = {"data_bytes": {}, "messages": {}}
    for label, class_protocols in configurations.items():
        run = _run(
            _base_config(num_nodes, seed, protocol="lotec",
                         class_protocols=class_protocols),
            workload,
        )
        stats = run.cluster.network_stats
        series["data_bytes"][label] = stats.consistency_bytes()
        series["messages"][label] = stats.total_messages
    return ExperimentResult(
        experiment=f"per-class protocol mix (hot class on RC) — {scenario}",
        x_label="metric",
        series=series,
        meta={"hot_class": hottest_class},
    )


def run_aggregation_ablation(seed: int = 11, num_nodes: int = 4,
                             scale: float = 1.0,
                             group_size: int = 8,
                             num_groups: int = 8) -> ExperimentResult:
    """§5.1: "Heavily object-based environments can sometimes aggregate
    related small objects into larger objects for the purpose of
    decreasing the cost of concurrency control and consistency
    maintenance."

    The same logical work — bump every element of a group — is run
    twice: against ``group_size`` separate single-attribute objects
    (one lock acquisition per element, per §5.1 "the larger objects
    are, the fewer lock operations are necessary") and against one
    aggregated object holding the group as an array."""
    from repro import Array, Attr, method, shared_class
    from repro.net.message import MessageCategory

    @shared_class
    class FineItem:
        value = Attr(size=256, default=0)

        @method
        def bump(self, ctx, amount):
            self.value += amount
            return self.value

    @shared_class
    class GroupTask:
        runs = Attr(size=8, default=0)

        @method
        def touch_group(self, ctx, items, amount):
            total = 0
            for item in items:
                total += yield ctx.invoke(item, "bump", amount)
            self.runs += 1
            return total

    class _CompositeFactory:
        """Composite class must be built per group size."""

        @staticmethod
        def build(count):
            @shared_class
            class Composite:
                values = Array(size=256, count=count, default=0)
                runs = Attr(size=8, default=0)

                @method
                def bump_all(self, ctx, amount):
                    total = 0
                    for index in range(len(self.values)):
                        self.values[index] += amount
                        total += self.values[index]
                    self.runs += 1
                    return total

            return Composite

    Composite = _CompositeFactory.build(group_size)
    rounds = max(2, int(12 * scale))
    series: Dict[str, Dict[str, object]] = {
        "global_lock_ops": {}, "lock_messages": {}, "total_messages": {},
        "data_bytes": {},
    }

    def record(label, cluster):
        stats = cluster.network_stats
        series["global_lock_ops"][label] = (
            cluster.lock_stats.global_acquisitions
        )
        series["lock_messages"][label] = sum(
            stats.category_messages(category)
            for category in (
                MessageCategory.LOCK_REQUEST,
                MessageCategory.LOCK_GRANT,
                MessageCategory.LOCK_RELEASE,
            )
        )
        series["total_messages"][label] = stats.total_messages
        series["data_bytes"][label] = stats.consistency_bytes()

    # Fine granularity: one object per element.
    fine = Cluster(_base_config(num_nodes, seed, protocol="lotec"))
    tasks = [fine.create(GroupTask) for _ in range(num_groups)]
    groups = [
        tuple(fine.create(FineItem) for _ in range(group_size))
        for _ in range(num_groups)
    ]
    for round_index in range(rounds):
        for group_index in range(num_groups):
            # Rotate the executing node each round so lock ownership
            # genuinely moves between sites.
            node = fine.nodes[(group_index + round_index) % num_nodes]
            fine.submit(
                tasks[group_index], "touch_group",
                groups[group_index], round_index,
                node=node, delay=round_index * 0.001,
            )
    fine.run()
    record("fine", fine)

    # Coarse granularity: the group aggregated into one object.
    coarse = Cluster(_base_config(num_nodes, seed, protocol="lotec"))
    composites = [coarse.create(Composite) for _ in range(num_groups)]
    for round_index in range(rounds):
        for composite_index, composite in enumerate(composites):
            node = coarse.nodes[(composite_index + round_index) % num_nodes]
            coarse.submit(composite, "bump_all", round_index,
                          node=node, delay=round_index * 0.001)
    coarse.run()
    record("coarse", coarse)
    return ExperimentResult(
        experiment=(
            f"object aggregation ({num_groups} groups x {group_size} "
            f"elements, {rounds} rounds)"
        ),
        x_label="metric",
        series=series,
        meta={
            "fine_state_sum": sum(
                fine.read_attr(item, "value")
                for group in groups for item in group
            ),
            "coarse_state_sum": sum(
                sum(coarse.read_attr(composite, "values"))
                for composite in composites
            ),
        },
    )
