"""Experiment drivers: one per paper figure / table / ablation.

All drivers follow the same declarative pattern: a ``plan_*`` builder
turns the driver's arguments into an
:class:`~repro.bench.parallel.ExperimentPlan` — an ordered list of
:class:`~repro.bench.parallel.RunSpec` (one fresh deterministic
cluster per configuration under comparison; identical load, only the
knob under study differs) plus a ``collect`` function that folds the
per-run measurements into the series the corresponding paper artifact
plots.  The public ``run_*`` functions execute their plan with a
serial in-process :class:`~repro.bench.parallel.ExperimentRunner` by
default; pass ``runner=ExperimentRunner(jobs=N, cache=...)`` to fan
the same plan out over a process pool and/or the on-disk result cache.

``scale`` shrinks the root-transaction count so the same driver serves
unit tests (fast), benches (full), and exploratory runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import (
    ExperimentPlan,
    ExperimentRunner,
    RunSpec,
    cluster_measurement,
    register_builder,
)
from repro.bench.report import format_bar_chart, format_series_table
from repro.gdo.migration import MigrationConfig
from repro.net.presets import SOFTWARE_COSTS, preset_network
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS, WorkloadParams

THREE_PROTOCOLS = ("cotec", "otec", "lotec")
FOUR_PROTOCOLS = ("cotec", "otec", "lotec", "rc")
FIVE_PROTOCOLS = ("cotec", "otec", "lotec", "hlotec", "rc")

#: Version of the JSON envelope written by
#: :meth:`ExperimentResult.to_json` (the ``BENCH_*.json`` format).
RESULT_SCHEMA_VERSION = 1


def _json_safe(value) -> bool:
    import json

    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


@dataclass
class ExperimentResult:
    """Series data plus run metadata for one experiment."""

    experiment: str
    x_label: str
    series: Dict[str, Dict[str, object]]
    meta: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return format_series_table(self.experiment, self.x_label, self.series)

    def render_chart(self, width: int = 48) -> str:
        """ASCII bar-chart view of the same series (the paper's bars)."""
        return format_bar_chart(self.experiment, self.series, width=width)

    def totals(self) -> Dict[str, float]:
        """Sum of each series over all x values (numeric entries)."""
        return {
            name: sum(v for v in points.values() if isinstance(v, (int, float)))
            for name, points in self.series.items()
        }

    def to_json(self) -> Dict[str, object]:
        """The stable on-disk form (``BENCH_*.json`` trajectory files):
        a versioned envelope around the series, with any
        non-JSON-serializable meta entries dropped."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "experiment": self.experiment,
            "x_label": self.x_label,
            "series": self.series,
            "meta": {
                key: value
                for key, value in self.meta.items()
                if _json_safe(value)
            },
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ExperimentResult":
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(this build reads schema {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            experiment=data["experiment"],
            x_label=data["x_label"],
            series=data["series"],
            meta=dict(data.get("meta", {})),
        )


def _base_config(num_nodes: int, seed: int, **overrides) -> ClusterConfig:
    overrides.setdefault("audit_accesses", False)
    return ClusterConfig(num_nodes=num_nodes, seed=seed, **overrides)


def _scenario_params(scenario: str, scale: float) -> WorkloadParams:
    try:
        params = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return params.scaled(scale)


def _runner(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else ExperimentRunner()


# ---------------------------------------------------------------------------
# Measurement accessors (collect-side mirror of the old WorkloadRun reads)
# ---------------------------------------------------------------------------

def _object_field(measurement: Dict, index: int, name: str, default=0):
    traffic = measurement["objects"].get(str(index))
    return traffic[name] if traffic is not None else default


def _ranked_objects(measurement: Dict, num_objects: int) -> List[int]:
    """The paper plots "various shared objects ... selected to reflect
    a variety of reference patterns": rank objects by total traffic
    (stable, so ties keep object-id order)."""
    return sorted(
        range(num_objects),
        key=lambda index: -_object_field(measurement, index, "bytes"),
    )


def _select_objects(measurement: Dict, num_objects: int,
                    count: int) -> List[int]:
    """Top ``count`` most-referenced objects, in object-id order."""
    return sorted(_ranked_objects(measurement, num_objects)[:count])


# ---------------------------------------------------------------------------
# Figures 2-5: bytes to maintain consistency, per shared object
# ---------------------------------------------------------------------------

def plan_bytes_figure(scenario: str, seed: int = 11, num_nodes: int = 4,
                      scale: float = 1.0, objects_shown: int = 15,
                      protocols: Sequence[str] = THREE_PROTOCOLS,
                      ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    protocols = tuple(protocols)
    specs = [
        RunSpec(
            driver=f"bytes-figure:{scenario}", key=protocol,
            config=_base_config(num_nodes, seed, protocol=protocol),
            params=params, seed=seed,
        )
        for protocol in protocols
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        by_protocol = dict(zip(protocols, measurements))
        # Choose the displayed objects from the baseline run so every
        # protocol reports the same x axis.
        shown = _select_objects(
            measurements[0], params.num_objects, objects_shown
        )
        series = {
            protocol: {
                f"O{index}": _object_field(m, index, "data_bytes")
                for index in shown
            }
            for protocol, m in by_protocol.items()
        }
        return ExperimentResult(
            experiment=f"bytes per shared object — {scenario}",
            x_label="object",
            series=series,
            meta={
                "scenario": scenario,
                "committed": {
                    p: m["committed"] for p, m in by_protocol.items()
                },
                "failed": {p: m["failed"] for p, m in by_protocol.items()},
                "total_data_bytes": {
                    p: m["network"]["consistency_bytes"]
                    for p, m in by_protocol.items()
                },
                "total_messages": {
                    p: m["network"]["total_messages"]
                    for p, m in by_protocol.items()
                },
            },
        )

    return ExperimentPlan(f"bytes-figure:{scenario}", specs, collect)


def run_bytes_figure(scenario: str, seed: int = 11, num_nodes: int = 4,
                     scale: float = 1.0, objects_shown: int = 15,
                     protocols: Sequence[str] = THREE_PROTOCOLS,
                     runner: Optional[ExperimentRunner] = None,
                     ) -> ExperimentResult:
    """Figures 2-5: per-object consistency bytes under each protocol."""
    return _runner(runner).run_plan(plan_bytes_figure(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
        objects_shown=objects_shown, protocols=protocols,
    ))


# ---------------------------------------------------------------------------
# Figures 6-8: total message time vs software cost, per bandwidth
# ---------------------------------------------------------------------------

def plan_time_figure(bandwidth: str, scenario: str = "large-high",
                     seed: int = 11, num_nodes: int = 4, scale: float = 1.0,
                     software_costs: Optional[Sequence[str]] = None,
                     protocols: Sequence[str] = THREE_PROTOCOLS,
                     ) -> ExperimentPlan:
    costs = list(software_costs or SOFTWARE_COSTS)
    protocols = tuple(protocols)
    params = _scenario_params(scenario, scale)
    points = [(cost, protocol) for cost in costs for protocol in protocols]
    specs = [
        RunSpec(
            driver=f"time-figure:{bandwidth}:{scenario}",
            key=f"{protocol}@{cost}",
            config=_base_config(
                num_nodes, seed, protocol=protocol,
                network=preset_network(bandwidth, cost),
            ),
            params=params, seed=seed,
        )
        for cost, protocol in points
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {p: {} for p in protocols}
        hot_series: Dict[str, Dict[str, float]] = {p: {} for p in protocols}
        # The hot object is picked once, from the first run, so every
        # sweep point traces the same object.
        hot_index = _select_objects(measurements[0], params.num_objects, 1)[0]
        for (cost, protocol), m in zip(points, measurements):
            # Cluster-wide total message time in microseconds (the
            # stable aggregate of the per-object quantity the paper
            # plots; single-object traces for the hottest object are
            # kept in meta, but retry nondeterminism across sweep
            # points makes them noisy).
            series[protocol][cost] = m["network"]["total_time"] * 1e6
            hot_series[protocol][cost] = (
                _object_field(m, hot_index, "time", 0.0) * 1e6
            )
        return ExperimentResult(
            experiment=f"total message time (us) @ {bandwidth}",
            x_label="software cost",
            series=series,
            meta={"bandwidth": bandwidth, "hot_object": hot_index,
                  "hot_object_series": hot_series, "scenario": scenario},
        )

    return ExperimentPlan(f"time-figure:{bandwidth}:{scenario}", specs,
                          collect)


def run_time_figure(bandwidth: str, scenario: str = "large-high",
                    seed: int = 11, num_nodes: int = 4, scale: float = 1.0,
                    software_costs: Optional[Sequence[str]] = None,
                    protocols: Sequence[str] = THREE_PROTOCOLS,
                    runner: Optional[ExperimentRunner] = None,
                    ) -> ExperimentResult:
    """Figures 6-8: total message time for one hot shared object across
    per-message software costs at a fixed bandwidth."""
    return _runner(runner).run_plan(plan_time_figure(
        bandwidth, scenario=scenario, seed=seed, num_nodes=num_nodes,
        scale=scale, software_costs=software_costs, protocols=protocols,
    ))


# ---------------------------------------------------------------------------
# §5 prose claims
# ---------------------------------------------------------------------------

def plan_claims_reduction(seed: int = 11, num_nodes: int = 4,
                          scale: float = 1.0,
                          scenarios: Optional[Sequence[str]] = None,
                          ) -> ExperimentPlan:
    chosen = list(scenarios or SCENARIOS)
    points = [
        (scenario, protocol)
        for scenario in chosen for protocol in THREE_PROTOCOLS
    ]
    specs = [
        RunSpec(
            driver="claims-reduction", key=f"{protocol}@{scenario}",
            config=_base_config(num_nodes, seed, protocol=protocol),
            params=_scenario_params(scenario, scale), seed=seed,
        )
        for scenario, protocol in points
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            p: {} for p in THREE_PROTOCOLS
        }
        reductions: Dict[str, Dict[str, float]] = {}
        by_point = dict(zip(points, measurements))
        for scenario in chosen:
            totals = {
                protocol: by_point[(scenario, protocol)]
                ["network"]["consistency_bytes"]
                for protocol in THREE_PROTOCOLS
            }
            for protocol in THREE_PROTOCOLS:
                series[protocol][scenario] = totals[protocol]
            reductions[scenario] = {
                "otec_vs_cotec": 1 - totals["otec"] / totals["cotec"],
                "lotec_vs_otec": 1 - totals["lotec"] / totals["otec"],
            }
        return ExperimentResult(
            experiment="aggregate consistency bytes per scenario",
            x_label="scenario",
            series=series,
            meta={"reductions": reductions},
        )

    return ExperimentPlan("claims-reduction", specs, collect)


def run_claims_reduction(seed: int = 11, num_nodes: int = 4,
                         scale: float = 1.0,
                         scenarios: Optional[Sequence[str]] = None,
                         runner: Optional[ExperimentRunner] = None,
                         ) -> ExperimentResult:
    """"OTEC generally outperforms COTEC by approximately 20-25% while
    LOTEC outperforms OTEC by another 5-10%" — aggregate consistency
    bytes per scenario, with reduction percentages."""
    return _runner(runner).run_plan(plan_claims_reduction(
        seed=seed, num_nodes=num_nodes, scale=scale, scenarios=scenarios,
    ))


def plan_claims_messages(scenario: str = "large-high", seed: int = 11,
                         num_nodes: int = 4, scale: float = 1.0,
                         ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    specs = [
        RunSpec(
            driver=f"claims-messages:{scenario}", key=protocol,
            config=_base_config(num_nodes, seed, protocol=protocol),
            params=params, seed=seed,
        )
        for protocol in THREE_PROTOCOLS
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "messages": {}, "bytes": {}, "mean_message_bytes": {},
        }
        for protocol, m in zip(THREE_PROTOCOLS, measurements):
            messages = m["network"]["total_messages"]
            series["messages"][protocol] = messages
            series["bytes"][protocol] = m["network"]["total_bytes"]
            series["mean_message_bytes"][protocol] = (
                m["network"]["total_bytes"] / messages if messages else 0
            )
        return ExperimentResult(
            experiment=f"message counts vs sizes — {scenario}",
            x_label="metric",
            series=series,
            meta={"scenario": scenario},
        )

    return ExperimentPlan(f"claims-messages:{scenario}", specs, collect)


def run_claims_messages(scenario: str = "large-high", seed: int = 11,
                        num_nodes: int = 4, scale: float = 1.0,
                        runner: Optional[ExperimentRunner] = None,
                        ) -> ExperimentResult:
    """"LOTEC also sends many more messages (albeit small ones) than
    OTEC or COTEC" — message counts and mean message size."""
    return _runner(runner).run_plan(plan_claims_messages(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def plan_rc_ablation(scenario: str = "medium-high", seed: int = 11,
                     num_nodes: int = 4, scale: float = 1.0,
                     ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    specs = [
        RunSpec(
            driver=f"abl-rc:{scenario}", key=protocol,
            config=_base_config(num_nodes, seed, protocol=protocol),
            params=params, seed=seed,
        )
        for protocol in FIVE_PROTOCOLS
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "data_bytes": {}, "messages": {},
        }
        for protocol, m in zip(FIVE_PROTOCOLS, measurements):
            series["data_bytes"][protocol] = (
                m["network"]["consistency_bytes"]
            )
            series["messages"][protocol] = m["network"]["total_messages"]
        return ExperimentResult(
            experiment=f"RC extension vs lazy protocols — {scenario}",
            x_label="metric",
            series=series,
            meta={"scenario": scenario},
        )

    return ExperimentPlan(f"abl-rc:{scenario}", specs, collect)


def run_rc_ablation(scenario: str = "medium-high", seed: int = 11,
                    num_nodes: int = 4, scale: float = 1.0,
                    runner: Optional[ExperimentRunner] = None,
                    ) -> ExperimentResult:
    """§6 future work: nested-object Release Consistency (and the
    home-based scope-consistency variant) versus the COTEC/OTEC/LOTEC
    suite."""
    return _runner(runner).run_plan(plan_rc_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


def plan_object_grain_ablation(scenario: str = "medium-high", seed: int = 11,
                               num_nodes: int = 4, scale: float = 1.0,
                               ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    grains = ("page", "object")
    specs = [
        RunSpec(
            driver=f"abl-dsd:{scenario}", key=grain,
            config=_base_config(num_nodes, seed, protocol="lotec",
                                transfer_grain=grain),
            params=params, seed=seed,
        )
        for grain in grains
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "data_bytes": {}, "messages": {}, "data_messages": {},
            "mean_data_message_bytes": {},
        }
        for grain, m in zip(grains, measurements):
            data_messages = m["network"]["data_messages"]
            consistency_bytes = m["network"]["consistency_bytes"]
            series["data_bytes"][grain] = consistency_bytes
            series["messages"][grain] = m["network"]["total_messages"]
            series["data_messages"][grain] = data_messages
            series["mean_data_message_bytes"][grain] = (
                consistency_bytes / data_messages if data_messages else 0
            )
        return ExperimentResult(
            experiment=(
                f"LOTEC transfer grain (page vs object/DSD) — {scenario}"
            ),
            x_label="metric",
            series=series,
            meta={"scenario": scenario},
        )

    return ExperimentPlan(f"abl-dsd:{scenario}", specs, collect)


def run_object_grain_ablation(scenario: str = "medium-high", seed: int = 11,
                              num_nodes: int = 4, scale: float = 1.0,
                              runner: Optional[ExperimentRunner] = None,
                              ) -> ExperimentResult:
    """§4.2: page-grain vs object-grain (DSD) transfer under LOTEC —
    the false-sharing-free mode ships only object bytes, not whole
    pages."""
    return _runner(runner).run_plan(plan_object_grain_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


def plan_prediction_ablation(seed: int = 11, num_nodes: int = 4,
                             scale: float = 1.0,
                             fractions: Sequence[Tuple[float, float]] = (
                                 (0.1, 0.2), (0.2, 0.5), (0.5, 0.8),
                                 (0.9, 1.0),
                             )) -> ExperimentPlan:
    fractions = tuple(tuple(fraction) for fraction in fractions)
    points = []
    specs = []
    for fraction in fractions:
        label = f"{fraction[0]:.0%}-{fraction[1]:.0%}"
        params = _scenario_params("large-high", scale)
        params = WorkloadParams(
            **{**params.__dict__, "access_fraction": fraction}
        )
        for protocol in ("otec", "lotec"):
            points.append((label, protocol))
            specs.append(RunSpec(
                driver="abl-predict", key=f"{protocol}@{label}",
                config=_base_config(num_nodes, seed, protocol=protocol),
                params=params, seed=seed,
            ))

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "otec_bytes": {}, "lotec_bytes": {}, "lotec_saving": {},
            "demand_fetches": {},
        }
        by_point = dict(zip(points, measurements))
        for fraction in fractions:
            label = f"{fraction[0]:.0%}-{fraction[1]:.0%}"
            totals = {
                protocol: by_point[(label, protocol)]
                ["network"]["consistency_bytes"]
                for protocol in ("otec", "lotec")
            }
            series["demand_fetches"][label] = (
                by_point[(label, "lotec")]["prediction"]["demand_fetches"]
            )
            series["otec_bytes"][label] = totals["otec"]
            series["lotec_bytes"][label] = totals["lotec"]
            series["lotec_saving"][label] = round(
                1 - totals["lotec"] / totals["otec"], 4
            )
        return ExperimentResult(
            experiment="LOTEC saving vs method access fraction",
            x_label="access fraction",
            series=series,
        )

    return ExperimentPlan("abl-predict", specs, collect)


def run_prediction_ablation(seed: int = 11, num_nodes: int = 4,
                            scale: float = 1.0,
                            fractions: Sequence[Tuple[float, float]] = (
                                (0.1, 0.2), (0.2, 0.5), (0.5, 0.8),
                                (0.9, 1.0),
                            ),
                            runner: Optional[ExperimentRunner] = None,
                            ) -> ExperimentResult:
    """Design-choice ablation: how LOTEC's advantage over OTEC varies
    with the fraction of an object each method accesses.  Methods
    touching nearly everything erase the gap (prediction ~ whole
    object); narrow methods widen it."""
    return _runner(runner).run_plan(plan_prediction_ablation(
        seed=seed, num_nodes=num_nodes, scale=scale, fractions=fractions,
    ))


def plan_gdo_cache_ablation(scenario: str = "medium-high", seed: int = 11,
                            num_nodes: int = 4, scale: float = 1.0,
                            ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    variants = (True, False)
    specs = [
        RunSpec(
            driver=f"abl-gdocache:{scenario}",
            key="cached" if enabled else "uncached",
            config=_base_config(num_nodes, seed, protocol="lotec",
                                gdo_cache_enabled=enabled),
            params=params, seed=seed,
        )
        for enabled in variants
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "lock_messages": {}, "total_messages": {}, "local_ops": {},
            "cache_hit_rate": {},
        }
        for enabled, m in zip(variants, measurements):
            label = "cached" if enabled else "uncached"
            by_category = m["network"]["by_category"]
            series["lock_messages"][label] = sum(
                by_category.get(category, {}).get("messages", 0)
                for category in ("lock_request", "lock_grant",
                                 "lock_release")
            )
            series["total_messages"][label] = (
                m["network"]["total_messages"]
            )
            series["local_ops"][label] = m["locks"]["local_acquisitions"]
            series["cache_hit_rate"][label] = round(
                m["cache"]["hit_rate"], 4
            )
        return ExperimentResult(
            experiment=f"GDO holder-list caching — {scenario}",
            x_label="metric",
            series=series,
            meta={"scenario": scenario},
        )

    return ExperimentPlan(f"abl-gdocache:{scenario}", specs, collect)


def run_gdo_cache_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4, scale: float = 1.0,
                           runner: Optional[ExperimentRunner] = None,
                           ) -> ExperimentResult:
    """Design-choice ablation: holder-list caching at the holding site
    (§4.1's local/global split) versus sending every lock operation to
    the GDO home node."""
    return _runner(runner).run_plan(plan_gdo_cache_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


def plan_recovery_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4, scale: float = 1.0,
                           ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    mechanisms = ("undo", "shadow")
    specs = [
        RunSpec(
            driver=f"abl-recovery:{scenario}", key=recovery,
            config=_base_config(num_nodes, seed, protocol="lotec",
                                recovery=recovery),
            params=params, seed=seed,
        )
        for recovery in mechanisms
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "committed": {}, "sim_time_ms": {}, "data_bytes": {},
        }
        digests = {}
        for recovery, m in zip(mechanisms, measurements):
            series["committed"][recovery] = m["committed"]
            series["sim_time_ms"][recovery] = m["sim_time"] * 1e3
            series["data_bytes"][recovery] = (
                m["network"]["consistency_bytes"]
            )
            digests[recovery] = m["state_digest"]
        return ExperimentResult(
            experiment=(
                f"recovery mechanism (undo log vs shadow pages) — {scenario}"
            ),
            x_label="metric",
            series=series,
            meta={"states_equal": digests["undo"] == digests["shadow"]},
        )

    return ExperimentPlan(f"abl-recovery:{scenario}", specs, collect)


def run_recovery_ablation(scenario: str = "medium-high", seed: int = 11,
                          num_nodes: int = 4, scale: float = 1.0,
                          runner: Optional[ExperimentRunner] = None,
                          ) -> ExperimentResult:
    """§4.1 offers two rollback mechanisms — "local UNDO logs or shadow
    pages".  Compare their bookkeeping volume and confirm identical
    outcomes on the same workload."""
    return _runner(runner).run_plan(plan_recovery_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


def plan_multicast_ablation(scenario: str = "medium-high", seed: int = 11,
                            num_nodes: int = 4, scale: float = 1.0,
                            ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    variants = (False, True)
    specs = []
    for multicast in variants:
        config = _base_config(num_nodes, seed, protocol="rc")
        config = config.with_network(
            config.network.with_multicast(multicast)
        )
        specs.append(RunSpec(
            driver=f"abl-multicast:{scenario}",
            key="multicast" if multicast else "unicast",
            config=config, params=params, seed=seed,
        ))

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "push_bytes": {}, "push_messages": {}, "total_bytes": {},
        }
        for multicast, m in zip(variants, measurements):
            label = "multicast" if multicast else "unicast"
            pushes = m["network"]["by_category"].get("update_push", {})
            series["push_bytes"][label] = pushes.get("bytes", 0)
            series["push_messages"][label] = pushes.get("messages", 0)
            series["total_bytes"][label] = m["network"]["total_bytes"]
        return ExperimentResult(
            experiment=(
                f"RC update pushes, unicast vs multicast — {scenario}"
            ),
            x_label="metric",
            series=series,
            meta={"scenario": scenario},
        )

    return ExperimentPlan(f"abl-multicast:{scenario}", specs, collect)


def run_multicast_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4, scale: float = 1.0,
                           runner: Optional[ExperimentRunner] = None,
                           ) -> ExperimentResult:
    """§6: "the use of multicast-capable networks" — eager RC pushes
    collapse from one unicast per replica to a single transmission."""
    return _runner(runner).run_plan(plan_multicast_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


def plan_prefetch_ablation(seed: int = 11, num_nodes: int = 4,
                           scale: float = 1.0,
                           software_cost: str = "100us") -> ExperimentPlan:
    params = WorkloadParams(
        num_objects=60, num_classes=4, num_roots=max(6, int(30 * scale)),
        pages_min=1, pages_max=3, max_depth=3, mean_branch=3.0,
        skew=0.0, mean_interarrival_s=0.001,
    )
    network = preset_network("100Mbps", software_cost)
    modes = ("off", "locks", "locks+pages")
    specs = [
        RunSpec(
            driver=f"abl-prefetch:{software_cost}", key=mode,
            config=_base_config(num_nodes, seed, protocol="lotec",
                                prefetch=mode, network=network),
            params=params, seed=seed,
        )
        for mode in modes
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "mean_latency_us": {}, "messages": {}, "prefetch_granted": {},
            "prefetch_denied": {}, "deadlocks": {},
        }
        for mode, m in zip(modes, measurements):
            series["mean_latency_us"][mode] = (
                m["txn"]["mean_latency"] * 1e6
            )
            series["messages"][mode] = m["network"]["total_messages"]
            series["prefetch_granted"][mode] = (
                m["locks"]["prefetch_granted"]
            )
            series["prefetch_denied"][mode] = m["locks"]["prefetch_denied"]
            series["deadlocks"][mode] = m["locks"]["deadlocks"]
        return ExperimentResult(
            experiment="optimistic pre-acquisition / prefetch "
                       "(low contention)",
            x_label="metric",
            series=series,
        )

    return ExperimentPlan(f"abl-prefetch:{software_cost}", specs, collect)


def run_prefetch_ablation(seed: int = 11, num_nodes: int = 4,
                          scale: float = 1.0,
                          software_cost: str = "100us",
                          runner: Optional[ExperimentRunner] = None,
                          ) -> ExperimentResult:
    """§5.1/§6: optimistic pre-acquisition and object prefetching
    "effectively hides the latency of remote lock acquisition".

    Run a low-contention, deeply nested workload (prefetch's favourable
    regime: many lock round trips, few conflicts) and report mean root
    latency against message cost for each prefetch mode."""
    return _runner(runner).run_plan(plan_prefetch_ablation(
        seed=seed, num_nodes=num_nodes, scale=scale,
        software_cost=software_cost,
    ))


def plan_per_class_ablation(scenario: str = "medium-high", seed: int = 11,
                            num_nodes: int = 4, scale: float = 1.0,
                            ) -> ExperimentPlan:
    params = _scenario_params(scenario, scale)
    # Workload generation is deterministic and cheap relative to a run,
    # so the plan builder regenerates it locally to learn class names.
    workload = generate_workload(params, seed=seed)
    hottest_class = workload.classes[0].schema.name
    configurations = {
        "lotec": (),
        "mixed": ((hottest_class, "rc"),),
        "rc": tuple(
            (info.schema.name, "rc") for info in workload.classes
        ),
    }
    specs = [
        RunSpec(
            driver=f"abl-perclass:{scenario}", key=label,
            config=_base_config(num_nodes, seed, protocol="lotec",
                                class_protocols=class_protocols),
            params=params, seed=seed,
        )
        for label, class_protocols in configurations.items()
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "data_bytes": {}, "messages": {},
        }
        for label, m in zip(configurations, measurements):
            series["data_bytes"][label] = (
                m["network"]["consistency_bytes"]
            )
            series["messages"][label] = m["network"]["total_messages"]
        return ExperimentResult(
            experiment=(
                f"per-class protocol mix (hot class on RC) — {scenario}"
            ),
            x_label="metric",
            series=series,
            meta={"hot_class": hottest_class},
        )

    return ExperimentPlan(f"abl-perclass:{scenario}", specs, collect)


def run_per_class_ablation(scenario: str = "medium-high", seed: int = 11,
                           num_nodes: int = 4, scale: float = 1.0,
                           runner: Optional[ExperimentRunner] = None,
                           ) -> ExperimentResult:
    """§6: per-class consistency protocols.  Put the single hottest
    class on RC (its updates push eagerly to readers) while the rest
    stay on LOTEC, and compare against the pure configurations."""
    return _runner(runner).run_plan(plan_per_class_ablation(
        scenario, seed=seed, num_nodes=num_nodes, scale=scale,
    ))


# ---------------------------------------------------------------------------
# §5.1 aggregation ablation (drives clusters directly; no generated
# workload, so it runs through a registered builder)
# ---------------------------------------------------------------------------

@register_builder("aggregation")
def _aggregation_run(config: ClusterConfig,
                     args: Dict[str, object]) -> Dict[str, object]:
    """One granularity variant of the aggregation experiment: the same
    logical work — bump every element of a group — against either
    ``group_size`` separate single-attribute objects ("fine") or one
    aggregated object holding the group as an array ("coarse")."""
    from repro import Array, Attr, method, shared_class

    variant = args["variant"]
    group_size = args["group_size"]
    num_groups = args["num_groups"]
    rounds = args["rounds"]
    num_nodes = config.num_nodes

    @shared_class
    class FineItem:
        value = Attr(size=256, default=0)

        @method
        def bump(self, ctx, amount):
            self.value += amount
            return self.value

    @shared_class
    class GroupTask:
        runs = Attr(size=8, default=0)

        @method
        def touch_group(self, ctx, items, amount):
            total = 0
            for item in items:
                total += yield ctx.invoke(item, "bump", amount)
            self.runs += 1
            return total

    @shared_class
    class Composite:
        values = Array(size=256, count=group_size, default=0)
        runs = Attr(size=8, default=0)

        @method
        def bump_all(self, ctx, amount):
            total = 0
            for index in range(len(self.values)):
                self.values[index] += amount
                total += self.values[index]
            self.runs += 1
            return total

    cluster = Cluster(config)
    if variant == "fine":
        # Fine granularity: one object per element.
        tasks = [cluster.create(GroupTask) for _ in range(num_groups)]
        groups = [
            tuple(cluster.create(FineItem) for _ in range(group_size))
            for _ in range(num_groups)
        ]
        for round_index in range(rounds):
            for group_index in range(num_groups):
                # Rotate the executing node each round so lock
                # ownership genuinely moves between sites.
                node = cluster.nodes[
                    (group_index + round_index) % num_nodes
                ]
                cluster.submit(
                    tasks[group_index], "touch_group",
                    groups[group_index], round_index,
                    node=node, delay=round_index * 0.001,
                )
        cluster.run()
        state_sum = sum(
            cluster.read_attr(item, "value")
            for group in groups for item in group
        )
    elif variant == "coarse":
        # Coarse granularity: the group aggregated into one object.
        composites = [
            cluster.create(Composite) for _ in range(num_groups)
        ]
        for round_index in range(rounds):
            for composite_index, composite in enumerate(composites):
                node = cluster.nodes[
                    (composite_index + round_index) % num_nodes
                ]
                cluster.submit(composite, "bump_all", round_index,
                               node=node, delay=round_index * 0.001)
        cluster.run()
        state_sum = sum(
            sum(cluster.read_attr(composite, "values"))
            for composite in composites
        )
    else:
        raise ValueError(f"unknown aggregation variant {variant!r}")
    measurement = cluster_measurement(cluster)
    measurement["state_sum"] = state_sum
    return measurement


def plan_aggregation_ablation(seed: int = 11, num_nodes: int = 4,
                              scale: float = 1.0,
                              group_size: int = 8,
                              num_groups: int = 8) -> ExperimentPlan:
    rounds = max(2, int(12 * scale))
    variants = ("fine", "coarse")
    specs = [
        RunSpec(
            driver="abl-aggregate", key=variant,
            config=_base_config(num_nodes, seed, protocol="lotec"),
            seed=seed,
            builder="aggregation",
            builder_args=(
                ("variant", variant), ("group_size", group_size),
                ("num_groups", num_groups), ("rounds", rounds),
            ),
        )
        for variant in variants
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        series: Dict[str, Dict[str, object]] = {
            "global_lock_ops": {}, "lock_messages": {},
            "total_messages": {}, "data_bytes": {},
        }
        state_sums = {}
        for variant, m in zip(variants, measurements):
            by_category = m["network"]["by_category"]
            series["global_lock_ops"][variant] = (
                m["locks"]["global_acquisitions"]
            )
            series["lock_messages"][variant] = sum(
                by_category.get(category, {}).get("messages", 0)
                for category in ("lock_request", "lock_grant",
                                 "lock_release")
            )
            series["total_messages"][variant] = (
                m["network"]["total_messages"]
            )
            series["data_bytes"][variant] = (
                m["network"]["consistency_bytes"]
            )
            state_sums[variant] = m["state_sum"]
        return ExperimentResult(
            experiment=(
                f"object aggregation ({num_groups} groups x {group_size} "
                f"elements, {rounds} rounds)"
            ),
            x_label="metric",
            series=series,
            meta={
                "fine_state_sum": state_sums["fine"],
                "coarse_state_sum": state_sums["coarse"],
            },
        )

    return ExperimentPlan("abl-aggregate", specs, collect)


def run_aggregation_ablation(seed: int = 11, num_nodes: int = 4,
                             scale: float = 1.0,
                             group_size: int = 8,
                             num_groups: int = 8,
                             runner: Optional[ExperimentRunner] = None,
                             ) -> ExperimentResult:
    """§5.1: "Heavily object-based environments can sometimes aggregate
    related small objects into larger objects for the purpose of
    decreasing the cost of concurrency control and consistency
    maintenance."

    The same logical work — bump every element of a group — is run
    twice: against ``group_size`` separate single-attribute objects
    (one lock acquisition per element, per §5.1 "the larger objects
    are, the fewer lock operations are necessary") and against one
    aggregated object holding the group as an array."""
    return _runner(runner).run_plan(plan_aggregation_ablation(
        seed=seed, num_nodes=num_nodes, scale=scale,
        group_size=group_size, num_groups=num_groups,
    ))


# ---------------------------------------------------------------------------
# Open-loop load + adaptive home migration (repro.load / repro.gdo.migration)
# ---------------------------------------------------------------------------

@register_builder("load")
def _load_run(config: ClusterConfig,
              args: Dict[str, object]) -> Dict[str, object]:
    """One open-loop load execution: scenario + seed -> measurement.

    The :class:`~repro.load.engine.Load` is rebuilt inside the worker
    (generation is deterministic and cheap), so the spec stays a small
    picklable value."""
    from repro.load import build_load, run_load

    load = build_load(args["scenario"], seed=args["seed"],
                      scale=args["scale"])
    cluster = Cluster(config)
    run = run_load(cluster, load)
    measurement = cluster_measurement(cluster)
    measurement["committed"] = run.committed
    measurement["failed"] = run.failed
    measurement["deadlocks"] = cluster.lock_stats.deadlocks
    return measurement


def plan_claims_locality(scenario: str = "zipf-hot", seed: int = 7,
                         scale: float = 1.0,
                         migration: Optional[MigrationConfig] = None,
                         num_nodes: Optional[int] = None,
                         ) -> ExperimentPlan:
    """Static round-robin homes vs adaptive migration on one skewed
    open-loop scenario — identical load, only the directory policy
    differs.  The committed baseline
    ``benchmarks/baselines/claims_locality.json`` pins this plan's
    numbers and requires the migration run to cut remote directory
    messages by at least 30%.

    ``num_nodes`` is accepted for registry compatibility but ignored:
    the cluster always runs one node per scenario client — the client
    population *is* the topology under study."""
    from repro.load import LOAD_SCENARIOS

    del num_nodes
    try:
        num_nodes = LOAD_SCENARIOS[scenario].clients
    except KeyError:
        raise KeyError(
            f"unknown load scenario {scenario!r}; "
            f"choose from {sorted(LOAD_SCENARIOS)}"
        ) from None
    variants = (
        ("static", None),
        ("adaptive", migration or MigrationConfig()),
    )
    specs = [
        RunSpec(
            driver=f"claims-locality:{scenario}", key=label,
            config=_base_config(num_nodes, seed, protocol="lotec",
                                trace=True, migration=policy),
            seed=seed,
            builder="load",
            builder_args=(
                ("scenario", scenario), ("seed", seed), ("scale", scale),
            ),
        )
        for label, policy in variants
    ]

    def collect(measurements: List[Dict]) -> ExperimentResult:
        from repro.load import shard_slo_series

        series: Dict[str, Dict[str, object]] = {
            "remote_directory_messages": {}, "total_messages": {},
            "committed": {}, "failed": {}, "migrations": {},
        }
        slo: Dict[str, Dict[str, Dict[object, float]]] = {}
        for (label, _), m in zip(variants, measurements):
            series["remote_directory_messages"][label] = (
                m["network"]["remote_directory_messages"]
            )
            series["total_messages"][label] = m["network"]["total_messages"]
            series["committed"][label] = m["committed"]
            series["failed"][label] = m["failed"]
            migration_stats = m.get("migration")
            series["migrations"][label] = (
                migration_stats["migrations"] if migration_stats else 0
            )
            if "metrics" in m:
                slo[label] = shard_slo_series(m["metrics"])
        static_dir = series["remote_directory_messages"]["static"]
        adaptive_dir = series["remote_directory_messages"]["adaptive"]
        reduction = (
            1 - adaptive_dir / static_dir if static_dir else 0.0
        )
        adaptive = measurements[1]
        return ExperimentResult(
            experiment=f"directory locality (static vs adaptive) — "
                       f"{scenario}",
            x_label="policy",
            series=series,
            meta={
                "scenario": scenario,
                "directory_message_reduction": round(reduction, 4),
                "migration": adaptive.get("migration"),
                "slo": slo,
            },
        )

    return ExperimentPlan(f"claims-locality:{scenario}", specs, collect)


def run_claims_locality(scenario: str = "zipf-hot", seed: int = 7,
                        scale: float = 1.0,
                        migration: Optional[MigrationConfig] = None,
                        runner: Optional[ExperimentRunner] = None,
                        ) -> ExperimentResult:
    """Adaptive GDO home migration vs the paper's static round-robin
    partition (§4.1) under a skewed open-loop load: remote directory
    messages, migration counts, and per-shard SLO tables."""
    return _runner(runner).run_plan(plan_claims_locality(
        scenario, seed=seed, scale=scale, migration=migration,
    ))


# ---------------------------------------------------------------------------
# Experiment registry (the CLI's experiment ids)
# ---------------------------------------------------------------------------

PLAN_BUILDERS: Dict[str, Callable[..., ExperimentPlan]] = {
    "fig2": lambda **kw: plan_bytes_figure("medium-high", **kw),
    "fig3": lambda **kw: plan_bytes_figure("large-high", **kw),
    "fig4": lambda **kw: plan_bytes_figure("medium-moderate", **kw),
    "fig5": lambda **kw: plan_bytes_figure("large-moderate", **kw),
    "fig6": lambda **kw: plan_time_figure("10Mbps", **kw),
    "fig7": lambda **kw: plan_time_figure("100Mbps", **kw),
    "fig8": lambda **kw: plan_time_figure("1Gbps", **kw),
    "tab-speedup": plan_claims_reduction,
    "msg-count": plan_claims_messages,
    "abl-rc": plan_rc_ablation,
    "abl-dsd": plan_object_grain_ablation,
    "abl-predict": plan_prediction_ablation,
    "abl-gdocache": plan_gdo_cache_ablation,
    "abl-aggregate": plan_aggregation_ablation,
    "abl-recovery": plan_recovery_ablation,
    "abl-multicast": plan_multicast_ablation,
    "abl-prefetch": plan_prefetch_ablation,
    "abl-perclass": plan_per_class_ablation,
    "claims-locality": plan_claims_locality,
}


def build_plan(experiment_id: str, **kwargs) -> ExperimentPlan:
    """The plan for one registered experiment id (``fig2`` ...
    ``abl-perclass``); keyword arguments reach the plan builder."""
    try:
        builder = PLAN_BUILDERS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(PLAN_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def _registry_driver(experiment_id: str) -> Callable[..., ExperimentResult]:
    def drive(runner: Optional[ExperimentRunner] = None,
              **kwargs) -> ExperimentResult:
        return _runner(runner).run_plan(build_plan(experiment_id, **kwargs))

    drive.__name__ = f"run_{experiment_id.replace('-', '_')}"
    drive.__doc__ = f"Regenerate experiment {experiment_id!r}."
    return drive


#: Experiment id -> driver callable (the CLI's dispatch table).  Every
#: driver accepts ``seed``/``scale``/``num_nodes`` plus an optional
#: ``runner`` for parallel/cached execution.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    experiment_id: _registry_driver(experiment_id)
    for experiment_id in PLAN_BUILDERS
}
