"""ASCII rendering of experiment results (the harness's "plots")."""

from __future__ import annotations

from typing import Dict, List, Sequence


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain fixed-width table with a header rule."""
    cells = [[_format_value(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(values, pad=" "):
        return "  ".join(
            str(value).rjust(width) if index else str(value).ljust(width)
            for index, (value, width) in enumerate(zip(values, widths))
        ).rstrip(pad)

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series_table(title: str, x_label: str,
                        series: Dict[str, Dict[str, object]]) -> str:
    """Render {series -> {x -> y}} the way the paper's figures read:
    one row per x value, one column per protocol series."""
    x_values: List[str] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name].get(x, "") for name in series]
        for x in x_values
    ]
    return f"{title}\n{format_table(headers, rows)}"


def format_bench_summary(entries: Sequence[Dict[str, object]]) -> str:
    """Per-experiment summary table for ``repro bench``: one row per
    experiment with its cluster-run count, cache hits, and the result
    file written."""
    rows = [
        [
            entry["experiment"],
            entry["runs"],
            entry["cache_hits"],
            entry["path"],
        ]
        for entry in entries
    ]
    return format_table(
        ["experiment", "runs", "cache hits", "result"], rows
    )


def format_bar_chart(title: str, series: Dict[str, Dict[str, object]],
                     width: int = 48) -> str:
    """Horizontal ASCII bars, grouped like the paper's bar charts.

    ``series`` maps series name -> {x -> numeric y}; bars are scaled to
    the global maximum so protocols are visually comparable, one block
    of bars per x value.
    """
    numeric = [
        value
        for points in series.values()
        for value in points.values()
        if isinstance(value, (int, float))
    ]
    peak = max(numeric) if numeric else 0
    label_width = max((len(name) for name in series), default=0)
    x_values: List[str] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    lines = [title]
    for x in x_values:
        lines.append(f"{x}:")
        for name, points in series.items():
            value = points.get(x)
            if not isinstance(value, (int, float)):
                continue
            filled = int(round(width * value / peak)) if peak else 0
            bar = "#" * filled
            lines.append(
                f"  {str(name).ljust(label_width)} |{bar.ljust(width)}| "
                f"{_format_value(value)}"
            )
    return "\n".join(lines)
