"""On-disk memoization of experiment runs.

Every :class:`~repro.bench.parallel.RunSpec` is a pure function of its
payload (workload parameters, seed, cluster configuration, builder
arguments, extractor), so its measurement can be stored once and
replayed forever.  :class:`ResultCache` keys each measurement by a
SHA-256 fingerprint of that payload *plus the package version*, so a
version bump invalidates every prior entry without any scanning.

Entries live as one JSON file per run under ``.repro-cache/`` (two-hex
fan-out directories keep any one directory small).  Writes are atomic
(temp file + ``os.replace``), reads treat any unreadable or mismatched
file as a miss, and the envelope records the human-readable spec
payload next to the measurement for debuggability.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import Dict, Optional

#: Envelope format version for cache files (bumping it invalidates
#: nothing by itself — the key includes the package version — but lets
#: readers reject files written by a different layout).
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-cache"


def _package_version() -> str:
    from repro import __version__  # lazy: repro imports repro.bench

    return __version__


class ResultCache:
    """Filesystem-backed measurement store, keyed by run fingerprint.

    ``version`` defaults to the installed package version; tests pass
    explicit versions to exercise invalidation-on-bump.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None):
        self.root = str(root)
        self.version = version if version is not None else _package_version()
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def key(self, spec) -> str:
        # Strict serialization on purpose: RunSpec validates its
        # payload as JSON-native at construction, so a TypeError here
        # means a spec bypassed that check — better a loud failure than
        # a repr-based fingerprint that is unstable across processes.
        blob = json.dumps(
            {"version": self.version, "spec": spec.payload()},
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path(self, spec) -> str:
        key = self.key(spec)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- storage -----------------------------------------------------------

    def get(self, spec) -> Optional[Dict[str, object]]:
        """The cached measurement for ``spec``, or ``None`` on a miss.
        Corrupt or foreign files count as misses, never as errors."""
        try:
            with open(self.path(spec), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != CACHE_SCHEMA_VERSION
            or "measurement" not in envelope
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["measurement"]

    def put(self, spec, measurement: Dict[str, object]) -> str:
        """Store one measurement atomically; returns the file path."""
        target = self.path(spec)
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        envelope = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": self.version,
            "driver": spec.driver,
            "key": spec.key,
            "spec": spec.payload(),
            "measurement": measurement,
        }
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True, default=str)
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return target

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Delete every cached entry (the whole cache directory)."""
        shutil.rmtree(self.root, ignore_errors=True)
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
