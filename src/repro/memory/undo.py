"""Undo logs for transaction rollback.

Section 4.1: "the UNDO operations required by the `LocalLockRelease`
routine may be done using either local UNDO logs or shadow pages.  In
either case, no network communication is required."  We implement the
log variant: every slot write appends the previous value; abort applies
records in reverse; pre-commit *merges* the child's log into its
parent's so that a later ancestor abort also undoes the pre-committed
child (closed nesting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.store import NodeStore
from repro.memory.layout import Slot
from repro.util.ids import ObjectId


@dataclass(frozen=True)
class UndoRecord:
    """Inverse of one slot write."""

    object_id: ObjectId
    slot: Slot
    had_value: bool
    old_value: object


class UndoLog:
    """Ordered undo records for one transaction."""

    def __init__(self) -> None:
        self._records: List[UndoRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record_write(self, object_id: ObjectId, slot: Slot,
                     had_value: bool, old_value: object) -> None:
        self._records.append(
            UndoRecord(object_id=object_id, slot=slot,
                       had_value=had_value, old_value=old_value)
        )

    def before_write(self, store: NodeStore, object_id: ObjectId,
                     slot: Slot, pages) -> None:
        """Recovery-log interface: capture the slot's pre-write state.

        ``pages`` is unused here (slot-granular logging); the shadow
        implementation snapshots at page granularity instead.
        """
        del pages
        had_value, old_value = store.peek_slot(object_id, slot)
        self.record_write(object_id, slot, had_value, old_value)

    def merge_child(self, child: "UndoLog") -> None:
        """Inherit a pre-committed child's records (Moss closed nesting).

        The child's records are appended after the parent's existing
        ones; reverse application therefore undoes the child's writes
        before the parent's earlier writes, preserving overall
        last-write-first-undone order.
        """
        self._records.extend(child._records)
        child._records = []

    def apply(self, store: NodeStore) -> int:
        """Roll back every recorded write, newest first.

        Returns the number of records applied; the log is emptied.
        """
        applied = 0
        for record in reversed(self._records):
            store.restore_slot(
                record.object_id, record.slot, record.had_value, record.old_value
            )
            applied += 1
        self._records.clear()
        return applied

    def touched_objects(self):
        """Distinct objects with at least one recorded write."""
        seen = {}
        for record in self._records:
            seen[record.object_id] = None
        return tuple(seen)
