"""Per-node object store: cached slot values plus page version tags.

Each node keeps, for every object it has ever cached, (a) a value for
each slot it has received and (b) the version of each page of its
local copy.  The GDO's page map holds the authoritative latest version
of every page; a node's copy of page p is *current* iff its local tag
equals the GDO's.  Consistency protocols move pages between stores;
this module only holds state and enforces local invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.memory.layout import ObjectLayout, Slot
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId


@dataclass
class PageCopy:
    """One page as shipped between nodes: its version tag plus the
    values of every slot intersecting it."""

    page: int
    version: int
    slot_values: Dict[Slot, object]


@dataclass
class _CachedObject:
    layout: ObjectLayout
    slots: Dict[Slot, object] = field(default_factory=dict)
    page_versions: Dict[int, int] = field(default_factory=dict)


class NodeStore:
    """All object data cached at one node."""

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        self._objects: Dict[ObjectId, _CachedObject] = {}

    # -- presence ----------------------------------------------------------

    def has_object(self, object_id: ObjectId) -> bool:
        return object_id in self._objects

    def cached_objects(self) -> Tuple[ObjectId, ...]:
        return tuple(self._objects)

    def _cached(self, object_id: ObjectId) -> _CachedObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise ProtocolError(
                f"object {object_id!r} not cached at node {self.node_id!r}"
            ) from None

    def layout_of(self, object_id: ObjectId) -> ObjectLayout:
        return self._cached(object_id).layout

    # -- creation / installation -------------------------------------------

    def create_object(self, object_id: ObjectId, layout: ObjectLayout,
                      values: Optional[Dict[Slot, object]] = None,
                      initial_version: int = 1) -> None:
        """Materialize a brand-new object with all pages current."""
        if object_id in self._objects:
            raise ProtocolError(f"object {object_id!r} already exists at "
                                f"{self.node_id!r}")
        cached = _CachedObject(layout=layout)
        cached.slots = dict(layout.initial_values())
        if values:
            for slot, value in values.items():
                if slot not in cached.slots:
                    raise KeyError(f"unknown slot {slot} for {object_id!r}")
                cached.slots[slot] = value
        cached.page_versions = {
            page: initial_version for page in range(layout.page_count)
        }
        self._objects[object_id] = cached

    def register_object(self, object_id: ObjectId, layout: ObjectLayout) -> None:
        """Make a remote object known locally with no pages cached yet."""
        if object_id not in self._objects:
            self._objects[object_id] = _CachedObject(layout=layout)

    def install_pages(self, object_id: ObjectId, copies: Iterable[PageCopy]) -> None:
        """Install pages received from another node.

        Installs at or below the local version are ignored rather than
        rejected: with concurrent readers the same page can arrive
        twice, and an equal-version copy is by definition identical to
        what we hold — *except* when the local copy carries uncommitted
        writes of a transaction running here, which an install must
        never clobber.  Skipping non-newer copies covers both cases.
        """
        cached = self._cached(object_id)
        for copy in copies:
            current = cached.page_versions.get(copy.page, 0)
            if copy.version <= current:
                continue
            cached.page_versions[copy.page] = copy.version
            cached.slots.update(copy.slot_values)

    def extract_pages(self, object_id: ObjectId,
                      pages: Iterable[int]) -> Tuple[PageCopy, ...]:
        """Package local pages for shipment to another node."""
        cached = self._cached(object_id)
        copies = []
        for page in sorted(set(pages)):
            if page not in cached.page_versions:
                raise ProtocolError(
                    f"node {self.node_id!r} asked to ship uncached page "
                    f"{page} of {object_id!r}"
                )
            slot_values = {
                slot: cached.slots[slot]
                for slot in cached.layout.slots_on_page(page)
                if slot in cached.slots
            }
            copies.append(
                PageCopy(page=page, version=cached.page_versions[page],
                         slot_values=slot_values)
            )
        return tuple(copies)

    # -- versions -----------------------------------------------------------

    def page_version(self, object_id: ObjectId, page: int) -> int:
        """Local version tag of a page; 0 if never cached."""
        cached = self._cached(object_id)
        return cached.page_versions.get(page, 0)

    def set_page_version(self, object_id: ObjectId, page: int, version: int) -> None:
        self._cached(object_id).page_versions[page] = version

    def resident_pages(self, object_id: ObjectId) -> Dict[int, int]:
        """Mapping page -> local version for every cached page."""
        return dict(self._cached(object_id).page_versions)

    # -- slot access ----------------------------------------------------------

    def peek_slot(self, object_id: ObjectId, slot: Slot) -> tuple:
        """Non-raising read: ``(present, value-or-None)``.

        Used by recovery logs to capture pre-write state (a slot a
        transaction creates may not exist yet)."""
        cached = self._cached(object_id)
        if slot in cached.slots:
            return True, cached.slots[slot]
        return False, None

    def read_slot(self, object_id: ObjectId, slot: Slot) -> object:
        cached = self._cached(object_id)
        try:
            return cached.slots[slot]
        except KeyError:
            raise ProtocolError(
                f"slot {slot} of {object_id!r} read at {self.node_id!r} "
                f"before any copy arrived"
            ) from None

    def write_slot(self, object_id: ObjectId, slot: Slot, value: object) -> tuple:
        """Write a slot; returns ``(had_value, old_value)`` for undo."""
        cached = self._cached(object_id)
        had = slot in cached.slots
        old = cached.slots.get(slot)
        cached.slots[slot] = value
        return had, old

    def restore_slot(self, object_id: ObjectId, slot: Slot,
                     had_value: bool, old_value: object) -> None:
        """Undo helper: put a slot back exactly as it was."""
        cached = self._cached(object_id)
        if had_value:
            cached.slots[slot] = old_value
        else:
            cached.slots.pop(slot, None)

    def snapshot_object(self, object_id: ObjectId) -> Dict[Slot, object]:
        """Copy of all locally cached slot values (tests / debugging)."""
        return dict(self._cached(object_id).slots)
