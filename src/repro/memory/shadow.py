"""Shadow-page recovery: the paper's alternative to undo logs.

Section 4.1: "the UNDO operations required by the `LocalLockRelease`
routine may be done using either local UNDO logs or shadow pages."
This module implements the shadow variant: before a transaction's
first write to a page, the page's current slot values are snapshotted;
abort restores every shadowed page wholesale; pre-commit merges the
child's shadows into the parent, keeping the parent's (older) snapshot
when both shadowed the same page.

Compared to the undo log, shadowing costs one page snapshot per
(transaction, page) instead of one record per write — cheaper for
write-hot pages, more expensive for sparse writes; the
``abl-recovery`` benchmark quantifies the trade-off and the equivalence
property test proves both roll back identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.memory.layout import Slot
from repro.memory.store import NodeStore
from repro.util.ids import ObjectId

#: Snapshot of one page: slot -> (was present, value at snapshot time).
PageSnapshot = Dict[Slot, Tuple[bool, object]]


@dataclass
class _Shadow:
    object_id: ObjectId
    page: int
    snapshot: PageSnapshot
    sequence: int  # creation order; restores apply oldest-last


class ShadowLog:
    """Page-granular recovery state for one transaction.

    Exposes the same interface as :class:`repro.memory.undo.UndoLog`
    consumes (see :class:`repro.txn.recovery.RecoveryLog`): writes are
    announced *before* they happen, children merge on pre-commit,
    ``apply`` rolls everything back.
    """

    def __init__(self) -> None:
        self._shadows: Dict[Tuple[ObjectId, int], _Shadow] = {}
        self._sequence = 0
        self.pages_shadowed = 0

    def __len__(self) -> int:
        return len(self._shadows)

    def before_write(self, store: NodeStore, object_id: ObjectId,
                     slot: Slot, pages: Iterable[int]) -> None:
        """Snapshot every page this write touches, if not already done."""
        layout = store.layout_of(object_id)
        for page in pages:
            key = (object_id, page)
            if key in self._shadows:
                continue
            snapshot: PageSnapshot = {}
            for page_slot in layout.slots_on_page(page):
                present, value = store.peek_slot(object_id, page_slot)
                snapshot[page_slot] = (present, value)
            self._sequence += 1
            self._shadows[key] = _Shadow(
                object_id=object_id, page=page, snapshot=snapshot,
                sequence=self._sequence,
            )
            self.pages_shadowed += 1

    def merge_child(self, child: "ShadowLog") -> None:
        """Pre-commit: parent adopts the child's shadows it lacks.

        Where both shadowed a page, the parent's snapshot is older
        (taken before the child even started) and therefore the right
        restore point for an ancestor abort.
        """
        for key, shadow in child._shadows.items():
            self._shadows.setdefault(key, shadow)
        child._shadows = {}

    def apply(self, store: NodeStore) -> int:
        """Restore every shadowed page; returns pages restored."""
        restored = 0
        # Newest-first mirrors undo-log ordering; with full-page
        # snapshots the order is immaterial (each page appears once),
        # but determinism keeps traces stable.
        for shadow in sorted(self._shadows.values(),
                             key=lambda s: -s.sequence):
            for slot, (present, value) in shadow.snapshot.items():
                store.restore_slot(shadow.object_id, slot, present, value)
            restored += 1
        self._shadows.clear()
        return restored

    def touched_objects(self):
        seen = {}
        for object_id, _page in self._shadows:
            seen[object_id] = None
        return tuple(seen)
