"""Attribute-to-page layout: the "compiler's" memory image of a class.

Section 4.1 requires the compiler to "know where, in an object's
representation in memory, each attribute is stored" so that predicted
attribute accesses can be mapped to predicted page accesses.  This
module is that piece: it packs a class's attributes (scalars and fixed
arrays) into a contiguous byte image and answers which pages any
attribute — or any array element — occupies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: A slot is the unit of value storage and transfer bookkeeping:
#: ``(attribute name, element index)``.  Scalars are element 0.
Slot = Tuple[str, int]


@dataclass(frozen=True)
class AttributeSpec:
    """Declared shape of one attribute.

    Attributes:
        name: attribute name as used in method bodies (``self.name``).
        size_bytes: bytes per element.
        count: number of elements; 1 for scalars, >1 for fixed arrays.
        default: initial value of each element.
    """

    name: str
    size_bytes: int
    count: int = 1
    default: object = 0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ConfigurationError(f"invalid attribute name {self.name!r}")
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"attribute {self.name!r}: size_bytes must be positive"
            )
        if self.count <= 0:
            raise ConfigurationError(
                f"attribute {self.name!r}: count must be positive"
            )

    @property
    def is_array(self) -> bool:
        return self.count > 1

    @property
    def total_bytes(self) -> int:
        return self.size_bytes * self.count


class ObjectLayout:
    """Packs attributes into pages and maps accesses to page sets.

    Attributes are laid out contiguously in declaration order (a simple
    deterministic policy a real compiler could use); no padding is
    inserted, so one page commonly holds several small attributes —
    exactly the situation in which per-attribute access prediction
    (LOTEC) beats per-object transfer (COTEC).
    """

    def __init__(self, attributes: Sequence[AttributeSpec], page_size: int):
        if page_size <= 0:
            raise ConfigurationError("page_size must be positive")
        if not attributes:
            raise ConfigurationError("an object layout needs at least one attribute")
        names = [spec.name for spec in attributes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate attribute names in {names}")
        self.page_size = page_size
        self.attributes: Tuple[AttributeSpec, ...] = tuple(attributes)
        self._by_name: Dict[str, AttributeSpec] = {
            spec.name: spec for spec in self.attributes
        }
        self._offsets: Dict[str, int] = {}
        offset = 0
        for spec in self.attributes:
            self._offsets[spec.name] = offset
            offset += spec.total_bytes
        self.total_bytes = offset
        self.page_count = max(1, math.ceil(self.total_bytes / page_size))
        self._slots_by_page: Dict[int, List[Slot]] = {
            page: [] for page in range(self.page_count)
        }
        self._pages_by_slot: Dict[Slot, FrozenSet[int]] = {}
        for spec in self.attributes:
            for index in range(spec.count):
                slot = (spec.name, index)
                pages = self._compute_slot_pages(spec, index)
                self._pages_by_slot[slot] = pages
                for page in pages:
                    self._slots_by_page[page].append(slot)

    # -- construction helpers ---------------------------------------------

    def _compute_slot_pages(self, spec: AttributeSpec, index: int) -> FrozenSet[int]:
        start = self._offsets[spec.name] + index * spec.size_bytes
        end = start + spec.size_bytes  # exclusive
        first = start // self.page_size
        last = (end - 1) // self.page_size
        return frozenset(range(first, last + 1))

    # -- queries ------------------------------------------------------------

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def attribute(self, name: str) -> AttributeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no attribute {name!r}; have {sorted(self._by_name)}") from None

    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.attributes)

    def offset_of(self, name: str) -> int:
        return self._offsets[name]

    def slot_pages(self, name: str, index: int = 0) -> FrozenSet[int]:
        """Pages occupied by one element of one attribute."""
        try:
            return self._pages_by_slot[(name, index)]
        except KeyError:
            raise KeyError(f"no slot ({name!r}, {index})") from None

    def attribute_pages(self, name: str) -> FrozenSet[int]:
        """Pages occupied by every element of an attribute."""
        spec = self.attribute(name)
        start = self._offsets[name]
        end = start + spec.total_bytes
        first = start // self.page_size
        last = (end - 1) // self.page_size
        return frozenset(range(first, last + 1))

    def pages_for_attributes(self, names: Iterable[str]) -> FrozenSet[int]:
        """Conservative page set for a set of attribute names.

        This is the mapping step of LOTEC's prediction: predicted
        attributes -> predicted pages (§4.1).
        """
        pages: set = set()
        for name in names:
            pages.update(self.attribute_pages(name))
        return frozenset(pages)

    def all_pages(self) -> FrozenSet[int]:
        return frozenset(range(self.page_count))

    def slots_on_page(self, page: int) -> Tuple[Slot, ...]:
        """Slots whose bytes intersect the given page (for transfers)."""
        try:
            return tuple(self._slots_by_page[page])
        except KeyError:
            raise KeyError(
                f"page {page} out of range; object has {self.page_count} pages"
            ) from None

    def slots_on_pages(self, pages: Iterable[int]) -> Tuple[Slot, ...]:
        seen: Dict[Slot, None] = {}
        for page in sorted(set(pages)):
            for slot in self.slots_on_page(page):
                seen[slot] = None
        return tuple(seen)

    def object_bytes_on_page(self, page: int) -> int:
        """Bytes of real object data on a page (for object-grain / DSD
        transfer sizing, §4.2 — the final page is usually partial)."""
        if page < 0 or page >= self.page_count:
            raise KeyError(f"page {page} out of range")
        start = page * self.page_size
        end = min((page + 1) * self.page_size, self.total_bytes)
        return max(0, end - start)

    def initial_values(self) -> Dict[Slot, object]:
        """Default value for every slot, used when an object is created."""
        values: Dict[Slot, object] = {}
        for spec in self.attributes:
            for index in range(spec.count):
                values[(spec.name, index)] = spec.default
        return values

    def __repr__(self) -> str:
        return (
            f"<ObjectLayout {len(self.attributes)} attrs, "
            f"{self.total_bytes}B over {self.page_count} pages of {self.page_size}B>"
        )
