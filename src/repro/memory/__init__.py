"""Paged object memory: layout, per-node stores, undo logs.

The paper's DSM is page-based but object-structured: the compiler
decides where each attribute lives in an object's memory image
(:mod:`repro.memory.layout`), each node caches object pages with
version tags (:mod:`repro.memory.store`), and transactions record undo
information so aborts can roll back in place using local logs only
(:mod:`repro.memory.undo` — "no network communication is required",
§4.1).
"""

from repro.memory.layout import AttributeSpec, ObjectLayout, Slot
from repro.memory.store import NodeStore, PageCopy
from repro.memory.undo import UndoLog, UndoRecord

__all__ = [
    "AttributeSpec",
    "ObjectLayout",
    "Slot",
    "NodeStore",
    "PageCopy",
    "UndoLog",
    "UndoRecord",
]
