"""Consistency protocols: COTEC, OTEC, LOTEC, and the RC extension.

All four protocols share the O2PL substrate and differ only in *what
data moves, when* (§5):

* **COTEC** (Conservative OTEC) — ship every page of the object to the
  acquiring site at each global lock acquisition: the paper's baseline.
* **OTEC** — ship only the pages *updated* since the acquiring site
  last saw them (entry consistency at page grain).
* **LOTEC** — ship only updated pages that the compile-time access
  prediction says the acquiring method needs; mispredicted accesses are
  repaired by demand fetches (the paper's contribution).
* **RC** — nested-object Release Consistency: eagerly push updated
  pages to every caching site at root commit (the comparison the
  paper's §6 announces as "now underway"; implemented here).

The transfer engine (:mod:`repro.core.transfer`) implements Algorithm
4.5: group needed pages by their current owner node and gather them,
possibly from several nodes at once.  Gathers complete on the *real*
response delivery events (so injected faults delay installation), and
multi-object acquisitions (:func:`~repro.core.transfer.gather_many`)
coalesce same-owner requests into one batched wire message pair.
"""

from repro.core.protocol import ConsistencyProtocol, TransferOutcome
from repro.core.suite import ProtocolSuite
from repro.core.cotec import COTEC
from repro.core.otec import OTEC
from repro.core.hlotec import HomeBasedLOTEC
from repro.core.lotec import LOTEC
from repro.core.rc import ReleaseConsistency
from repro.core.transfer import (
    GatherTarget,
    demand_fetch,
    gather_many,
    gather_pages,
)

PROTOCOLS = {
    "cotec": COTEC,
    "otec": OTEC,
    "lotec": LOTEC,
    "rc": ReleaseConsistency,
    "hlotec": HomeBasedLOTEC,
}


def make_protocol(name: str, **kwargs) -> ConsistencyProtocol:
    """Instantiate a protocol by registry name.

    ``directory`` is accepted for every protocol but consumed only by
    the home-based variant."""
    try:
        cls = PROTOCOLS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    if cls is not HomeBasedLOTEC:
        kwargs.pop("directory", None)
    return cls(**kwargs)


__all__ = [
    "ConsistencyProtocol",
    "ProtocolSuite",
    "TransferOutcome",
    "COTEC",
    "OTEC",
    "LOTEC",
    "HomeBasedLOTEC",
    "ReleaseConsistency",
    "PROTOCOLS",
    "make_protocol",
    "GatherTarget",
    "gather_many",
    "gather_pages",
    "demand_fetch",
]
