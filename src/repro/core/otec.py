"""OTEC: Object Transactional Entry Consistency.

"The second protocol ... optimized COTEC by sending only the updated
pages to an acquiring transaction's site" (§5).  OTEC is entry
consistency at page grain: the page map's version tags identify which
pages changed since this site last cached them, and only those move.
After an OTEC acquisition the acquiring site is fully current, so no
demand fetching is ever needed.

OTEC shares the event-driven gather engine: transfers complete on the
actual ``PAGE_DATA`` delivery events, and multi-object acquisitions
batch same-owner page requests into one wire pair.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.prediction import AccessPrediction
from repro.core.protocol import ConsistencyProtocol
from repro.objects.registry import ObjectMeta


class OTEC(ConsistencyProtocol):
    name = "otec"

    def select_pages(self, meta: ObjectMeta, page_map,
                     local_versions: Dict[int, int],
                     prediction: AccessPrediction) -> Set[int]:
        return self.stale_pages(page_map, local_versions)
