"""The consistency-protocol interface shared by COTEC/OTEC/LOTEC/RC.

A protocol is consulted at exactly three points:

1. **Global lock acquisition** (:meth:`acquire_transfer`): the grant
   message delivered the object's page map; the protocol decides which
   pages to gather to the acquiring site before the method body runs.
2. **Stale access** (:meth:`on_stale_access`): a method touched a page
   whose local copy is out of date.  LOTEC repairs this with a demand
   fetch; for the exhaustive-transfer protocols it is an invariant
   violation.
3. **Root commit** (:meth:`on_root_commit`): after the page map has
   been updated and locks released.  Release Consistency pushes
   updates to the other caching sites here; the lazy protocols do
   nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set

from repro.analysis.prediction import AccessPrediction, PredictionStats
from repro.core.transfer import (
    PAGE_GRAIN,
    GatherTarget,
    demand_fetch,
    gather_many,
    gather_pages,
)
from repro.net.network import Network
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.obs.tracer import NULL_TRACER
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId


@dataclass
class TransferOutcome:
    """What one acquisition transfer actually moved."""

    wanted: FrozenSet[int] = frozenset()
    shipped: FrozenSet[int] = frozenset()


class ConsistencyProtocol:
    """Base class wiring the shared gather machinery; subclasses choose
    the page-selection policy via :meth:`select_pages`."""

    name = "abstract"

    def __init__(self, env, network: Network, sizes: SizeModel,
                 stores: Dict[NodeId, object], grain: str = PAGE_GRAIN,
                 tracer=None, batch_transfers: bool = True):
        self.env = env
        self.network = network
        self.sizes = sizes
        self.stores = stores
        self.grain = grain
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Coalesce same-owner page requests of multi-object
        #: acquisitions into one wire message pair (see
        #: :func:`repro.core.transfer.gather_many`).
        self.batch_transfers = batch_transfers
        self.prediction_stats = PredictionStats()

    # -- policy hook --------------------------------------------------------

    def select_pages(self, meta: ObjectMeta, page_map,
                     local_versions: Dict[int, int],
                     prediction: AccessPrediction) -> Set[int]:
        """Pages to move to the acquiring site; overridden per protocol."""
        raise NotImplementedError

    @staticmethod
    def stale_pages(page_map, local_versions: Dict[int, int]) -> Set[int]:
        """Pages whose local copy is older than the map's latest."""
        return {
            page
            for page, entry in page_map.items()
            if local_versions.get(page, 0) < entry.version
        }

    # -- acquisition --------------------------------------------------------

    def acquire_transfer(self, txn, meta: ObjectMeta, page_map,
                         prediction: AccessPrediction):
        """Simulation process run right after a global lock grant."""
        node = txn.node
        store = self.stores[node]
        store.register_object(meta.object_id, meta.layout)
        local_versions = store.resident_pages(meta.object_id)
        wanted = self.select_pages(meta, page_map, local_versions, prediction)
        self.prediction_stats.acquisitions += 1
        self.prediction_stats.predicted_pages += len(prediction.pages)
        shipped = yield from gather_pages(
            self.env, self.network, self.sizes, self.stores,
            node, meta, page_map, wanted, grain=self.grain,
            cause="acquire",
        )
        self.prediction_stats.transferred_pages += len(shipped)
        self.tracer.prediction(
            node, meta.object_id, sorted(prediction.pages), sorted(wanted),
            sorted(shipped),
        )
        return TransferOutcome(wanted=frozenset(wanted),
                               shipped=frozenset(shipped))

    def acquire_transfer_many(self, txn, requests):
        """Simulation process: one gather for several just-granted objects.

        ``requests`` is a sequence of ``(meta, page_map, prediction)``
        triples (e.g. a multi-object prefetch).  Page selection runs
        per object exactly as in :meth:`acquire_transfer`, but the wire
        work goes through one :func:`gather_many` call, so requests for
        objects resident at a common owner coalesce into a single
        batched ``PAGE_REQUEST``/``PAGE_DATA`` pair when
        ``batch_transfers`` is on.  Returns ``{object id:
        TransferOutcome}``.
        """
        node = txn.node
        store = self.stores[node]
        targets = []
        selected = []
        for meta, page_map, prediction in requests:
            store.register_object(meta.object_id, meta.layout)
            local_versions = store.resident_pages(meta.object_id)
            wanted = self.select_pages(meta, page_map, local_versions,
                                       prediction)
            self.prediction_stats.acquisitions += 1
            self.prediction_stats.predicted_pages += len(prediction.pages)
            selected.append((meta, prediction, wanted))
            targets.append(GatherTarget(
                meta=meta, page_map=page_map,
                pages=tuple(sorted(wanted)),
            ))
        shipped_by_object = yield from gather_many(
            self.env, self.network, self.sizes, self.stores, node, targets,
            grain=self.grain, cause="acquire", batch=self.batch_transfers,
        )
        outcomes = {}
        for meta, prediction, wanted in selected:
            shipped = shipped_by_object.get(meta.object_id, [])
            self.prediction_stats.transferred_pages += len(shipped)
            self.tracer.prediction(
                node, meta.object_id, sorted(prediction.pages),
                sorted(wanted), sorted(shipped),
            )
            outcomes[meta.object_id] = TransferOutcome(
                wanted=frozenset(wanted), shipped=frozenset(shipped)
            )
        return outcomes

    # -- stale access -------------------------------------------------------

    def on_stale_access(self, txn, meta: ObjectMeta, page_map,
                        pages: Iterable[int], is_write: bool) -> float:
        """Handle an access to stale pages; returns deferred delay.

        Default: exhaustive-transfer protocols must never see one.
        """
        raise ProtocolError(
            f"{self.name}: transaction {txn.id!r} accessed stale pages "
            f"{sorted(pages)} of {meta.object_id!r} at {txn.node!r} — the "
            f"acquisition transfer should have made them current"
        )

    # -- commit --------------------------------------------------------------

    def on_root_commit(self, root, dirty: Dict, metas) -> None:
        """Hook after root commit; lazy protocols do nothing.

        Non-generator on purpose: eager pushes are fire-and-forget
        (charged immediately, delivered asynchronously).
        """

    def snapshot(self) -> Dict[str, object]:
        stats = self.prediction_stats
        return {
            "protocol": self.name,
            "acquisitions": stats.acquisitions,
            "predicted_pages": stats.predicted_pages,
            "transferred_pages": stats.transferred_pages,
            "demand_fetches": stats.demand_fetches,
            "write_misses": stats.write_misses,
            "over_predicted_pages": stats.over_predicted_pages,
        }


class _DemandFetchMixin:
    """Shared demand-fetch repair used by LOTEC (and RC's cold start)."""

    def _demand_fetch(self, txn, meta: ObjectMeta, page_map,
                      pages: Iterable[int], is_write: bool) -> float:
        delay, shipped = demand_fetch(
            self.network, self.sizes, self.stores,
            txn.node, meta, page_map, pages, grain=self.grain,
            is_write=is_write,
        )
        self.prediction_stats.demand_fetches += len(shipped)
        if is_write:
            self.prediction_stats.write_misses += len(shipped)
        return delay
