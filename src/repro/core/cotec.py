"""COTEC: Conservative Object Transactional Entry Consistency.

"COTEC transfers all of an object's pages to the acquiring site after
a successful lock acquisition and provides a baseline for performance
measurement" (§5).  COTEC keeps no per-page version knowledge: it
ships every page whose latest copy is on some other node, whether or
not the acquiring site's copy happens to be current — full object
shipping, the behaviour of a naive distributed object system.

COTEC objects usually live whole at one owner, so its gathers are
single-source; in a batched multi-object acquisition several COTEC
objects at a common owner still coalesce into one wire pair, and the
gather completes when the real ``PAGE_DATA`` delivery lands.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.prediction import AccessPrediction
from repro.core.protocol import ConsistencyProtocol
from repro.objects.registry import ObjectMeta


class COTEC(ConsistencyProtocol):
    name = "cotec"

    def select_pages(self, meta: ObjectMeta, page_map,
                     local_versions: Dict[int, int],
                     prediction: AccessPrediction) -> Set[int]:
        # Every page; gather_pages drops the ones already owned here.
        # COTEC ships a page even when the local copy is up to date
        # (it tracks object location, not page versions) — except, of
        # course, pages whose authoritative copy is local.
        return set(page_map)
