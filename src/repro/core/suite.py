"""Per-class protocol dispatch.

Section 6 names, as future work, "extensions to support different
consistency protocols ... on a per-class basis."  A
:class:`ProtocolSuite` owns one protocol instance per configured name
and routes every consistency decision by the object's class: hot
write-mostly classes can run eager RC while large read-mostly classes
stay on LOTEC, within one cluster and one lock protocol (O2PL is
shared; only data movement differs per class).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

from repro.analysis.prediction import PredictionStats
from repro.core.protocol import ConsistencyProtocol
from repro.objects.registry import ObjectMeta
from repro.util.errors import ConfigurationError


class ProtocolSuite:
    """Routes protocol hooks to the instance owning each class."""

    def __init__(self, default: ConsistencyProtocol,
                 by_class: Dict[str, ConsistencyProtocol]):
        self.default = default
        self.by_class = dict(by_class)

    @classmethod
    def build(cls, factory: Callable[[str], ConsistencyProtocol],
              default_name: str,
              class_protocols: Iterable[Tuple[str, str]]) -> "ProtocolSuite":
        """Instantiate one protocol per distinct name.

        ``factory(name)`` builds a protocol; instances are shared
        between classes configured with the same name (and with the
        default when names coincide), so statistics aggregate naturally.
        """
        instances: Dict[str, ConsistencyProtocol] = {
            default_name: factory(default_name)
        }
        by_class: Dict[str, ConsistencyProtocol] = {}
        for class_name, protocol_name in class_protocols:
            if protocol_name not in instances:
                instances[protocol_name] = factory(protocol_name)
            if class_name in by_class:
                raise ConfigurationError(
                    f"class {class_name!r} mapped to a protocol twice"
                )
            by_class[class_name] = instances[protocol_name]
        return cls(default=instances[default_name], by_class=by_class)

    # -- dispatch -----------------------------------------------------------

    def for_meta(self, meta: ObjectMeta) -> ConsistencyProtocol:
        return self.by_class.get(meta.schema.name, self.default)

    def instances(self) -> Tuple[ConsistencyProtocol, ...]:
        seen = {id(self.default): self.default}
        for protocol in self.by_class.values():
            seen.setdefault(id(protocol), protocol)
        return tuple(seen.values())

    def acquire_transfer_many(self, txn, requests):
        """Group a multi-object acquisition by owning protocol instance.

        ``requests`` is a sequence of ``(meta, page_map, prediction)``
        triples.  Each protocol instance gathers its own group (one
        batched wire exchange per instance and owner); returns the
        merged ``{object id: TransferOutcome}`` map.
        """
        grouped: Dict[int, list] = {}
        order: Dict[int, ConsistencyProtocol] = {}
        for request in requests:
            protocol = self.for_meta(request[0])
            grouped.setdefault(id(protocol), []).append(request)
            order[id(protocol)] = protocol
        outcomes = {}
        for key, group in grouped.items():
            result = yield from order[key].acquire_transfer_many(txn, group)
            outcomes.update(result)
        return outcomes

    def on_root_commit(self, root, dirty: Dict, metas) -> None:
        """Group the commit's dirty objects by owning protocol."""
        grouped: Dict[int, Dict] = {}
        protocols: Dict[int, ConsistencyProtocol] = {}
        for object_id, pages in dirty.items():
            protocol = self.for_meta(metas(object_id))
            grouped.setdefault(id(protocol), {})[object_id] = pages
            protocols[id(protocol)] = protocol
        for key, protocol_dirty in grouped.items():
            protocols[key].on_root_commit(root, protocol_dirty, metas)

    # -- aggregate statistics ---------------------------------------------------

    @property
    def prediction_stats(self) -> PredictionStats:
        """Merged copy of every instance's prediction counters."""
        merged = PredictionStats()
        for protocol in self.instances():
            merged.merge(protocol.prediction_stats)
        return merged

    @property
    def name(self) -> str:
        names = sorted({p.name for p in self.instances()})
        return names[0] if len(names) == 1 else "+".join(names)

    def snapshot(self) -> Dict[str, object]:
        if len(self.instances()) == 1:
            return self.default.snapshot()
        return {
            "protocol": self.name,
            "instances": [p.snapshot() for p in self.instances()],
        }
