"""LOTEC: Lazy Object Transactional Entry Consistency — the paper's
contribution.

At global acquisition LOTEC moves only the pages that are both
*updated* (stale at the acquiring site) and *predicted needed* by the
acquiring method's compile-time access analysis: "LOTEC need only
transfer those parts of an object (in this system, 'pages') which have
been updated and which are actually required" (§4.1).

Consequences implemented here:

* Pages outside the prediction stay stale; if a later method of the
  same family (or a mispredicted access) touches one, it is pulled on
  demand — "If additional parts turn out to be needed, these can be
  fetched on demand" (§4.3).
* Because only accessed parts migrate, the up-to-date pages of one
  object scatter across the nodes that last wrote them; acquisitions
  gather from several sources (Algorithm 4.5), which is why LOTEC
  sends *more, smaller* messages than OTEC/COTEC while moving fewer
  bytes — the trade-off Figures 6-8 quantify.
* Those scattered gathers complete on the actual ``PAGE_DATA``
  delivery events, and multi-object acquisitions coalesce same-owner
  requests into one batched wire pair — the message-count overhead
  LOTEC pays for laziness is exactly what per-owner batching claws
  back (see :mod:`repro.core.transfer`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.analysis.prediction import AccessPrediction
from repro.core.protocol import ConsistencyProtocol, _DemandFetchMixin
from repro.objects.registry import ObjectMeta


class LOTEC(_DemandFetchMixin, ConsistencyProtocol):
    name = "lotec"

    def select_pages(self, meta: ObjectMeta, page_map,
                     local_versions: Dict[int, int],
                     prediction: AccessPrediction) -> Set[int]:
        return self.stale_pages(page_map, local_versions) & set(prediction.pages)

    def on_stale_access(self, txn, meta: ObjectMeta, page_map,
                        pages: Iterable[int], is_write: bool) -> float:
        return self._demand_fetch(txn, meta, page_map, pages, is_write)
