"""Algorithm 4.5: TransferOfUpdatedPages.

"FOREACH object page DO: IF the most up-to-date page is not resident
here THEN add the page to a list of pages to obtain from the site at
which it is stored.  FOREACH site from which page(s) must be obtained
DO: copy the set of pages provided in the site's list from the
specified site to the acquiring site."

Under LOTEC the up-to-date parts of one object may be scattered over
several nodes, so one acquisition can gather from multiple sources;
requests to distinct sources proceed concurrently (one request/response
pair per source).  Page data may be shipped at page grain (whole
pages) or object grain (only the object's bytes on each page — the
Distributed Shared Data mode of §4.2, which is how LOTEC sidesteps
false sharing without twins or diffs).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.net.message import Message, MessageCategory
from repro.net.network import Network
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId

PAGE_GRAIN = "page"
OBJECT_GRAIN = "object"


def _data_size(sizes: SizeModel, meta: ObjectMeta, pages: List[int],
               grain: str) -> int:
    if grain == PAGE_GRAIN:
        return sizes.page_data(len(pages))
    if grain == OBJECT_GRAIN:
        return sizes.object_data(
            sum(meta.layout.object_bytes_on_page(page) for page in pages)
        )
    raise ConfigurationError(f"unknown transfer grain {grain!r}")


def _plan_sources(page_map, pages: Iterable[int]) -> Dict[NodeId, List[int]]:
    """Group wanted pages by the node owning their latest version."""
    by_owner: Dict[NodeId, List[int]] = defaultdict(list)
    for page in sorted(set(pages)):
        by_owner[page_map[page].owner].append(page)
    return by_owner


def gather_pages(env, network: Network, sizes: SizeModel, stores,
                 node: NodeId, meta: ObjectMeta, page_map,
                 pages: Iterable[int], grain: str = PAGE_GRAIN,
                 cause: str = "acquire"):
    """Simulation process: gather ``pages`` to ``node``; returns the
    list of pages actually shipped over the network.

    ``stores`` maps NodeId -> NodeStore.  Pages whose owner is the
    acquiring node itself need no shipment.  All source round trips run
    concurrently; installation happens when the last response lands.
    ``cause`` labels the gather in traces and byte-by-cause metrics.
    """
    by_owner = _plan_sources(page_map, pages)
    by_owner.pop(node, None)
    if not by_owner:
        return []
    token = network.tracer.transfer_begin(
        node, meta.object_id, cause, sorted(set(pages))
    )
    deliveries = []
    shipped: List[int] = []
    data_bytes = 0
    for owner, owner_pages in sorted(by_owner.items()):
        request = Message(
            src=node, dst=owner,
            category=MessageCategory.PAGE_REQUEST,
            size_bytes=sizes.page_request(len(owner_pages)),
            object_id=meta.object_id,
        )
        response = Message(
            src=owner, dst=node,
            category=MessageCategory.PAGE_DATA,
            size_bytes=_data_size(sizes, meta, owner_pages, grain),
            object_id=meta.object_id,
        )
        shipped.extend(owner_pages)
        data_bytes += response.size_bytes

        def chain(event, resp=response):
            network.send(resp)

        # Response departs when the request arrives at the owner.
        network.send(request).add_callback(chain)
        # Wait for both legs' time without re-sending: total wait is
        # request time + response time, modelled by a timeout equal to
        # the response transfer time after the request delivery.
        deliveries.append(_round_trip_event(env, network, request, response))
    yield env.all_of(deliveries)
    for owner, owner_pages in sorted(by_owner.items()):
        copies = stores[owner].extract_pages(meta.object_id, owner_pages)
        stores[node].install_pages(meta.object_id, copies)
    network.tracer.transfer_end(token, cause, shipped, data_bytes)
    return shipped


def _round_trip_event(env, network: Network, request: Message,
                      response: Message):
    """Event firing when the response of one source round trip lands."""
    done = env.event(name="gather-roundtrip")
    total = (
        network.config.transfer_time(request.size_bytes)
        + network.config.transfer_time(response.size_bytes)
        if not request.is_local
        else 0.0
    )
    env.timeout(total).add_callback(lambda _e: done.succeed(None))
    return done


def demand_fetch(network: Network, sizes: SizeModel, stores,
                 node: NodeId, meta: ObjectMeta, page_map,
                 pages: Iterable[int], grain: str = PAGE_GRAIN,
                 is_write: bool = False) -> Tuple[float, List[int]]:
    """Synchronous gather used from inside running method bodies.

    Moves the data immediately (safe: the object's lock is held, so the
    sources are quiescent) and returns ``(deferred delay, shipped
    pages)`` — the delay is charged to the transaction at its next
    suspension point.  ``is_write`` only annotates the trace event.
    """
    by_owner = _plan_sources(page_map, pages)
    by_owner.pop(node, None)
    delay = 0.0
    shipped: List[int] = []
    data_bytes = 0
    for owner, owner_pages in sorted(by_owner.items()):
        request = Message(
            src=node, dst=owner,
            category=MessageCategory.PAGE_REQUEST,
            size_bytes=sizes.page_request(len(owner_pages)),
            object_id=meta.object_id,
        )
        response = Message(
            src=owner, dst=node,
            category=MessageCategory.PAGE_DATA,
            size_bytes=_data_size(sizes, meta, owner_pages, grain),
            object_id=meta.object_id,
        )
        delay += network.charge(request)
        delay += network.charge(response)
        data_bytes += response.size_bytes
        copies = stores[owner].extract_pages(meta.object_id, owner_pages)
        stores[node].install_pages(meta.object_id, copies)
        shipped.extend(owner_pages)
    if shipped:
        network.tracer.demand_fetch(
            node, meta.object_id, sorted(set(pages)), shipped, data_bytes,
            is_write, delay,
        )
    return delay, shipped
