"""Algorithm 4.5: TransferOfUpdatedPages.

"FOREACH object page DO: IF the most up-to-date page is not resident
here THEN add the page to a list of pages to obtain from the site at
which it is stored.  FOREACH site from which page(s) must be obtained
DO: copy the set of pages provided in the site's list from the
specified site to the acquiring site."

Under LOTEC the up-to-date parts of one object may be scattered over
several nodes, so one acquisition can gather from multiple sources;
requests to distinct sources proceed concurrently (one request/response
pair per source).  Page data may be shipped at page grain (whole
pages) or object grain (only the object's bytes on each page — the
Distributed Shared Data mode of §4.2, which is how LOTEC sidesteps
false sharing without twins or diffs).

Two refinements on top of the paper's algorithm:

* **Event-driven completion.**  A gather waits on the *actual*
  delivery events of its ``PAGE_DATA`` responses (chained through
  :meth:`~repro.net.network.Network.send`), never on an estimated
  round-trip timer.  With fault injection active, retransmissions and
  jitter therefore delay page installation for free — pages cannot be
  installed at a phantom time before their bytes have arrived.
* **Per-owner coalescing** (:func:`gather_many`).  When one
  acquisition wants pages of several objects whose up-to-date versions
  live at the same owner node, the requests are batched into a single
  multi-object ``PAGE_REQUEST``/``PAGE_DATA`` pair carrying a
  :class:`~repro.net.message.ManifestEntry` per object — the software
  startup cost and protocol header are paid once per owner instead of
  once per object.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.net.message import ManifestEntry, Message, MessageCategory
from repro.net.network import Network
from repro.net.sizes import SizeModel
from repro.objects.registry import ObjectMeta
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId, ObjectId

PAGE_GRAIN = "page"
OBJECT_GRAIN = "object"


@dataclass(frozen=True)
class GatherTarget:
    """One object's wanted pages inside a (possibly multi-object) gather."""

    meta: ObjectMeta
    page_map: Mapping
    pages: Tuple[int, ...]


def _data_size(sizes: SizeModel, meta: ObjectMeta, pages: List[int],
               grain: str) -> int:
    if grain == PAGE_GRAIN:
        return sizes.page_data(len(pages))
    if grain == OBJECT_GRAIN:
        return sizes.object_data(
            sum(meta.layout.object_bytes_on_page(page) for page in pages)
        )
    raise ConfigurationError(f"unknown transfer grain {grain!r}")


def _entry_data_size(sizes: SizeModel, meta: ObjectMeta, pages: List[int],
                     grain: str) -> int:
    """One object's payload share of a batched PAGE_DATA message."""
    if grain == PAGE_GRAIN:
        return sizes.data_entry(len(pages))
    if grain == OBJECT_GRAIN:
        return sizes.object_data_entry(
            sum(meta.layout.object_bytes_on_page(page) for page in pages)
        )
    raise ConfigurationError(f"unknown transfer grain {grain!r}")


def _plan_sources(page_map, pages: Iterable[int]) -> Dict[NodeId, List[int]]:
    """Group wanted pages by the node owning their latest version."""
    by_owner: Dict[NodeId, List[int]] = defaultdict(list)
    for page in sorted(set(pages)):
        by_owner[page_map[page].owner].append(page)
    return by_owner


def _send_round_trip(env, network: Network, request: Message,
                     response: Message):
    """Event firing when the *real* response delivery lands.

    The response departs when the request's delivery event fires and
    the returned event fires when the response's delivery event fires —
    both straight from :meth:`Network.send`, so injected drops,
    retransmit turnarounds, and jitter on either leg push the
    completion instant out by exactly the time they consumed.
    """
    done = env.event(name="gather-roundtrip")

    def relay(_event, resp=response):
        network.send(resp).add_callback(
            lambda event: done.succeed(event.value)
        )

    network.send(request).add_callback(relay)
    return done


def gather_many(env, network: Network, sizes: SizeModel, stores,
                node: NodeId, targets: Sequence[GatherTarget],
                grain: str = PAGE_GRAIN, cause: str = "acquire",
                batch: bool = True) -> Dict[ObjectId, List[int]]:
    """Simulation process: gather several objects' pages to ``node``.

    Returns ``{object id: pages actually shipped}``.  Pages whose owner
    is the acquiring node need no shipment.  All owner round trips run
    concurrently; installation happens when the last response delivery
    event fires — never before the bytes have actually arrived.

    With ``batch`` enabled, entries bound for the same owner coalesce
    into one multi-object ``PAGE_REQUEST``/``PAGE_DATA`` pair (paying
    the protocol header and software startup cost once); otherwise —
    and always for single-object-per-owner gathers — the wire format
    is byte-identical to the classic per-object pair.
    """
    tracer = network.tracer
    shipped: Dict[ObjectId, List[int]] = {
        target.meta.object_id: [] for target in targets
    }
    owner_lists: Dict[NodeId, List[Tuple[ObjectMeta, List[int]]]] = {}
    for target in targets:
        by_owner = _plan_sources(target.page_map, target.pages)
        by_owner.pop(node, None)
        for owner, pages in sorted(by_owner.items()):
            owner_lists.setdefault(owner, []).append((target.meta, pages))
    if not owner_lists:
        return shipped

    # One gather span per object that needs remote pages.
    requested: Dict[ObjectId, List[int]] = {}
    for entries in owner_lists.values():
        for meta, pages in entries:
            requested.setdefault(meta.object_id, []).extend(pages)
    tokens = {
        object_id: tracer.transfer_begin(node, object_id, cause,
                                         sorted(pages))
        for object_id, pages in requested.items()
    }

    deliveries = []
    responses_by_object: Dict[ObjectId, List[Message]] = defaultdict(list)
    data_bytes: Dict[ObjectId, int] = defaultdict(int)
    for owner, entries in sorted(owner_lists.items()):
        entries.sort(key=lambda pair: pair[0].object_id)
        if batch and len(entries) > 1:
            request_manifest = tuple(
                ManifestEntry(meta.object_id, tuple(pages),
                              sizes.request_entry(len(pages)))
                for meta, pages in entries
            )
            data_manifest = tuple(
                ManifestEntry(meta.object_id, tuple(pages),
                              _entry_data_size(sizes, meta, pages, grain))
                for meta, pages in entries
            )
            request = Message(
                src=node, dst=owner,
                category=MessageCategory.PAGE_REQUEST,
                size_bytes=sizes.header_bytes + sum(
                    entry.size_bytes for entry in request_manifest
                ),
                manifest=request_manifest,
            )
            response = Message(
                src=owner, dst=node,
                category=MessageCategory.PAGE_DATA,
                size_bytes=sizes.header_bytes + sum(
                    entry.size_bytes for entry in data_manifest
                ),
                manifest=data_manifest,
            )
            # Unbatched, these entries would have cost one
            # request/response pair *each*.
            saved = 2 * (len(entries) - 1)
            tracer.transfer_batch(
                node, owner, [meta.object_id for meta, _ in entries],
                request.size_bytes, response.size_bytes, saved,
            )
            pairs = [(request, response)]
        else:
            pairs = []
            for meta, pages in entries:
                pairs.append((
                    Message(
                        src=node, dst=owner,
                        category=MessageCategory.PAGE_REQUEST,
                        size_bytes=sizes.page_request(len(pages)),
                        object_id=meta.object_id,
                    ),
                    Message(
                        src=owner, dst=node,
                        category=MessageCategory.PAGE_DATA,
                        size_bytes=_data_size(sizes, meta, pages, grain),
                        object_id=meta.object_id,
                    ),
                ))
        for request, response in pairs:
            deliveries.append(_send_round_trip(env, network, request,
                                               response))
            for object_id, share in response.attributions():
                responses_by_object[object_id].append(response)
                data_bytes[object_id] += share
        for meta, pages in entries:
            shipped[meta.object_id].extend(pages)

    yield env.all_of(deliveries)

    installed_versions: Dict[ObjectId, Dict[int, int]] = defaultdict(dict)
    for owner, entries in sorted(owner_lists.items()):
        for meta, pages in entries:
            copies = stores[owner].extract_pages(meta.object_id, pages)
            stores[node].install_pages(meta.object_id, copies)
            for copy in copies:
                installed_versions[meta.object_id][copy.page] = copy.version
    for object_id in requested:
        tracer.transfer_install(
            node, object_id, sorted(shipped[object_id]), cause,
            sorted(response.deliver_time
                   for response in responses_by_object[object_id]),
            versions=installed_versions[object_id],
        )
        tracer.transfer_end(tokens[object_id], cause, shipped[object_id],
                            data_bytes[object_id])
    return shipped


def gather_pages(env, network: Network, sizes: SizeModel, stores,
                 node: NodeId, meta: ObjectMeta, page_map,
                 pages: Iterable[int], grain: str = PAGE_GRAIN,
                 cause: str = "acquire"):
    """Simulation process: gather one object's ``pages`` to ``node``;
    returns the list of pages actually shipped over the network.

    Single-object front end to :func:`gather_many` — one wire
    request/response pair per source owner, completion driven by the
    real response delivery events.
    """
    shipped = yield from gather_many(
        env, network, sizes, stores, node,
        [GatherTarget(meta=meta, page_map=page_map,
                      pages=tuple(sorted(set(pages))))],
        grain=grain, cause=cause, batch=False,
    )
    return shipped[meta.object_id]


def demand_fetch(network: Network, sizes: SizeModel, stores,
                 node: NodeId, meta: ObjectMeta, page_map,
                 pages: Iterable[int], grain: str = PAGE_GRAIN,
                 is_write: bool = False) -> Tuple[float, List[int]]:
    """Synchronous gather used from inside running method bodies.

    Moves the data immediately (safe: the object's lock is held, so the
    sources are quiescent) and returns ``(deferred delay, shipped
    pages)`` — the delay is charged to the transaction at its next
    suspension point.  ``is_write`` only annotates the trace event.
    """
    by_owner = _plan_sources(page_map, pages)
    by_owner.pop(node, None)
    delay = 0.0
    shipped: List[int] = []
    data_bytes = 0
    versions: Dict[int, int] = {}
    for owner, owner_pages in sorted(by_owner.items()):
        request = Message(
            src=node, dst=owner,
            category=MessageCategory.PAGE_REQUEST,
            size_bytes=sizes.page_request(len(owner_pages)),
            object_id=meta.object_id,
        )
        response = Message(
            src=owner, dst=node,
            category=MessageCategory.PAGE_DATA,
            size_bytes=_data_size(sizes, meta, owner_pages, grain),
            object_id=meta.object_id,
        )
        delay += network.charge(request)
        delay += network.charge(response)
        data_bytes += response.size_bytes
        copies = stores[owner].extract_pages(meta.object_id, owner_pages)
        stores[node].install_pages(meta.object_id, copies)
        for copy in copies:
            versions[copy.page] = copy.version
        shipped.extend(owner_pages)
    if shipped:
        network.tracer.demand_fetch(
            node, meta.object_id, sorted(set(pages)), shipped, data_bytes,
            is_write, delay, versions=versions,
        )
    return delay, shipped
