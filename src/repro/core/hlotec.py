"""Home-based LOTEC: the §6 "scope consistency" design point.

Section 6 lists scope consistency among the DSM techniques LOTEC
should compose with.  Scope-consistency systems are typically
*home-based* (each page has a home node that always holds its latest
version); this protocol grafts that discipline onto LOTEC:

* at root commit, every dirty page is **written back** to its object's
  GDO home node, which becomes the page's owner;
* acquisitions therefore gather (predicted ∩ stale) pages from a
  single source — the home — instead of scattering Algorithm 4.5
  requests across past updaters;
* demand fetches likewise hit one node.

The trade: extra write-back bytes on every commit (even when the next
reader is the writer itself) against strictly fewer gather sources —
the opposite corner of the messages-vs-bytes space from plain LOTEC,
which is what makes it a useful comparison protocol.
"""

from __future__ import annotations

from typing import Dict

from repro.core.lotec import LOTEC
from repro.core.transfer import PAGE_GRAIN
from repro.net.message import Message, MessageCategory
from repro.util.errors import ConfigurationError


class HomeBasedLOTEC(LOTEC):
    name = "hlotec"

    def __init__(self, *args, directory=None, **kwargs):
        super().__init__(*args, **kwargs)
        if directory is None:
            raise ConfigurationError(
                "hlotec needs the GDO directory (for home nodes); "
                "construct it through the cluster"
            )
        self.directory = directory

    def on_root_commit(self, root, dirty: Dict, metas) -> None:
        """Write every dirty page back to its object's home node."""
        node = root.node
        source_store = self.stores[node]
        for object_id, pages in dirty.items():
            if not pages:
                continue
            entry = self.directory.entry(object_id)
            home = entry.home_node
            meta = metas(object_id)
            copies = source_store.extract_pages(object_id, pages)
            if home != node:
                size = (
                    self.sizes.page_data(len(pages))
                    if self.grain == PAGE_GRAIN
                    else self.sizes.object_data(
                        sum(
                            meta.layout.object_bytes_on_page(page)
                            for page in pages
                        )
                    )
                )
                writeback = Message(
                    src=node, dst=home,
                    category=MessageCategory.UPDATE_PUSH,
                    size_bytes=size, object_id=object_id,
                )
                self.network.charge(writeback)
                home_store = self.stores[home]
                home_store.register_object(object_id, meta.layout)
                home_store.install_pages(object_id, copies)
            # The home now holds (or already held) the latest version:
            # point the page map at it so gathers are single-source.
            for page in pages:
                entry.page_map[page].owner = home
