"""Nested-object Release Consistency — the paper's announced extension.

Section 6: "One omission from our simulation studies was the
implementation of a simulated version of Release Consistency for
nested objects.  This work is now underway..."  We implement it: at
root commit the updating site eagerly *pushes* every dirty page to
every other site caching the object (Munin-style eager RC, [CBZ91]),
so acquisitions find local copies already current.

Cold starts (a site that has never cached the object) still pull the
pages they lack at acquisition time, like OTEC; after that, pushes
keep every caching site current.  The cost profile is the opposite of
LOTEC's: few demand transfers, but update bytes multiplied by the
number of caching replicas whether or not they will ever read them.

Cold-start pulls ride the shared gather engine (event-driven
completion, per-owner batching for multi-object acquisitions); the
commit-time pushes stay on the synchronous ``charge_group`` path —
they are fire-and-forget and never gate an installation the pushing
site waits on.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.prediction import AccessPrediction
from repro.core.protocol import ConsistencyProtocol
from repro.core.transfer import PAGE_GRAIN
from repro.net.message import Message, MessageCategory
from repro.objects.registry import ObjectMeta


class ReleaseConsistency(ConsistencyProtocol):
    name = "rc"

    def select_pages(self, meta: ObjectMeta, page_map,
                     local_versions: Dict[int, int],
                     prediction: AccessPrediction) -> Set[int]:
        # Steady state: pushes keep caching sites current and this is
        # empty.  Cold start (or a race with an in-flight push): pull
        # whatever is stale, as OTEC would.
        return self.stale_pages(page_map, local_versions)

    def on_root_commit(self, root, dirty: Dict, metas) -> None:
        """Eagerly propagate updates to all other caching sites.

        On a multicast-capable network (§6) the push to all replicas is
        a single transmission; otherwise one unicast per replica."""
        node = root.node
        source_store = self.stores[node]
        for object_id, pages in dirty.items():
            if not pages:
                continue
            meta = metas(object_id)
            copies = source_store.extract_pages(object_id, pages)
            replicas = [
                target
                for target, store in self.stores.items()
                if target != node
                and store.has_object(object_id)
                and store.resident_pages(object_id)
            ]
            if not replicas:
                continue
            size = (
                self.sizes.page_data(len(pages))
                if self.grain == PAGE_GRAIN
                else self.sizes.object_data(
                    sum(meta.layout.object_bytes_on_page(p) for p in pages)
                )
            )
            template = Message(
                src=node, dst=replicas[0],
                category=MessageCategory.UPDATE_PUSH,
                size_bytes=size, object_id=object_id,
            )
            self.network.charge_group(template, replicas)
            pushed_bytes = size * (
                1 if self.network.config.multicast else len(replicas)
            )
            self.tracer.update_push(
                node, object_id, sorted(pages), pushed_bytes, replicas,
                versions={copy.page: copy.version for copy in copies},
            )
            for target in replicas:
                self.stores[target].install_pages(object_id, copies)
