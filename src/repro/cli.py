"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``fig2`` …
  ``fig8``, ``tab-speedup``, ``msg-count``, or an ablation id from
  DESIGN.md §3) and print it as a table, ASCII chart, or JSON
  (``--format table|chart|json``); ``--out`` writes the versioned JSON
  result for downstream plotting, ``--jobs N`` fans the per-
  configuration cluster runs out over a process pool, and completed
  runs are memoized under ``.repro-cache/`` (``--no-cache`` to skip).
* ``bench [ids…]`` — run many experiments at once (default: all of
  them) through the same pool and cache, writing one
  ``BENCH_<id>.json`` per experiment.
* ``compare`` — run one workload scenario under all four protocols and
  print the side-by-side summary (same ``--format``/``--out`` surface
  as ``experiment``).
* ``run <scenario>`` — run one scenario once on a chosen wire backend
  (``--transport sim`` or ``--transport tcp``; ``--processes`` gives
  each node a real OS relay process) and print the run summary; the
  standard artifact flags apply, so ``--trace-dir`` + ``--check`` over
  TCP is the end-to-end real-socket smoke test.
* ``trace`` — run one scenario with the :mod:`repro.obs` tracer on and
  write the trace artifacts (JSONL event log + Chrome ``trace_event``
  JSON loadable in Perfetto / ``chrome://tracing``) plus a metrics
  summary.
* ``chaos <preset>`` — run one scenario under a named fault preset
  (message loss, duplication, delay jitter, node crash/recovery with
  durable-record rejoin and GDO home failover, partitions, slow nodes,
  lock timeouts — see :data:`repro.faults.FAULT_PRESETS`), print the
  fault and retry accounting, and gate the exit code on the
  serializability oracle *and* every trace invariant checker
  (including heal-aware liveness); ``--transport tcp`` runs the same
  preset over real localhost sockets.
* ``fuzz`` — schedule-exploration fuzzing (:mod:`repro.check`): run N
  seeds x protocols x fault presets with perturbed same-instant event
  ordering, judge every run with the serializability oracles, the
  nested-O2PL reference model, and the trace invariant checkers, and
  on failure print a minimized one-line repro command (``--trace-dir``
  also dumps the failing trace as JSONL + a text report);
  ``--migration`` runs every task with adaptive GDO home migration
  enabled, and ``--recovery`` adds the crash/partition/failover
  presets to the preset axis.
* ``load <scenario>`` — run one open-loop load scenario
  (:mod:`repro.load`: Zipf popularity, per-client locality, Poisson or
  bursty arrivals) on a one-node-per-client cluster with adaptive GDO
  home migration (``--no-migration`` for the static partition), print
  the per-shard p50/p99/p999 request-latency SLO table, and optionally
  gate on the serializability oracle (``--check``) and write trace
  artifacts (``--trace-dir``).  ``--out`` writes the same
  schema-versioned JSON envelope the experiment drivers emit.
* ``list`` — show available experiment ids and scenarios.
* ``version`` (or ``--version``) — print the package version.

Artifact flags are uniform across the scenario-running subcommands
(``run``/``trace``/``chaos``/``fuzz``/``load``): ``--out PATH`` writes
the run's JSON envelope, ``--trace-dir DIR`` writes trace artifacts
(JSONL event log with a clock header + Chrome trace), and ``--check``
gates the exit code on the serializability oracle where the command
does not already gate by design.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from repro.bench import (
    DEFAULT_CACHE_DIR,
    EXPERIMENTS,
    ExperimentResult,
    ExperimentRunner,
    ResultCache,
    format_bench_summary,
    format_table,
)
from repro.check import (
    ALL_PROTOCOLS,
    DEFAULT_POLICIES,
    run_campaign,
    run_invariants,
)
from repro.faults import FAULT_PRESETS
from repro.gdo.migration import MigrationConfig
from repro.load import LOAD_SCENARIOS, build_load, run_load, shard_slo_series
from repro.obs import render_summary, write_chrome_trace, write_jsonl
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.verify import check_serializability
from repro.util.errors import ReproError
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

OUTPUT_FORMATS = ("table", "chart", "json")


def _package_version() -> str:
    from repro import __version__

    return __version__


def _add_run_arguments(parser: argparse.ArgumentParser,
                       default_scale: float = 1.0) -> None:
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=float, default=default_scale,
                        help="workload size factor (1.0 = full)")
    parser.add_argument("--nodes", type=int, default=4)


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=OUTPUT_FORMATS, default=None,
        help="stdout rendering: table (default), chart, or json",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="also write the result as versioned JSON",
    )


def _add_artifact_arguments(parser: argparse.ArgumentParser, *,
                            out: bool = True, trace_dir: bool = True,
                            check: bool = True,
                            trace_dir_default: Optional[str] = None) -> None:
    """The uniform artifact surface of every scenario-running command:
    ``--out`` (JSON envelope), ``--trace-dir`` (JSONL + Chrome trace),
    ``--check`` (serializability gate)."""
    group = parser.add_argument_group(
        "artifacts", "uniform output flags shared by run/trace/chaos/"
                     "fuzz/load"
    )
    if out:
        group.add_argument(
            "--out", metavar="PATH",
            help="write the run's JSON envelope to this file",
        )
    if trace_dir:
        group.add_argument(
            "--trace-dir", metavar="DIR", default=trace_dir_default,
            help="write trace artifacts (JSONL event log + Chrome "
                 "trace) to this directory",
        )
    if check:
        group.add_argument(
            "--check", action="store_true",
            help="gate on the serializability oracle: exit nonzero if "
                 "the run is not equivalent to a serial replay",
        )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-configuration runs "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always execute; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOTEC reproduction experiment harness",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    _add_run_arguments(exp)
    _add_output_arguments(exp)
    _add_runner_arguments(exp)

    bench = sub.add_parser(
        "bench",
        help="run many experiments at once; write one BENCH_<id>.json each",
    )
    bench.add_argument(
        "ids", nargs="*", metavar="id",
        help="experiment ids to run (default: every registered experiment)",
    )
    _add_run_arguments(bench)
    _add_runner_arguments(bench)
    bench.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for the BENCH_<id>.json files (default: .)",
    )

    cmp_parser = sub.add_parser(
        "compare", help="run a scenario under all protocols"
    )
    cmp_parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                            default="medium-high")
    _add_run_arguments(cmp_parser, default_scale=0.5)
    _add_output_arguments(cmp_parser)

    run = sub.add_parser(
        "run",
        help="run one scenario on a chosen wire backend (sim or real "
             "localhost TCP)",
    )
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    _add_run_arguments(run, default_scale=0.25)
    run.add_argument("--protocol", default="lotec",
                     choices=("cotec", "otec", "lotec", "rc"))
    run.add_argument("--transport", choices=("sim", "tcp"), default="sim",
                     help="wire backend: virtual-clock simulation "
                          "(default) or real localhost TCP sockets")
    run.add_argument("--processes", action="store_true",
                     help="with --transport tcp, give each node a real "
                          "OS relay process instead of an asyncio task")
    _add_artifact_arguments(run)

    trace = sub.add_parser(
        "trace", help="run a scenario with tracing on; write artifacts"
    )
    trace.add_argument("scenario", choices=sorted(SCENARIOS))
    _add_run_arguments(trace, default_scale=0.5)
    trace.add_argument("--protocol", default="lotec",
                       choices=("cotec", "otec", "lotec", "rc"))
    _add_artifact_arguments(trace, trace_dir_default="trace-out")

    chaos = sub.add_parser(
        "chaos",
        help="run a scenario under a fault preset; gate on serializability",
    )
    chaos.add_argument("preset", choices=sorted(FAULT_PRESETS))
    chaos.add_argument("--scenario", choices=sorted(SCENARIOS),
                       default="medium-high")
    _add_run_arguments(chaos, default_scale=0.25)
    chaos.add_argument("--protocol", default="lotec",
                       choices=("cotec", "otec", "lotec", "rc"))
    chaos.add_argument("--transport", choices=("sim", "tcp"),
                       default="sim",
                       help="wire backend: virtual-clock simulation "
                            "(default) or real localhost TCP sockets")
    chaos.add_argument("--processes", action="store_true",
                       help="with --transport tcp, give each node a real "
                            "OS relay process instead of an asyncio task")
    # chaos always gates on the oracle and the invariant checkers
    # (that is its point), so the shared group contributes --out and
    # --trace-dir only.
    _add_artifact_arguments(chaos, check=False)

    fuzz = sub.add_parser(
        "fuzz",
        help="schedule-exploration fuzzing: seeds x protocols x "
             "presets, gated on every oracle and checker",
    )
    fuzz.add_argument("--seeds", type=int, default=20, metavar="N",
                      help="workload seeds per combination (default: 20)")
    fuzz.add_argument("--seed-base", type=int, default=0, metavar="S",
                      help="first seed (default: 0)")
    fuzz.add_argument(
        "--protocols", default="all", metavar="CSV",
        help="comma-separated protocols, or 'all' "
             f"(default: {','.join(ALL_PROTOCOLS)})",
    )
    fuzz.add_argument(
        "--presets", default="none", metavar="CSV",
        help="comma-separated fault presets, 'none' for fault-free, or "
             "'all' for none plus every preset (default: none)",
    )
    fuzz.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES), metavar="CSV",
        help="comma-separated tie-break policies the tasks cycle "
             f"through (default: {','.join(DEFAULT_POLICIES)})",
    )
    fuzz.add_argument("--scenario", choices=sorted(SCENARIOS),
                      default="medium-high")
    fuzz.add_argument("--scale", type=float, default=0.25,
                      help="workload size factor (1.0 = full)")
    fuzz.add_argument("--nodes", type=int, default=4)
    # Every fuzz task already runs all oracles, so no --check; its
    # --trace-dir collects *failing* traces.
    _add_artifact_arguments(fuzz, check=False)
    fuzz.add_argument("--stop-on-failure", action="store_true",
                      help="stop the campaign at the first failing task")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="report failing tasks as-is, without shrinking")
    fuzz.add_argument(
        "--mutate", default="", metavar="CSV",
        help="(testing the checkers) comma-separated LockManager "
             "mutations to inject, e.g. skip-precommit-retention",
    )
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress the per-task progress lines")
    fuzz.add_argument("--migration", action="store_true",
                      help="enable adaptive GDO home migration in "
                           "every task")
    fuzz.add_argument("--semantic", action="store_true",
                      help="enable commutativity-based semantic lock "
                           "modes in every task")
    fuzz.add_argument("--recovery", action="store_true",
                      help="add the crash-recovery presets "
                           "(crash-failover, partition, crash-partition, "
                           "slow-node) to the preset axis")

    load = sub.add_parser(
        "load",
        help="run an open-loop load scenario; print per-shard SLO tables",
    )
    load.add_argument("scenario", choices=sorted(LOAD_SCENARIOS))
    load.add_argument("--seed", type=int, default=7)
    load.add_argument("--scale", type=float, default=1.0,
                      help="root-transaction count factor (1.0 = full)")
    load.add_argument("--no-migration", action="store_true",
                      help="static round-robin homes (no adaptive "
                           "migration)")
    load.add_argument(
        "--format", choices=OUTPUT_FORMATS, default=None,
        help="stdout rendering: table (default), chart, or json",
    )
    _add_artifact_arguments(load)

    sub.add_parser("list", help="list experiment ids and scenarios")
    sub.add_parser("version", help="print the package version")
    return parser


def _render(result: ExperimentResult, output_format: str) -> str:
    if output_format == "chart":
        return result.render_chart()
    if output_format == "json":
        return json.dumps(result.to_json(), indent=2)
    return result.render()


def _write_result(result: ExperimentResult, path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_json(), handle, indent=2)
        handle.write("\n")


def _make_runner(args) -> ExperimentRunner:
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    return ExperimentRunner(jobs=args.jobs, cache=cache)


def _write_json(payload, path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _write_trace_artifacts(cluster: Cluster, directory: str,
                           base_name: str) -> Optional[int]:
    """Write the uniform trace artifact pair (JSONL with a clock-domain
    header, plus a Chrome trace); returns an exit code on error."""
    try:
        os.makedirs(directory, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        print(f"error: --trace-dir {directory!r} exists and is not a "
              f"directory", file=sys.stderr)
        return 2
    base = os.path.join(directory, base_name)
    jsonl_path = f"{base}.jsonl"
    chrome_path = f"{base}.chrome.json"
    write_jsonl(cluster.trace_events, jsonl_path,
                clock=cluster.tracer.clock_kind)
    write_chrome_trace(cluster.trace_events, chrome_path)
    print(f"\nwrote {jsonl_path}")
    print(f"wrote {chrome_path} (load in Perfetto / chrome://tracing)")
    return None


def _check_gate(cluster: Cluster) -> int:
    """Run the serializability oracle and report; 0 = clean."""
    report = check_serializability(cluster)
    if report.equivalent:
        print(f"\nserializability: OK ({report.committed_roots} "
              f"committed roots replay clean)")
        return 0
    print("\nserializability: FAILED", file=sys.stderr)
    for line in report.state_mismatches + report.result_mismatches:
        print(f"  {line}", file=sys.stderr)
    return 1


def _cmd_experiment(args) -> int:
    output_format = args.format or "table"
    runner = _make_runner(args)
    result = runner.run(args.id, seed=args.seed, scale=args.scale,
                        num_nodes=args.nodes)
    print(_render(result, output_format))
    if args.out:
        _write_result(result, args.out)
        print(f"\nwrote {args.out}")
    return 0


def _cmd_bench(args) -> int:
    ids = args.ids or sorted(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment ids {unknown}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    try:
        os.makedirs(args.out_dir, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        print(f"error: --out-dir {args.out_dir!r} exists and is not a "
              f"directory", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    results = runner.run_many(ids, seed=args.seed, scale=args.scale,
                              num_nodes=args.nodes)
    entries = []
    cache = runner.cache
    for eid, result in results.items():
        path = os.path.join(args.out_dir, f"BENCH_{eid}.json")
        _write_result(result, path)
        entries.append({
            "experiment": eid,
            "runs": runner.last_plan_sizes.get(eid, 0),
            "cache_hits": runner.last_plan_hits.get(eid, 0),
            "path": path,
        })
    print(format_bench_summary(entries))
    stats = runner.last_stats
    cache_note = (
        "cache disabled" if cache is None
        else f"{stats.cache_hits} from cache ({cache.root})"
    )
    print(f"\n{stats.runs} cluster runs: {stats.executed} executed "
          f"(jobs={args.jobs}), {cache_note}")
    return 0


def _cmd_compare(args) -> int:
    output_format = args.format or "table"
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    protocols = ("cotec", "otec", "lotec", "rc")
    metrics = ("committed", "failed", "data_bytes", "messages",
               "mean_latency_us", "deadlocks")
    series: Dict[str, Dict[str, object]] = {
        metric: {} for metric in metrics
    }
    for protocol in protocols:
        cluster = Cluster(ClusterConfig(
            num_nodes=args.nodes, protocol=protocol, seed=args.seed,
            audit_accesses=False,
        ))
        run = run_workload(cluster, workload)
        summary = run.summary()
        stats = cluster.network_stats
        series["committed"][protocol] = summary["committed"]
        series["failed"][protocol] = summary["failed"]
        series["data_bytes"][protocol] = stats.consistency_bytes()
        series["messages"][protocol] = stats.total_messages
        series["mean_latency_us"][protocol] = round(
            cluster.txn_stats.mean_latency * 1e6
        )
        series["deadlocks"][protocol] = summary["deadlocks"]
    result = ExperimentResult(
        experiment=f"protocol comparison — {args.scenario}",
        x_label="protocol",
        series=series,
        meta={"scenario": args.scenario, "seed": args.seed,
              "scale": args.scale, "nodes": args.nodes},
    )
    if output_format == "table":
        # The classic side-by-side layout: one row per protocol.
        print(f"scenario {args.scenario} (seed {args.seed}, "
              f"scale {args.scale}, {args.nodes} nodes)\n")
        print(format_table(
            ["protocol", "committed", "failed", "data bytes", "messages",
             "mean latency (us)", "deadlocks"],
            [
                [protocol] + [series[metric][protocol] for metric in metrics]
                for protocol in protocols
            ],
        ))
    else:
        print(_render(result, output_format))
    if args.out:
        _write_result(result, args.out)
        print(f"\nwrote {args.out}")
    return 0


def _cmd_run(args) -> int:
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    with Cluster(ClusterConfig(
        num_nodes=args.nodes, protocol=args.protocol, seed=args.seed,
        audit_accesses=False, trace=bool(args.trace_dir),
        transport=args.transport, transport_processes=args.processes,
    )) as cluster:
        run = run_workload(cluster, workload)
        backend = args.transport + (
            " (one OS process per node)" if args.processes else ""
        )
        print(f"scenario {args.scenario} under {args.protocol} over "
              f"{backend} (seed {args.seed}, scale {args.scale}, "
              f"{args.nodes} nodes): {run.committed} committed, "
              f"{run.failed} failed")
        stats = cluster.network_stats
        print(f"network: {stats.total_messages} messages, "
              f"{stats.total_bytes} bytes"
              + (f", {len(cluster.network.delivered_log)} frames crossed "
                 f"real sockets" if args.transport == "tcp" else ""))
        if args.out:
            _write_json(run.summary(), args.out)
            print(f"\nwrote {args.out}")
        if args.trace_dir:
            error = _write_trace_artifacts(
                cluster, args.trace_dir,
                f"{args.scenario}-{args.protocol}-{args.transport}",
            )
            if error is not None:
                return error
        if args.check:
            return _check_gate(cluster)
        return 0


def _cmd_trace(args) -> int:
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    cluster = Cluster(ClusterConfig(
        num_nodes=args.nodes, protocol=args.protocol, seed=args.seed,
        audit_accesses=False, trace=True,
    ))
    run = run_workload(cluster, workload)
    print(f"scenario {args.scenario} under {args.protocol} "
          f"(seed {args.seed}, scale {args.scale}, {args.nodes} nodes): "
          f"{run.committed} committed, {run.failed} failed\n")
    print(render_summary(cluster.tracer))
    if args.out:
        _write_json(run.summary(), args.out)
        print(f"\nwrote {args.out}")
    error = _write_trace_artifacts(
        cluster, args.trace_dir, f"{args.scenario}-{args.protocol}"
    )
    if error is not None:
        return error
    if args.check:
        return _check_gate(cluster)
    return 0


def _cmd_chaos(args) -> int:
    plan = FAULT_PRESETS[args.preset]
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    with Cluster(ClusterConfig(
        num_nodes=args.nodes, protocol=args.protocol, seed=args.seed,
        audit_accesses=False, trace=True, faults=plan,
        transport=args.transport, transport_processes=args.processes,
    )) as cluster:
        run = run_workload(cluster, workload)
        report = check_serializability(cluster)
        violations = run_invariants(cluster.trace_events)
        stats = cluster.fault_stats
        migration_stats = cluster.migration_stats
        print(f"preset {args.preset} on scenario {args.scenario} under "
              f"{args.protocol} over {args.transport} (seed {args.seed}, "
              f"scale {args.scale}, {args.nodes} nodes): "
              f"{run.committed} committed, {run.failed} failed\n")
        print(format_table(
            ["fault counter", "value"],
            [
                ["messages dropped", stats.messages_dropped],
                ["dropped at a partition", stats.partition_dropped],
                ["retransmissions", stats.retransmissions],
                ["messages duplicated", stats.messages_duplicated],
                ["delay injected (us)", round(stats.delay_injected_s * 1e6)],
                ["slow-node delay (us)", round(stats.slow_delay_s * 1e6)],
                ["lock timeouts", stats.lock_timeouts],
                ["crashes / recoveries",
                 f"{stats.crashes} / {stats.recoveries}"],
                ["crash-aborted families", stats.crash_aborted_families],
                ["GDO home failovers", stats.failovers],
                ["failover reroutes", stats.failover_reroutes],
                ["rejoin replayed / reclaimed / discarded",
                 f"{stats.rejoin_replayed_records} / "
                 f"{stats.rejoin_reclaimed_homes} / "
                 f"{stats.rejoin_discarded_holders}"],
                ["forwarded requests",
                 migration_stats.forwarded_requests
                 if migration_stats is not None else 0],
                ["deadlock retries", cluster.txn_stats.retries],
            ],
        ))
        if args.out:
            _write_json(run.summary(), args.out)
            print(f"\nwrote {args.out}")
        if args.trace_dir:
            error = _write_trace_artifacts(
                cluster, args.trace_dir,
                f"{args.scenario}-{args.protocol}-{args.preset}",
            )
            if error is not None:
                return error
        failed = False
        if report.equivalent:
            print(f"\nserializability: OK "
                  f"({report.committed_roots} committed roots replay clean)")
        else:
            failed = True
            print("\nserializability: FAILED", file=sys.stderr)
            for line in report.state_mismatches + report.result_mismatches:
                print(f"  {line}", file=sys.stderr)
        if violations:
            failed = True
            print(f"invariants: {len(violations)} violation(s)",
                  file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
        else:
            print("invariants: OK (single-writer, retained-descendants, "
                  "page-version, commit-order, liveness)")
        return 1 if failed else 0


def _split_csv(spec: str) -> list:
    return [item.strip() for item in spec.split(",") if item.strip()]


def _cmd_fuzz(args) -> int:
    protocols = (list(ALL_PROTOCOLS) if args.protocols == "all"
                 else _split_csv(args.protocols))
    for protocol in protocols:
        if protocol not in ALL_PROTOCOLS:
            print(f"error: unknown protocol {protocol!r}; known: "
                  f"{', '.join(ALL_PROTOCOLS)}", file=sys.stderr)
            return 2
    if args.presets == "all":
        presets = [None] + sorted(FAULT_PRESETS)
    else:
        presets = [None if name == "none" else name
                   for name in _split_csv(args.presets)]
        for preset in presets:
            if preset is not None and preset not in FAULT_PRESETS:
                print(f"error: unknown fault preset {preset!r}; known: "
                      f"{', '.join(sorted(FAULT_PRESETS))}",
                      file=sys.stderr)
                return 2
    if args.recovery:
        recovery_presets = ["crash-failover", "partition",
                            "crash-partition", "slow-node"]
        presets.extend(name for name in recovery_presets
                       if name not in presets)
    policies = _split_csv(args.policies)
    if not (protocols and presets and policies):
        print("error: --protocols, --presets, and --policies must each "
              "name at least one entry", file=sys.stderr)
        return 2

    def progress(report) -> None:
        verdict = "ok" if report.ok else "FAIL"
        print(f"  [{verdict}] {report.task.describe()}: "
              f"{report.committed} committed, {report.failed} failed")

    total = args.seeds * len(protocols) * len(presets)
    print(f"fuzz: {args.seeds} seeds x {len(protocols)} protocols x "
          f"{len(presets)} presets = {total} tasks "
          f"(scenario {args.scenario}, scale {args.scale}, "
          f"{args.nodes} nodes)")
    result = run_campaign(
        seeds=args.seeds, seed_base=args.seed_base,
        protocols=protocols, presets=presets, policies=policies,
        scenario=args.scenario, scale=args.scale, nodes=args.nodes,
        migration=args.migration, semantic=args.semantic,
        mutate=tuple(_split_csv(args.mutate)), out_dir=args.trace_dir,
        minimize_failures=not args.no_minimize,
        stop_on_failure=args.stop_on_failure,
        progress=None if args.quiet else progress,
    )
    print(f"\n{result.tasks_run} tasks, {result.committed} transactions "
          f"committed, {result.failed_txns} aborted")
    if args.out:
        _write_json({
            "tasks_run": result.tasks_run,
            "committed": result.committed,
            "failed_txns": result.failed_txns,
            "ok": result.ok,
            "failures": [failure.report.task.describe()
                         for failure in result.failures],
        }, args.out)
        print(f"wrote {args.out}")
    if result.ok:
        print("fuzz: all tasks clean (oracles, reference model, "
              "invariants)")
        return 0
    print(f"\nfuzz: {len(result.failures)} failing task(s)",
          file=sys.stderr)
    for failure in result.failures:
        print(f"\n  task: {failure.report.task.describe()}",
              file=sys.stderr)
        for line in failure.report.failure_summary():
            print(f"    {line}", file=sys.stderr)
        print(f"  repro: {failure.command}", file=sys.stderr)
        for path in failure.artifacts:
            print(f"  wrote {path}", file=sys.stderr)
    return 1


def _cmd_load(args) -> int:
    output_format = args.format or "table"
    load = build_load(args.scenario, seed=args.seed, scale=args.scale)
    scenario = load.scenario
    migration = None if args.no_migration else MigrationConfig()
    cluster = Cluster(ClusterConfig(
        num_nodes=scenario.clients, protocol="lotec", seed=args.seed,
        audit_accesses=False, trace=True, migration=migration,
    ))
    run = run_load(cluster, load)
    stats = cluster.network_stats
    policy = "static" if migration is None else "adaptive"
    print(f"load {args.scenario} (seed {args.seed}, scale {args.scale}, "
          f"{scenario.clients} clients, {policy} homes): "
          f"{run.committed} committed, {run.failed} failed, "
          f"{stats.directory_messages()} remote directory messages")
    if cluster.migration is not None:
        snapshot = cluster.migration.stats.snapshot()
        print(f"migrations: {snapshot['migrations']}, forwarded "
              f"requests: {snapshot['forwarded_requests']} "
              f"(considered {snapshot['considered']})")
    result = ExperimentResult(
        experiment=f"per-shard SLO — {args.scenario} ({policy})",
        x_label="shard",
        series=shard_slo_series(cluster.metrics.snapshot()),
        meta={
            "scenario": args.scenario, "seed": args.seed,
            "scale": args.scale, "clients": scenario.clients,
            "policy": policy,
            "committed": run.committed, "failed": run.failed,
            "remote_directory_messages": stats.directory_messages(),
            "migration": (
                cluster.migration.stats.snapshot()
                if cluster.migration is not None else None
            ),
        },
    )
    print()
    print(_render(result, output_format))
    if args.out:
        _write_result(result, args.out)
        print(f"\nwrote {args.out}")
    if args.trace_dir:
        error = _write_trace_artifacts(
            cluster, args.trace_dir, f"{args.scenario}-{policy}"
        )
        if error is not None:
            return error
    if args.check:
        return _check_gate(cluster)
    return 0


def _cmd_version(_args) -> int:
    print(_package_version())
    return 0


def _cmd_list(_args) -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nscenarios (for `compare`):")
    for key in sorted(SCENARIOS):
        print(f"  {key}")
    print("\nload scenarios (for `load`):")
    for key in sorted(LOAD_SCENARIOS):
        print(f"  {key}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "compare": _cmd_compare,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "fuzz": _cmd_fuzz,
        "load": _cmd_load,
        "list": _cmd_list,
        "version": _cmd_version,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        # Expected operational failures (bad configuration, protocol
        # invariant violations) are user-facing diagnostics, not bugs:
        # one line on stderr, nonzero exit, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
