"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``fig2`` …
  ``fig8``, ``tab-speedup``, ``msg-count``, or an ablation id from
  DESIGN.md §3) and print the series table; ``--json`` writes the raw
  result for downstream plotting.
* ``compare`` — run one workload scenario under all four protocols and
  print the side-by-side summary.
* ``trace`` — run one scenario with the :mod:`repro.obs` tracer on and
  write the trace artifacts (JSONL event log + Chrome ``trace_event``
  JSON loadable in Perfetto / ``chrome://tracing``) plus a metrics
  summary.
* ``list`` — show available experiment ids and scenarios.
* ``version`` (or ``--version``) — print the package version.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.bench import (
    ExperimentResult,
    run_aggregation_ablation,
    format_table,
    run_bytes_figure,
    run_claims_messages,
    run_claims_reduction,
    run_gdo_cache_ablation,
    run_multicast_ablation,
    run_object_grain_ablation,
    run_per_class_ablation,
    run_prediction_ablation,
    run_prefetch_ablation,
    run_rc_ablation,
    run_recovery_ablation,
    run_time_figure,
)
from repro.obs import render_summary, write_chrome_trace, write_jsonl
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2": lambda **kw: run_bytes_figure("medium-high", **kw),
    "fig3": lambda **kw: run_bytes_figure("large-high", **kw),
    "fig4": lambda **kw: run_bytes_figure("medium-moderate", **kw),
    "fig5": lambda **kw: run_bytes_figure("large-moderate", **kw),
    "fig6": lambda **kw: run_time_figure("10Mbps", **kw),
    "fig7": lambda **kw: run_time_figure("100Mbps", **kw),
    "fig8": lambda **kw: run_time_figure("1Gbps", **kw),
    "tab-speedup": run_claims_reduction,
    "msg-count": run_claims_messages,
    "abl-rc": run_rc_ablation,
    "abl-dsd": run_object_grain_ablation,
    "abl-predict": run_prediction_ablation,
    "abl-gdocache": run_gdo_cache_ablation,
    "abl-aggregate": run_aggregation_ablation,
    "abl-recovery": run_recovery_ablation,
    "abl-multicast": run_multicast_ablation,
    "abl-prefetch": run_prefetch_ablation,
    "abl-perclass": run_per_class_ablation,
}


def _package_version() -> str:
    from repro import __version__

    return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOTEC reproduction experiment harness",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=11)
    exp.add_argument("--scale", type=float, default=1.0,
                     help="workload size factor (1.0 = full)")
    exp.add_argument("--nodes", type=int, default=4)
    exp.add_argument("--json", metavar="PATH",
                     help="also write the result as JSON")
    exp.add_argument("--chart", action="store_true",
                     help="render ASCII bars instead of a table")

    cmp_parser = sub.add_parser(
        "compare", help="run a scenario under all protocols"
    )
    cmp_parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                            default="medium-high")
    cmp_parser.add_argument("--seed", type=int, default=11)
    cmp_parser.add_argument("--scale", type=float, default=0.5)
    cmp_parser.add_argument("--nodes", type=int, default=4)

    trace = sub.add_parser(
        "trace", help="run a scenario with tracing on; write artifacts"
    )
    trace.add_argument("scenario", choices=sorted(SCENARIOS))
    trace.add_argument("--seed", type=int, default=11)
    trace.add_argument("--scale", type=float, default=0.5)
    trace.add_argument("--nodes", type=int, default=4)
    trace.add_argument("--protocol", default="lotec",
                       choices=("cotec", "otec", "lotec", "rc"))
    trace.add_argument("--out", default="trace-out", metavar="DIR",
                       help="directory for trace artifacts")

    sub.add_parser("list", help="list experiment ids and scenarios")
    sub.add_parser("version", help="print the package version")
    return parser


def _result_to_json(result: ExperimentResult) -> Dict:
    return {
        "experiment": result.experiment,
        "x_label": result.x_label,
        "series": result.series,
        "meta": {
            key: value
            for key, value in result.meta.items()
            if _json_safe(value)
        },
    }


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False


def _cmd_experiment(args) -> int:
    driver = EXPERIMENTS[args.id]
    result = driver(seed=args.seed, scale=args.scale, num_nodes=args.nodes)
    print(result.render_chart() if args.chart else result.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(_result_to_json(result), handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_compare(args) -> int:
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    rows = []
    for protocol in ("cotec", "otec", "lotec", "rc"):
        cluster = Cluster(ClusterConfig(
            num_nodes=args.nodes, protocol=protocol, seed=args.seed,
            audit_accesses=False,
        ))
        run = run_workload(cluster, workload)
        stats = cluster.network_stats
        rows.append([
            protocol,
            run.committed,
            run.failed,
            stats.consistency_bytes(),
            stats.total_messages,
            round(cluster.txn_stats.mean_latency * 1e6),
            cluster.lock_stats.deadlocks,
        ])
    print(f"scenario {args.scenario} (seed {args.seed}, "
          f"scale {args.scale}, {args.nodes} nodes)\n")
    print(format_table(
        ["protocol", "committed", "failed", "data bytes", "messages",
         "mean latency (us)", "deadlocks"],
        rows,
    ))
    return 0


def _cmd_trace(args) -> int:
    try:
        os.makedirs(args.out, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        print(f"error: --out {args.out!r} exists and is not a directory",
              file=sys.stderr)
        return 2
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    cluster = Cluster(ClusterConfig(
        num_nodes=args.nodes, protocol=args.protocol, seed=args.seed,
        audit_accesses=False, trace=True,
    ))
    run = run_workload(cluster, workload)
    base = os.path.join(args.out, f"{args.scenario}-{args.protocol}")
    jsonl_path = f"{base}.jsonl"
    chrome_path = f"{base}.chrome.json"
    write_jsonl(cluster.trace_events, jsonl_path)
    write_chrome_trace(cluster.trace_events, chrome_path)
    print(f"scenario {args.scenario} under {args.protocol} "
          f"(seed {args.seed}, scale {args.scale}, {args.nodes} nodes): "
          f"{run.committed} committed, {run.failed} failed\n")
    print(render_summary(cluster.tracer))
    print(f"\nwrote {jsonl_path}")
    print(f"wrote {chrome_path} (load in Perfetto / chrome://tracing)")
    return 0


def _cmd_version(_args) -> int:
    print(_package_version())
    return 0


def _cmd_list(_args) -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nscenarios (for `compare`):")
    for key in sorted(SCENARIOS):
        print(f"  {key}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "list": _cmd_list,
        "version": _cmd_version,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
