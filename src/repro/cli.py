"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``fig2`` …
  ``fig8``, ``tab-speedup``, ``msg-count``, or an ablation id from
  DESIGN.md §3) and print the series table; ``--json`` writes the raw
  result for downstream plotting.
* ``compare`` — run one workload scenario under all four protocols and
  print the side-by-side summary.
* ``list`` — show available experiment ids and scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.bench import (
    ExperimentResult,
    run_aggregation_ablation,
    format_table,
    run_bytes_figure,
    run_claims_messages,
    run_claims_reduction,
    run_gdo_cache_ablation,
    run_multicast_ablation,
    run_object_grain_ablation,
    run_per_class_ablation,
    run_prediction_ablation,
    run_prefetch_ablation,
    run_rc_ablation,
    run_recovery_ablation,
    run_time_figure,
)
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.workload.generator import generate_workload
from repro.workload.params import SCENARIOS
from repro.workload.runner import run_workload

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2": lambda **kw: run_bytes_figure("medium-high", **kw),
    "fig3": lambda **kw: run_bytes_figure("large-high", **kw),
    "fig4": lambda **kw: run_bytes_figure("medium-moderate", **kw),
    "fig5": lambda **kw: run_bytes_figure("large-moderate", **kw),
    "fig6": lambda **kw: run_time_figure("10Mbps", **kw),
    "fig7": lambda **kw: run_time_figure("100Mbps", **kw),
    "fig8": lambda **kw: run_time_figure("1Gbps", **kw),
    "tab-speedup": run_claims_reduction,
    "msg-count": run_claims_messages,
    "abl-rc": run_rc_ablation,
    "abl-dsd": run_object_grain_ablation,
    "abl-predict": run_prediction_ablation,
    "abl-gdocache": run_gdo_cache_ablation,
    "abl-aggregate": run_aggregation_ablation,
    "abl-recovery": run_recovery_ablation,
    "abl-multicast": run_multicast_ablation,
    "abl-prefetch": run_prefetch_ablation,
    "abl-perclass": run_per_class_ablation,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOTEC reproduction experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=11)
    exp.add_argument("--scale", type=float, default=1.0,
                     help="workload size factor (1.0 = full)")
    exp.add_argument("--nodes", type=int, default=4)
    exp.add_argument("--json", metavar="PATH",
                     help="also write the result as JSON")
    exp.add_argument("--chart", action="store_true",
                     help="render ASCII bars instead of a table")

    cmp_parser = sub.add_parser(
        "compare", help="run a scenario under all protocols"
    )
    cmp_parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                            default="medium-high")
    cmp_parser.add_argument("--seed", type=int, default=11)
    cmp_parser.add_argument("--scale", type=float, default=0.5)
    cmp_parser.add_argument("--nodes", type=int, default=4)

    sub.add_parser("list", help="list experiment ids and scenarios")
    return parser


def _result_to_json(result: ExperimentResult) -> Dict:
    return {
        "experiment": result.experiment,
        "x_label": result.x_label,
        "series": result.series,
        "meta": {
            key: value
            for key, value in result.meta.items()
            if _json_safe(value)
        },
    }


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False


def _cmd_experiment(args) -> int:
    driver = EXPERIMENTS[args.id]
    result = driver(seed=args.seed, scale=args.scale, num_nodes=args.nodes)
    print(result.render_chart() if args.chart else result.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(_result_to_json(result), handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_compare(args) -> int:
    params = SCENARIOS[args.scenario].scaled(args.scale)
    workload = generate_workload(params, seed=args.seed)
    rows = []
    for protocol in ("cotec", "otec", "lotec", "rc"):
        cluster = Cluster(ClusterConfig(
            num_nodes=args.nodes, protocol=protocol, seed=args.seed,
            audit_accesses=False,
        ))
        run = run_workload(cluster, workload)
        stats = cluster.network_stats
        rows.append([
            protocol,
            run.committed,
            run.failed,
            stats.consistency_bytes(),
            stats.total_messages,
            round(cluster.txn_stats.mean_latency * 1e6),
            cluster.lock_stats.deadlocks,
        ])
    print(f"scenario {args.scenario} (seed {args.seed}, "
          f"scale {args.scale}, {args.nodes} nodes)\n")
    print(format_table(
        ["protocol", "committed", "failed", "data bytes", "messages",
         "mean latency (us)", "deadlocks"],
        rows,
    ))
    return 0


def _cmd_list(_args) -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nscenarios (for `compare`):")
    for key in sorted(SCENARIOS):
        print(f"  {key}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
