"""Workload and run-trace persistence.

Workloads are deterministic functions of ``(params, seed, page_size)``,
so a saved workload is those three things plus a fingerprint of the
generated plans — enough to regenerate bit-identical load on another
machine and *verify* the regeneration.  Run reports capture what a
cluster actually did (commit log, stats) as plain JSON for offline
comparison between protocol runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional

from repro.runtime.executor import _HandleRef
from repro.util.errors import ConfigurationError
from repro.workload.generator import PlanNode, Workload, generate_workload
from repro.workload.params import WorkloadParams

_FORMAT = "repro-workload-v1"
_REPORT_FORMAT = "repro-run-report-v1"


def _plan_to_dict(plan: PlanNode) -> Dict:
    return {
        "obj": plan.obj_index,
        "method": plan.method_name,
        "salt": plan.salt,
        "abort": plan.inject_abort,
        "children": [_plan_to_dict(child) for child in plan.children],
    }


def _plan_from_dict(data: Dict) -> PlanNode:
    return PlanNode(
        obj_index=data["obj"],
        method_name=data["method"],
        salt=data["salt"],
        inject_abort=data.get("abort", False),
        children=tuple(_plan_from_dict(child) for child in data["children"]),
    )


def workload_fingerprint(workload: Workload) -> str:
    """Stable digest of the generated plans and object population."""
    payload = json.dumps(
        {
            "object_classes": workload.object_classes,
            "plans": [_plan_to_dict(plan) for plan in workload.plans],
            "arrivals": [round(t, 12) for t in workload.arrival_offsets],
        },
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def save_workload(workload: Workload, path: str, seed: int,
                  page_size: int = 4096) -> None:
    """Persist the workload's generation recipe plus its fingerprint."""
    document = {
        "format": _FORMAT,
        "seed": seed,
        "page_size": page_size,
        "params": dataclasses.asdict(workload.params),
        "fingerprint": workload_fingerprint(workload),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)


def load_workload(path: str) -> Workload:
    """Regenerate a saved workload and verify its fingerprint."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise ConfigurationError(
            f"{path} is not a {_FORMAT} document "
            f"(format={document.get('format')!r})"
        )
    params_dict = dict(document["params"])
    if isinstance(params_dict.get("access_fraction"), list):
        params_dict["access_fraction"] = tuple(params_dict["access_fraction"])
    params = WorkloadParams(**params_dict)
    workload = generate_workload(
        params, seed=document["seed"], page_size=document["page_size"]
    )
    fingerprint = workload_fingerprint(workload)
    if fingerprint != document["fingerprint"]:
        raise ConfigurationError(
            f"regenerated workload does not match {path}: fingerprint "
            f"{fingerprint} != recorded {document['fingerprint']} "
            f"(library version drift?)"
        )
    return workload


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------

def _freeze_to_json(value):
    if isinstance(value, _HandleRef):
        return {"__handle__": value.object_value}
    if isinstance(value, PlanNode):
        return {"__plan__": _plan_to_dict(value)}
    if isinstance(value, tuple):
        return {"__tuple__": [_freeze_to_json(item) for item in value]}
    if isinstance(value, list):
        return [_freeze_to_json(item) for item in value]
    if isinstance(value, dict):
        return {key: _freeze_to_json(item) for key, item in value.items()}
    return value


def _freeze_from_json(value):
    if isinstance(value, dict):
        if "__handle__" in value and len(value) == 1:
            return _HandleRef(value["__handle__"])
        if "__plan__" in value and len(value) == 1:
            return _plan_from_dict(value["__plan__"])
        if "__tuple__" in value and len(value) == 1:
            return tuple(_freeze_from_json(item) for item in value["__tuple__"])
        return {key: _freeze_from_json(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_freeze_from_json(item) for item in value]
    return value


def save_run_report(cluster, path: str,
                    workload: Optional[Workload] = None) -> None:
    """Persist a cluster run: stats summary plus the full commit log."""
    document = {
        "format": _REPORT_FORMAT,
        "summary": cluster.stats_summary(),
        "sim_time": cluster.env.now,
        "workload_fingerprint": (
            workload_fingerprint(workload) if workload is not None else None
        ),
        "commits": [
            {
                "time": record.time,
                "node": record.node.value,
                "object": record.object_id.value,
                "method": record.method_name,
                "label": record.label,
                "args": _freeze_to_json(record.frozen_args),
                "result": _freeze_to_json(record.result),
            }
            for record in cluster.commit_log
        ],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)


def load_run_report(path: str) -> Dict:
    """Load a run report; commit args/results come back in frozen form."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != _REPORT_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {_REPORT_FORMAT} document"
        )
    for commit in document["commits"]:
        commit["args"] = _freeze_from_json(commit["args"])
        commit["result"] = _freeze_from_json(commit["result"])
    return document


def diff_run_reports(left: Dict, right: Dict) -> Dict[str, object]:
    """Compare two run reports of the *same workload* under different
    configurations: commit sets must agree; costs may differ."""
    left_commits = {
        (c["label"], c["method"], c["object"]) for c in left["commits"]
    }
    right_commits = {
        (c["label"], c["method"], c["object"]) for c in right["commits"]
    }
    return {
        "same_commits": left_commits == right_commits,
        "only_left": sorted(left_commits - right_commits),
        "only_right": sorted(right_commits - left_commits),
        "bytes": {
            "left": left["summary"]["network"]["total_bytes"],
            "right": right["summary"]["network"]["total_bytes"],
        },
        "messages": {
            "left": left["summary"]["network"]["total_messages"],
            "right": right["summary"]["network"]["total_messages"],
        },
    }
