"""Plan-tree generation: the randomized nested transactions of §5.

A *plan* is the static shape of one root transaction: which object it
runs on, which method, and the tree of sub-invocations underneath.
Plans reference objects by index so that the identical workload can be
instantiated on any number of clusters (one per protocol under
comparison, plus the serial oracle's replay).

Recursion is avoided by construction — a plan never invokes an object
already on its ancestor path — matching the paper's §3.4 choice to
preclude mutually recursive invocations ("our experience has been that
such mutually recursive invocations are infrequent in practice").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.util.rng import SeededRNG
from repro.workload.params import WorkloadParams
from repro.workload.synth import SyntheticClassFactory, SyntheticClassInfo


@dataclass(frozen=True)
class PlanNode:
    """One invocation in a plan tree (object index + method + children).

    ``inject_abort`` makes the synthetic body call ``ctx.abort()`` right
    after its writes — deterministic fault injection for rollback
    testing under load.
    """

    obj_index: int
    method_name: str
    salt: int
    children: Tuple["PlanNode", ...] = ()
    inject_abort: bool = False

    def injects_abort(self) -> bool:
        """Does any invocation in this subtree inject an abort?"""
        return self.inject_abort or any(
            child.injects_abort() for child in self.children
        )

    def size(self) -> int:
        """Number of invocations in this subtree (including self)."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def objects_touched(self) -> frozenset:
        touched = {self.obj_index}
        for child in self.children:
            touched |= child.objects_touched()
        return frozenset(touched)


@dataclass
class Workload:
    """A fully generated workload: classes, object population, plans."""

    params: WorkloadParams
    classes: List[SyntheticClassInfo]
    object_classes: List[int]  # object index -> class index
    plans: List[PlanNode]
    arrival_offsets: List[float]

    @property
    def num_objects(self) -> int:
        return len(self.object_classes)

    def class_of(self, obj_index: int) -> SyntheticClassInfo:
        return self.classes[self.object_classes[obj_index]]

    def total_invocations(self) -> int:
        return sum(plan.size() for plan in self.plans)

    def with_plans(self, plans: Sequence[PlanNode],
                   arrival_offsets: Optional[Sequence[float]] = None) -> "Workload":
        """Same classes and object population, hand-written plans.

        Lets tests and experiments script *exact* interleavings (a
        specific deadlock, a targeted hot-spot) on top of the generated
        class/object world.  Plans are validated against the population:
        object indexes must exist, method names must be on the object's
        class menu, and no plan may invoke an object already on its
        ancestor path (§3.4 recursion preclusion).
        """
        plans = list(plans)
        for plan in plans:
            self._validate_plan(plan, path=frozenset())
        if arrival_offsets is None:
            offsets = [0.0] * len(plans)
        else:
            offsets = list(arrival_offsets)
            if len(offsets) != len(plans):
                raise ValueError(
                    f"{len(offsets)} arrival offsets for {len(plans)} plans"
                )
        return Workload(
            params=self.params, classes=self.classes,
            object_classes=self.object_classes, plans=plans,
            arrival_offsets=offsets,
        )

    def _validate_plan(self, plan: PlanNode, path: frozenset) -> None:
        if not 0 <= plan.obj_index < self.num_objects:
            raise ValueError(
                f"plan references object {plan.obj_index}; workload has "
                f"{self.num_objects} objects"
            )
        if plan.obj_index in path:
            raise ValueError(
                f"plan recursively invokes object {plan.obj_index} "
                f"(precluded, §3.4)"
            )
        schema = self.class_of(plan.obj_index).schema
        if plan.method_name not in schema.methods:
            raise ValueError(
                f"object {plan.obj_index} ({schema.name}) has no method "
                f"{plan.method_name!r}"
            )
        for child in plan.children:
            self._validate_plan(child, path | {plan.obj_index})


def generate_workload(params: WorkloadParams, seed: int,
                      page_size: int = 4096) -> Workload:
    """Generate classes, object population, and root plans from a seed."""
    rng = SeededRNG(seed).derive("workload")
    factory = SyntheticClassFactory(rng.derive("classes"), page_size)
    classes = [
        factory.make_class(
            name=f"Synth{index}",
            pages=rng.randint(params.pages_min, params.pages_max),
            access_fraction=params.access_fraction,
            write_fraction=params.write_fraction,
        )
        for index in range(params.num_classes)
    ]
    assign_rng = rng.derive("assign")
    object_classes = [
        assign_rng.randint(0, params.num_classes - 1)
        for _ in range(params.num_objects)
    ]
    plan_rng = rng.derive("plans")
    plans = [
        _generate_plan(plan_rng, params, classes, object_classes)
        for _ in range(params.num_roots)
    ]
    arrival_rng = rng.derive("arrivals")
    offsets: List[float] = []
    clock = 0.0
    for _ in plans:
        if params.mean_interarrival_s > 0:
            clock += arrival_rng.expovariate(1.0 / params.mean_interarrival_s)
        offsets.append(clock)
    return Workload(
        params=params, classes=classes, object_classes=object_classes,
        plans=plans, arrival_offsets=offsets,
    )


def _generate_plan(rng: SeededRNG, params: WorkloadParams,
                   classes: Sequence[SyntheticClassInfo],
                   object_classes: Sequence[int]) -> PlanNode:
    root_obj = rng.zipf_index(params.num_objects, params.skew)
    return _generate_node(rng, params, classes, object_classes,
                          obj_index=root_obj, depth=0, path={root_obj})


def pick_method(rng: SeededRNG, info: SyntheticClassInfo,
                update_fraction: float) -> str:
    """Draw one method from a class's menu, biased toward updaters.

    Public so alternative plan builders (:mod:`repro.load.engine`)
    share the exact update/read mix semantics of the generator."""
    if info.update_methods and (
        not info.read_methods or rng.maybe(update_fraction)
    ):
        return rng.choice(info.update_methods)
    return rng.choice(info.read_methods)


_pick_method = pick_method  # historic private name


def _generate_node(rng: SeededRNG, params: WorkloadParams,
                   classes: Sequence[SyntheticClassInfo],
                   object_classes: Sequence[int],
                   obj_index: int, depth: int, path: set) -> PlanNode:
    info = classes[object_classes[obj_index]]
    method_name = _pick_method(rng, info, params.update_fraction)
    children: List[PlanNode] = []
    if depth < params.max_depth:
        # Branching decays geometrically with depth so trees stay small
        # but occasionally run deep.
        expected = params.mean_branch / (depth + 1)
        count = 0
        while rng.random() < expected / (expected + 1) and count < 6:
            count += 1
        for _ in range(count):
            child_obj = _pick_child_object(rng, params, path)
            if child_obj is None:
                break
            path.add(child_obj)
            children.append(
                _generate_node(rng, params, classes, object_classes,
                               obj_index=child_obj, depth=depth + 1,
                               path=path)
            )
            path.discard(child_obj)
    return PlanNode(
        obj_index=obj_index,
        method_name=method_name,
        salt=rng.randint(0, (1 << 31) - 1),
        children=tuple(children),
        inject_abort=rng.maybe(params.abort_probability),
    )


def _pick_child_object(rng: SeededRNG, params: WorkloadParams,
                       path: set) -> Optional[int]:
    """Zipf-skewed object choice avoiding the current invocation path
    (precluding recursion, §3.4).  Bounded rejection sampling: heavy
    skew can make every draw land on an ancestor."""
    for _ in range(12):
        candidate = rng.zipf_index(params.num_objects, params.skew)
        if candidate not in path:
            return candidate
    remaining = [i for i in range(params.num_objects) if i not in path]
    if not remaining:
        return None
    return rng.choice(remaining)
