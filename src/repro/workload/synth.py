"""Synthetic shared classes for the randomized workload.

Each synthetic class has a target size in pages, a set of sized scalar
attributes packed across those pages, and a menu of methods, each with
a *fixed* attribute access pattern (the subset a compiler would derive
from its body).  Bodies read their read-set, run the plan's
sub-invocations, then write a deterministic mix of what they read —
which makes serializability violations observable as wrong final
values, not just races.

Method bodies here are built dynamically (closures over attribute
lists), so static AST analysis cannot see their access sets; the exact
sets are instead supplied as ``reads=``/``writes=`` overrides — the
same mechanism a smarter compiler would use, and precisely what the
paper assumes its compiler provides.  The hand-written example
applications exercise the real AST analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.ast_analysis import ALL_ATTRIBUTES, AccessSets
from repro.memory.layout import AttributeSpec
from repro.objects.schema import ClassSchema, MethodSpec
from repro.util.rng import SeededRNG

_MASK = (1 << 31) - 1


def mix(accumulator: int, value: int) -> int:
    """Deterministic order-sensitive combiner used by synthetic bodies."""
    return (accumulator * 1000003 + (int(value) & _MASK)) & _MASK


def _make_body(read_attrs: Tuple[str, ...], write_attrs: Tuple[str, ...]):
    """Build a generator method body with the given fixed access sets.

    The body signature is ``(self, ctx, plan, handles)``; ``plan`` is a
    :class:`repro.workload.generator.PlanNode` and ``handles`` the
    cluster's object handle table.
    """

    def body(self, ctx, plan, handles):
        acc = plan.salt & _MASK
        for name in read_attrs:
            acc = mix(acc, getattr(self, name))
        for child in plan.children:
            result = yield ctx.invoke(
                handles[child.obj_index], child.method_name, child, handles
            )
            acc = mix(acc, result)
        for index, name in enumerate(write_attrs):
            # Salt selects a per-call subset of the declared write set:
            # the conservative prediction stays a superset of what
            # actually happens, as in real control-flow-dependent code.
            if (plan.salt >> index) & 1 or index == 0:
                setattr(self, name, mix(acc, index))
        if plan.inject_abort:
            # Fault injection: abort after the writes so rollback has
            # real work to undo (closed nesting, §3.2).
            ctx.abort("injected")
        return acc

    return body


def _make_read_body(read_attrs: Tuple[str, ...]):
    """Read-only variant (no writes, so it takes a READ lock)."""

    def body(self, ctx, plan, handles):
        acc = plan.salt & _MASK
        for name in read_attrs:
            acc = mix(acc, getattr(self, name))
        for child in plan.children:
            result = yield ctx.invoke(
                handles[child.obj_index], child.method_name, child, handles
            )
            acc = mix(acc, result)
        if plan.inject_abort:
            ctx.abort("injected")
        return acc

    return body


@dataclass(frozen=True)
class SyntheticClassInfo:
    """A generated class plus generator-facing metadata."""

    schema: ClassSchema
    pages: int
    update_methods: Tuple[str, ...]
    read_methods: Tuple[str, ...]


class SyntheticClassFactory:
    """Generates random classes with subset-access methods."""

    def __init__(self, rng: SeededRNG, page_size: int):
        self._rng = rng
        self.page_size = page_size

    def make_class(self, name: str, pages: int,
                   access_fraction: Tuple[float, float],
                   write_fraction: float,
                   num_methods: int = 5) -> SyntheticClassInfo:
        """One synthetic class of roughly ``pages`` pages."""
        attributes = self._make_attributes(pages)
        attr_names = [spec.name for spec in attributes]
        methods: Dict[str, MethodSpec] = {}
        update_methods: List[str] = []
        read_methods: List[str] = []
        for index in range(num_methods):
            method_name = f"m{index}"
            fraction = self._rng.uniform(*access_fraction)
            accessed_count = max(1, round(fraction * len(attr_names)))
            accessed = tuple(self._rng.sample(attr_names, accessed_count))
            # Every method menu keeps one pure reader (index 0) so read
            # locks are exercised even at update_fraction == 1.
            is_reader = index == 0
            if is_reader:
                reads, writes = accessed, ()
                func = _make_read_body(accessed)
                read_methods.append(method_name)
            else:
                write_count = max(1, round(write_fraction * len(accessed)))
                writes = tuple(self._rng.sample(list(accessed), write_count))
                reads = accessed
                func = _make_body(accessed, writes)
                update_methods.append(method_name)
            methods[method_name] = MethodSpec(
                name=method_name,
                func=func,
                is_generator=True,
                access=AccessSets(reads=frozenset(reads),
                                  writes=frozenset(writes)),
                # Dynamic bodies defeat static analysis; record the
                # honest (top) analysis result alongside the override.
                analyzed=AccessSets(
                    reads=ALL_ATTRIBUTES, writes=ALL_ATTRIBUTES
                ).resolve(attr_names),
            )
        schema = ClassSchema(name=name, attributes=tuple(attributes),
                             methods=methods)
        return SyntheticClassInfo(
            schema=schema, pages=pages,
            update_methods=tuple(update_methods),
            read_methods=tuple(read_methods),
        )

    def _make_attributes(self, pages: int) -> List[AttributeSpec]:
        """Pack ~2 attributes per page with jittered sizes.

        Total size lands just under ``pages * page_size`` so the layout
        engine produces exactly the requested page count.
        """
        total = pages * self.page_size - self._rng.randint(1, self.page_size // 4)
        count = max(2, 2 * pages)
        cuts = sorted(
            self._rng.randint(1, max(2, total - 1)) for _ in range(count - 1)
        )
        sizes = []
        previous = 0
        for cut in cuts + [total]:
            sizes.append(max(8, cut - previous))
            previous = cut
        return [
            AttributeSpec(name=f"a{index}", size_bytes=size, default=0)
            for index, size in enumerate(sizes)
        ]
