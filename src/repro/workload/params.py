"""Workload parameter space and the paper's four scenario presets.

Figure 2/4: "medium sized objects (on the order of one to five pages)"
under high and moderate contention; Figure 3/5: "larger objects of ten
to twenty pages".  High contention concentrates a larger transaction
load on fewer objects with stronger access skew; moderate contention
spreads a similar load over five times as many objects (the paper's
Figures 4/5 label objects up to O99 versus O19 for the high-contention
runs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic nested-object transaction generator.

    Attributes:
        num_objects: shared objects in play.
        num_classes: distinct synthetic classes (objects share them).
        pages_min / pages_max: object size range in pages.
        num_roots: root transactions to generate.
        max_depth: maximum nesting depth of invocation trees.
        mean_branch: average sub-invocations at the root (decays with
            depth).
        update_fraction: probability a chosen method is an updater.
        access_fraction: (lo, hi) fraction of a class's attributes one
            method may access — the paper's "only a subset of which are
            normally updated by any method/transaction".
        write_fraction: fraction of a method's accessed attributes it
            writes.
        skew: Zipf-like exponent for object choice (0 = uniform);
            drives contention.
        mean_interarrival_s: exponential arrival pacing of roots
            (0 = all submitted at time zero).
        abort_probability: per-invocation chance of an injected
            ``ctx.abort()`` fired *after* the invocation's writes —
            fault injection that exercises closed-nesting rollback
            under concurrency.
    """

    num_objects: int = 20
    num_classes: int = 6
    pages_min: int = 1
    pages_max: int = 5
    num_roots: int = 60
    max_depth: int = 3
    mean_branch: float = 2.0
    update_fraction: float = 0.95
    access_fraction: Tuple[float, float] = (0.3, 0.65)
    write_fraction: float = 0.85
    skew: float = 0.8
    mean_interarrival_s: float = 0.0005
    abort_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_classes < 1:
            raise ConfigurationError("need at least one object and one class")
        if not 1 <= self.pages_min <= self.pages_max:
            raise ConfigurationError("need 1 <= pages_min <= pages_max")
        if self.num_roots < 0 or self.max_depth < 0:
            raise ConfigurationError("num_roots/max_depth must be non-negative")
        if self.mean_branch < 0:
            raise ConfigurationError("mean_branch must be non-negative")
        lo, hi = self.access_fraction
        if not 0 < lo <= hi <= 1:
            raise ConfigurationError("access_fraction must satisfy 0 < lo <= hi <= 1")
        if not 0 <= self.update_fraction <= 1:
            raise ConfigurationError("update_fraction must be in [0, 1]")
        if not 0 < self.write_fraction <= 1:
            raise ConfigurationError("write_fraction must be in (0, 1]")
        if self.skew < 0 or self.mean_interarrival_s < 0:
            raise ConfigurationError("skew/interarrival must be non-negative")
        if not 0 <= self.abort_probability <= 1:
            raise ConfigurationError("abort_probability must be in [0, 1]")

    def scaled(self, factor: float) -> "WorkloadParams":
        """Cheaper/costlier copy: scales the root-transaction count
        (tests use small factors, benches the full size)."""
        return replace(self, num_roots=max(1, int(self.num_roots * factor)))


#: Figure 2 — medium objects (1-5 pages), high contention, objects O0-O19.
MEDIUM_HIGH = WorkloadParams(
    num_objects=20, num_classes=6, pages_min=1, pages_max=5,
    num_roots=120, skew=0.9,
)

#: Figure 3 — large objects (10-20 pages), high contention.
LARGE_HIGH = WorkloadParams(
    num_objects=20, num_classes=6, pages_min=10, pages_max=20,
    num_roots=120, skew=0.9,
)

#: Figure 4 — medium objects, moderate contention, objects up to O99.
MEDIUM_MODERATE = WorkloadParams(
    num_objects=100, num_classes=10, pages_min=1, pages_max=5,
    num_roots=200, skew=0.35,
)

#: Figure 5 — large objects, moderate contention.
LARGE_MODERATE = WorkloadParams(
    num_objects=100, num_classes=10, pages_min=10, pages_max=20,
    num_roots=200, skew=0.35,
)

SCENARIOS: Dict[str, WorkloadParams] = {
    "medium-high": MEDIUM_HIGH,
    "large-high": LARGE_HIGH,
    "medium-moderate": MEDIUM_MODERATE,
    "large-moderate": LARGE_MODERATE,
}
