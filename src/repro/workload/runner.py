"""Running a generated workload on a cluster.

The same :class:`~repro.workload.generator.Workload` object can be run
against any number of clusters (one per protocol, plus ablation
variants): object creation order, plans, salts, and arrival times are
all pre-generated, so every cluster sees the identical load — the only
variable is the consistency protocol under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.runtime.cluster import Cluster, TxnTicket
from repro.util.errors import TransactionAborted
from repro.workload.generator import Workload


@dataclass
class WorkloadRun:
    """Everything observable about one workload execution."""

    cluster: Cluster
    handles: List
    tickets: List[TxnTicket]
    failed: int = 0

    @property
    def committed(self) -> int:
        return self.cluster.txn_stats.commits

    def summary(self) -> Dict[str, object]:
        """Everything needed to identify and compare this run from the
        summary alone — including the seed it was generated from and
        the deadlock count (consumers like ``repro compare`` should not
        have to reach into ``cluster.lock_stats``)."""
        txn_stats = self.cluster.txn_stats
        fault_stats = self.cluster.fault_stats
        migration_stats = self.cluster.migration_stats
        return {
            "protocol": self.cluster.config.protocol,
            "seed": self.cluster.config.seed,
            "committed": self.committed,
            "failed": self.failed,
            "deadlocks": self.cluster.lock_stats.deadlocks,
            "sim_time": self.cluster.env.now,
            # Robustness accounting, hoisted to the top level so bench
            # envelopes of chaos runs are self-describing.
            "retries": txn_stats.retries,
            "messages_dropped": fault_stats.messages_dropped,
            "retransmissions": fault_stats.retransmissions,
            "lock_timeout_aborts": txn_stats.aborts_lock_timeout,
            "crash_aborted_families": fault_stats.crash_aborted_families,
            "partition_dropped": fault_stats.partition_dropped,
            "failovers": fault_stats.failovers,
            "failover_reroutes": fault_stats.failover_reroutes,
            "rejoin_replayed_records": fault_stats.rejoin_replayed_records,
            "forwarded_requests": (
                migration_stats.forwarded_requests
                if migration_stats is not None else 0
            ),
            **self.cluster.stats_summary(),
        }


def run_workload(cluster: Cluster, workload: Workload) -> WorkloadRun:
    """Instantiate every object, submit every plan, run to completion.

    Root transactions that exhaust their deadlock-retry budget are
    counted as failed rather than raised: a workload run is an
    experiment, not a unit test.
    """
    handles = [
        cluster.create(workload.class_of(index).schema)
        for index in range(workload.num_objects)
    ]
    handle_table = tuple(handles)
    tickets = []
    for index, plan in enumerate(workload.plans):
        tickets.append(
            cluster.submit(
                handle_table[plan.obj_index], plan.method_name,
                plan, handle_table,
                label=f"root{index}",
                delay=workload.arrival_offsets[index],
            )
        )
    cluster.run()
    failed = 0
    for ticket in tickets:
        try:
            ticket.result()
        except TransactionAborted:
            failed += 1
    return WorkloadRun(cluster=cluster, handles=handles, tickets=tickets,
                       failed=failed)
