"""Randomly generated nested object transactions (§5's workload).

The paper evaluates LOTEC on "a number of randomly generated nested
object transactions in a simulated distributed system", varying "the
number of objects, the size of the objects (in units of pages) and the
number of transactions in order to achieve a range of conflict
scenarios", with objects whose methods normally update "only a subset"
of their pages.  This package regenerates that workload family:

* :mod:`repro.workload.params` — the parameter space, with the paper's
  four scenario presets (medium/large objects x high/moderate
  contention).
* :mod:`repro.workload.synth` — synthetic shared classes whose methods
  access fixed attribute subsets (exactly what LOTEC's compile-time
  prediction exploits).
* :mod:`repro.workload.generator` — seeds -> plan trees of nested
  invocations, skewed onto hot objects for contention.
* :mod:`repro.workload.runner` — instantiate + submit + run a workload
  on a cluster, identically reproducible across protocols.
"""

from repro.workload.params import (
    WorkloadParams,
    LARGE_HIGH,
    LARGE_MODERATE,
    MEDIUM_HIGH,
    MEDIUM_MODERATE,
    SCENARIOS,
)
from repro.workload.synth import SyntheticClassFactory, mix
from repro.workload.generator import PlanNode, Workload, generate_workload
from repro.workload.runner import run_workload
from repro.workload.traces import (
    diff_run_reports,
    load_run_report,
    load_workload,
    save_run_report,
    save_workload,
    workload_fingerprint,
)

__all__ = [
    "WorkloadParams",
    "MEDIUM_HIGH",
    "MEDIUM_MODERATE",
    "LARGE_HIGH",
    "LARGE_MODERATE",
    "SCENARIOS",
    "SyntheticClassFactory",
    "mix",
    "PlanNode",
    "Workload",
    "generate_workload",
    "run_workload",
    "save_workload",
    "load_workload",
    "workload_fingerprint",
    "save_run_report",
    "load_run_report",
    "diff_run_reports",
]
