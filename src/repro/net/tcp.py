"""Real-transport backend: the cluster's wire messages over localhost TCP.

Each cluster node gets a TCP endpoint — an asyncio server task inside a
background event loop by default, or a real OS relay process in
``processes`` mode — and every remote :class:`~repro.net.message.Message`
crosses an actual socket as one length-prefixed frame, padded to the
cost model's ``size_bytes`` (see ``repro.net.message``).

Division of labour (this is the whole design):

* The **engine thread** (the caller's thread, running a
  :class:`~repro.sim.realtime.WallClockEnvironment`) keeps *all*
  protocol-visible state: fault draws, retransmission scheduling,
  :class:`~repro.net.stats.NetworkStats` accounting, tracing, and the
  delivery events themselves.  The fault/accounting code is the same
  algorithm as :class:`~repro.net.network.SimTransport` — a dropped
  attempt is accounted but *never written to the socket* (genuine
  socket-level loss), a delay becomes a real sleep before the write, a
  duplicate is written twice and discarded at the receiver.
* The **socket thread** runs a private asyncio loop and only moves
  bytes.  Frames to ship are posted to it with
  ``call_soon_threadsafe``; decoded arrivals come back through
  ``env.call_threadsafe`` so delivery events fire on the engine thread
  at the frame's wall arrival instant.

Because a send's delivery event is resolved by the *arrival* of its
frame (matched by ``wire_id``), late/duplicate frames are discarded
exactly like the simulation's one-shot events discard them, and the
run loop's in-flight counter (``pending()``) keeps the environment
alive until the last frame lands.

In ``processes`` mode each node endpoint is ``python -m
repro.net.tcp_node``: the child owns the node's listening socket and
its peer connections, and relays frames to/from the coordinator over
an uplink connection.  Protocol state still lives in the coordinator —
children are pure wire relays, so both modes share one semantics.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR
from repro.net.message import (
    Message,
    encode_frame,
    pack_frame,
    unpack_frame,
    FRAME_PREFIX_BYTES,
    _FRAME_PREFIX,
)
from repro.net.network_config import NetworkConfig
from repro.net.stats import NetworkStats
from repro.net.transport import Transport, WALL_CLOCK
from repro.obs.tracer import NULL_TRACER
from repro.sim import Event
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.ids import NodeId

__all__ = ["TcpTransport", "read_envelope", "write_envelope"]


async def read_envelope(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one framed envelope; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(FRAME_PREFIX_BYTES)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _FRAME_PREFIX.unpack(prefix)
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return unpack_frame(body)


async def write_envelope(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(pack_frame(payload))
    await writer.drain()


class _NodeEndpoint:
    """One node's socket endpoint inside the coordinator's loop
    (asyncio-task mode): a listening server for inbound frames and a
    lazy outbound connection per peer."""

    def __init__(self, transport: "TcpTransport", index: int):
        self.transport = transport
        self.index = index
        self.port: Optional[int] = None
        self.server: Optional[asyncio.base_events.Server] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._locks: Dict[int, asyncio.Lock] = {}

    async def start(self) -> None:
        self.server = await asyncio.start_server(
            self._serve, self.transport.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                frame = await read_envelope(reader)
                if frame is None:
                    return
                self.transport._arrived(frame)
        except asyncio.CancelledError:
            return  # loop shutdown cancels handlers mid-read; that's fine
        finally:
            writer.close()

    async def ship(self, dst: int, data: bytes, delay_s: float) -> None:
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        # One outbound writer per (src, dst) pair; the lock keeps
        # concurrent delayed shippers from interleaving partial frames.
        lock = self._locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is None:
                port = self.transport._port_of(dst)
                _reader, writer = await asyncio.open_connection(
                    self.transport.host, port
                )
                self._writers[dst] = writer
            writer.write(data)
            await writer.drain()

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()


class TcpTransport(Transport):
    """Delivers the cluster's messages over real localhost TCP sockets.

    Same caller contract as :class:`~repro.net.network.SimTransport`
    (``send`` returns a one-shot delivery event, ``charge`` returns a
    deferred delay, local messages are free and unaccounted, faults are
    fair-loss with bounded retransmission) but delivery instants come
    from actual socket arrivals on the wall clock, so the environment
    must provide ``call_threadsafe``/``attach_source`` — i.e. be a
    :class:`~repro.sim.realtime.WallClockEnvironment`.

    ``delivered_log`` records ``(category, src, dst, size_bytes)`` for
    every message frame that actually crossed a socket — the evidence
    the equivalence tests compare against the simulation's accounted
    multiset.
    """

    clock = WALL_CLOCK

    def __init__(self, env, config: NetworkConfig, tracer=None,
                 injector=None, processes: bool = False,
                 host: str = "127.0.0.1", start_timeout_s: float = 20.0):
        if not hasattr(env, "call_threadsafe"):
            raise ConfigurationError(
                "TcpTransport needs a WallClockEnvironment "
                "(repro.sim.realtime) — plain Environment has no "
                "thread-safe inbox for socket arrivals"
            )
        self.env = env
        self.config = config
        self.stats = NetworkStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.processes = processes
        self.host = host
        self.start_timeout_s = start_timeout_s
        self._next_wire_id = 0
        #: wire_id -> (delivery event, original message) for frames whose
        #: arrival must fire a delivery; duplicates miss and are dropped.
        self._pending: Dict[int, Tuple[Event, Message]] = {}
        #: Frames written (or queued to be written) but not yet arrived;
        #: keeps the wall-clock run loop alive while the wire is busy.
        self._inflight = 0
        self.delivered_log: List[Tuple[str, int, int, int]] = []
        #: Frames a partitioned relay refused to forward (processes
        #: mode).  Wire-level evidence only: the authoritative partition
        #: enforcement — and all accounting — lives in the injector, so
        #: this counter never feeds FaultStats.
        self.refused_frames = 0
        self._nodes: List[int] = []
        self._ports: Dict[int, int] = {}
        self._endpoints: Dict[int, _NodeEndpoint] = {}
        self._uplinks: Dict[int, asyncio.StreamWriter] = {}
        self._children: List = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._started = False
        self._closed = False
        env.attach_source(self)

    # -- run-loop liveness -------------------------------------------------

    def pending(self) -> int:
        """Frames in flight (engine thread only) — the wall-clock run
        loop waits for this to reach zero before declaring quiescence."""
        return self._inflight

    # -- lifecycle ---------------------------------------------------------

    def start(self, nodes: Iterable[NodeId]) -> None:
        if self._started:
            return
        if self._closed:
            raise ProtocolError("transport already closed")
        self._nodes = [node.value for node in nodes]
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-tcp-transport", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.start_timeout_s):
            raise ProtocolError(
                f"TCP transport failed to start within "
                f"{self.start_timeout_s}s"
            )
        if self._startup_error is not None:
            raise ProtocolError(
                f"TCP transport failed to start: {self._startup_error!r}"
            )
        self._started = True
        if self.processes:
            self._schedule_partition_epochs()

    def _schedule_partition_epochs(self) -> None:
        """Arm engine-clock timers that push partition state to relays.

        The injector's fault draws are the *authoritative* partition
        enforcement (identical on both backends); this makes the real
        wire honour the cut too, belt and braces: a frame that slips
        past the engine-side check (written just before the window
        opened, arriving at the relay inside it) is refused at the src
        relay and re-shipped by the coordinator after the retransmit
        timeout until the heal lets it through.
        """
        plan = getattr(self.injector, "plan", None)
        if plan is None or not getattr(plan, "partitions", ()):
            return
        for cut in plan.partitions:
            def activate(_event, cut=cut):
                self._post_control({
                    "t": "partition", "group_a": list(cut.group_a),
                })

            def heal(_event, cut=cut):
                self._post_control({
                    "t": "partition_heal", "group_a": list(cut.group_a),
                })

            now = self.env.now
            self.env.timeout(max(0.0, cut.at_s - now)).add_callback(activate)
            self.env.timeout(
                max(0.0, cut.heal_at_s - now)).add_callback(heal)

    def _post_control(self, payload: dict) -> None:
        """Broadcast a control frame to every relay (engine thread)."""
        loop = self._loop
        if loop is None or self._closed:
            return
        loop.call_soon_threadsafe(self._loop_broadcast, dict(payload))

    def close(self) -> None:
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=self.start_timeout_s)

    def _require_started(self) -> None:
        if not self._started:
            raise ProtocolError(
                "TCP transport not started — Cluster.run() brings it up, "
                "or call transport.start(nodes) directly"
            )
        if self._closed:
            raise ProtocolError("TCP transport already closed")

    # -- wire operations (engine thread) -----------------------------------

    def _tag_wire(self, message: Message) -> None:
        if message.wire_id is None:
            message.wire_id = self._next_wire_id
            self._next_wire_id += 1

    def send(self, message: Message) -> Event:
        """Send a message; returns an event firing when its frame lands.

        Same fault algorithm as the simulation backend, with the wire
        made literal: dropped attempts never reach the socket,
        retransmits are re-sent after a real
        ``transfer_time + retransmit timeout`` sleep, duplicates are
        written twice and the second arrival is discarded here because
        its ``wire_id`` is no longer pending.
        """
        done = self.env.event(name=f"deliver:{message.category.value}")
        done.hints = {
            "kind": "deliver", "category": message.category.value,
            "node": message.dst.value, "src": message.src.value,
        }
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            done.succeed(message)
            return done
        self._require_started()
        self._tag_wire(message)
        self._attempt(message, done, attempt=0)
        return done

    def _attempt(self, message: Message, done: Event, attempt: int) -> None:
        message.attempts = attempt + 1
        faults = self.injector.message_faults(message, attempt, self.env.now)
        transfer_time = (self.config.transfer_time(message.size_bytes)
                         + faults.extra_delay_s)
        self.stats.record(message, transfer_time)
        self.tracer.message(message, transfer_time)
        if faults.duplicated:
            self.stats.record(message, transfer_time)
            self.tracer.fault_duplicate(message)
        if faults.extra_delay_s:
            self.tracer.fault_delay(message, faults.extra_delay_s)
        if faults.dropped:
            # Socket-level loss: this attempt is accounted (lost wire
            # time is real wire time) but never written.
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            retry_after = (transfer_time
                           + self.injector.retransmit_timeout_s(attempt))

            def retransmit(_event, msg=message, target=done,
                           next_attempt=attempt + 1):
                self._attempt(msg, target, next_attempt)

            self.env.timeout(retry_after).add_callback(retransmit)
            return
        self.stats.record_attempts(message)
        self._pending[message.wire_id] = (done, message)
        self._post(message, kind="send", delay_s=faults.extra_delay_s,
                   copies=2 if faults.duplicated else 1)

    def charge(self, message: Message) -> float:
        """Account a message and ship its frame; returns the *modeled*
        deferred delay (the caller-visible cost contract is identical
        to the simulation backend's frozen-clock replay).  Only the
        surviving attempt's frame crosses the socket — dropped attempts
        lost both copies before the wire."""
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            return 0.0
        self._require_started()
        self._tag_wire(message)
        total_delay = 0.0
        attempt = 0
        while True:
            message.attempts = attempt + 1
            faults = self.injector.message_faults(
                message, attempt, self.env.now, synchronous=True)
            transfer_time = (self.config.transfer_time(message.size_bytes)
                             + faults.extra_delay_s)
            self.stats.record(message, transfer_time)
            self.tracer.message(message, transfer_time)
            if faults.duplicated:
                self.stats.record(message, transfer_time)
                self.tracer.fault_duplicate(message)
            if faults.extra_delay_s:
                self.tracer.fault_delay(message, faults.extra_delay_s)
            if not faults.dropped:
                break
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            total_delay += (transfer_time
                            + self.injector.retransmit_timeout_s(attempt))
            attempt += 1
        message.deliver_time = self.env.now + total_delay + transfer_time
        self.stats.record_attempts(message)
        self._post(message, kind="charge", delay_s=faults.extra_delay_s,
                   copies=2 if faults.duplicated else 1)
        return total_delay + transfer_time

    def _post(self, message: Message, kind: str, delay_s: float,
              copies: int) -> None:
        """Hand a frame to the socket thread (engine thread side)."""
        data = encode_frame(message, kind=kind)
        self._inflight += copies
        src, dst = message.src.value, message.dst.value
        assert self._loop is not None
        self._loop.call_soon_threadsafe(
            self._loop_enqueue, src, dst, data, delay_s, copies
        )

    # -- arrivals ----------------------------------------------------------

    def _arrived(self, frame: dict) -> None:
        """A message frame landed (socket thread) — hop to the engine."""
        self.env.call_threadsafe(lambda: self._deliver(frame))

    def _deliver(self, frame: dict) -> None:
        """Fire the delivery for an arrived frame (engine thread)."""
        self._inflight -= 1
        self.delivered_log.append(
            (frame["category"], frame["src"], frame["dst"], frame["size"])
        )
        if frame.get("kind") != "send":
            return  # charge-path frames were fully accounted at send time
        entry = self._pending.pop(frame.get("wire"), None)
        if entry is None:
            return  # duplicate copy — receiver discards it
        done, message = entry
        message.deliver_time = self.env.now
        done.succeed(message)

    # -- socket thread -----------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._loop_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced at start()
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _loop_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            if self.processes:
                await self._start_processes()
            else:
                for index in self._nodes:
                    endpoint = _NodeEndpoint(self, index)
                    await endpoint.start()
                    self._endpoints[index] = endpoint
                    self._ports[index] = endpoint.port
            self._ready.set()
            await self._shutdown.wait()
        finally:
            await self._teardown()

    def _port_of(self, index: int) -> int:
        try:
            return self._ports[index]
        except KeyError:
            raise ProtocolError(f"no endpoint for node {index}") from None

    def _loop_enqueue(self, src: int, dst: int, data: bytes,
                      delay_s: float, copies: int) -> None:
        for _ in range(copies):
            if self.processes:
                asyncio.ensure_future(self._uplink_ship(src, data, delay_s))
            else:
                asyncio.ensure_future(
                    self._endpoints[src].ship(dst, data, delay_s)
                )

    # -- process mode ------------------------------------------------------

    async def _uplink_ship(self, src: int, data: bytes,
                           delay_s: float) -> None:
        # Jitter is applied before the relay hop — socket-level delay at
        # the source, mirroring the asyncio-task mode.
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        writer = self._uplinks[src]
        writer.write(data)
        await writer.drain()

    def _loop_broadcast(self, payload: dict) -> None:
        """Write one control frame to every uplink (socket thread)."""
        for writer in self._uplinks.values():
            asyncio.ensure_future(write_envelope(writer, payload))

    def _loop_reship(self, refusal: dict) -> None:
        """A relay refused a cross-partition frame — re-ship it later.

        The attempt was already fully accounted when it was posted (the
        refusal is wire-level, below the injector), so this is pure
        redelivery: re-send the same bytes through the src relay after
        one retransmit turnaround, escalating with the reship count.
        Keeps ``_inflight`` balanced — the frame is still outstanding
        and will decrement it when it finally lands.
        """
        inner = refusal["frame"]
        inner["reships"] = reships = inner.get("reships", 0) + 1
        self.refused_frames += 1
        delay = self.injector.retransmit_timeout_s(reships - 1)
        data = pack_frame(inner)
        src = inner["src"]
        assert self._loop is not None
        self._loop.call_later(delay, lambda: asyncio.ensure_future(
            self._uplink_ship(src, data, 0.0)))

    async def _start_processes(self) -> None:
        """Spawn one relay process per node and exchange the port map."""
        ready = asyncio.Event()

        async def handle_uplink(reader, writer):
            hello = await read_envelope(reader)
            if hello is None or hello.get("t") != "hello":
                writer.close()
                return
            node = hello["node"]
            self._ports[node] = hello["port"]
            self._uplinks[node] = writer
            if len(self._uplinks) == len(self._nodes):
                ready.set()
            while True:
                frame = await read_envelope(reader)
                if frame is None:
                    return
                if frame.get("t") == "msg":
                    self._arrived(frame)
                elif frame.get("t") == "refused":
                    self._loop_reship(frame)

        server = await asyncio.start_server(handle_uplink, self.host, 0)
        self._coordinator_server = server
        port = server.sockets[0].getsockname()[1]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parent.parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        for index in self._nodes:
            child = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.net.tcp_node",
                "--node", str(index),
                "--coordinator", f"{self.host}:{port}",
                env=env,
            )
            self._children.append(child)
        await asyncio.wait_for(ready.wait(), timeout=self.start_timeout_s)
        # Every child knows every peer's listening port before any
        # protocol frame can be routed.
        peers = {"t": "peers", "ports": self._ports}
        for writer in self._uplinks.values():
            await write_envelope(writer, peers)

    async def _teardown(self) -> None:
        for writer in self._uplinks.values():
            try:
                await write_envelope(writer, {"t": "shutdown"})
                writer.close()
            except (ConnectionError, RuntimeError):
                pass
        for child in self._children:
            try:
                await asyncio.wait_for(child.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                child.kill()
        server = getattr(self, "_coordinator_server", None)
        if server is not None:
            server.close()
            await server.wait_closed()
        for endpoint in self._endpoints.values():
            await endpoint.close()
