"""Simulated cluster network with byte / message / time accounting.

The paper models exactly two network knobs (its Figures 6-8 sweep
both): link bandwidth (10 Mbps, 100 Mbps, 1 Gbps — switched, so no
collisions) and the per-message *software cost* (startup latency of
the messaging protocol: 100 us down to 500 ns).  :class:`NetworkConfig`
captures those knobs; :class:`Network` delivers messages over the
simulation clock and attributes every byte, message, and microsecond to
a traffic category and (when relevant) a shared object, which is what
the figure-reproduction benches read back out.
"""

from repro.net.message import Message, MessageCategory
from repro.net.network import Network, NetworkConfig
from repro.net.presets import (
    ETHERNET_10M,
    FAST_ETHERNET_100M,
    GIGABIT_1G,
    SOFTWARE_COSTS,
    preset_network,
)
from repro.net.sizes import SizeModel
from repro.net.stats import NetworkStats, NodeTraffic, ObjectTraffic

__all__ = [
    "Message",
    "MessageCategory",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "ObjectTraffic",
    "NodeTraffic",
    "SizeModel",
    "ETHERNET_10M",
    "FAST_ETHERNET_100M",
    "GIGABIT_1G",
    "SOFTWARE_COSTS",
    "preset_network",
]
