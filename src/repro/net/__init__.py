"""Cluster networking: message model, cost model, and transports.

The paper models exactly two network knobs (its Figures 6-8 sweep
both): link bandwidth (10 Mbps, 100 Mbps, 1 Gbps — switched, so no
collisions) and the per-message *software cost* (startup latency of
the messaging protocol: 100 us down to 500 ns).  :class:`NetworkConfig`
captures those knobs; what actually moves the messages is a pluggable
:class:`Transport`:

* :class:`SimTransport` (alias :class:`Network`, the default) delivers
  over the simulation's virtual clock and attributes every byte,
  message, and microsecond to a traffic category and (when relevant) a
  shared object — this is what the figure-reproduction benches read.
* :class:`TcpTransport` delivers the same wire messages as
  length-prefixed frames over real localhost TCP sockets (asyncio
  tasks per node, or real OS processes), stamping deliveries with the
  wall clock.

Stable public surface
---------------------
``Message``/``MessageCategory``/``SizeModel`` (the message model),
``Transport``/``SimTransport``/``TcpTransport``/``Network`` (backends),
``NetworkConfig`` and the bandwidth presets (the cost model), and
``NetworkStats``/``ObjectTraffic``/``NodeTraffic`` (accounting).
Everything else under ``repro.net`` is implementation detail.
"""

from repro.net.message import Message, MessageCategory
from repro.net.network import Network, SimTransport
from repro.net.network_config import NetworkConfig
from repro.net.presets import (
    ETHERNET_10M,
    FAST_ETHERNET_100M,
    GIGABIT_1G,
    SOFTWARE_COSTS,
    preset_network,
)
from repro.net.sizes import SizeModel
from repro.net.stats import NetworkStats, NodeTraffic, ObjectTraffic
from repro.net.transport import Transport, VIRTUAL_CLOCK, WALL_CLOCK

__all__ = [
    "Message",
    "MessageCategory",
    "Transport",
    "SimTransport",
    "TcpTransport",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "ObjectTraffic",
    "NodeTraffic",
    "SizeModel",
    "VIRTUAL_CLOCK",
    "WALL_CLOCK",
    "ETHERNET_10M",
    "FAST_ETHERNET_100M",
    "GIGABIT_1G",
    "SOFTWARE_COSTS",
    "preset_network",
]


def __getattr__(name):
    # TcpTransport pulls in asyncio/threading machinery; load it only
    # when a caller actually asks for the real-socket backend.
    if name == "TcpTransport":
        from repro.net.tcp import TcpTransport

        return TcpTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
