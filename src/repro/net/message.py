"""Message model for the simulated network."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.util.ids import NodeId, ObjectId


class MessageCategory(enum.Enum):
    """Traffic categories, used for accounting and the figure benches.

    The split mirrors the costs the paper discusses: lock management
    traffic to/from the GDO (§5.1), consistency data (page transfers,
    Figures 2-5), and the small metadata that rides along with lock
    grants (holder lists and page maps, §4.1).
    """

    LOCK_REQUEST = "lock_request"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    PAGE_REQUEST = "page_request"
    PAGE_DATA = "page_data"
    PAGE_MAP = "page_map"
    HOLDER_LIST = "holder_list"
    UPDATE_PUSH = "update_push"  # eager pushes (RC extension)
    GDO_MIGRATE = "gdo_migrate"  # directory-entry home handoff (migration)
    CONTROL = "control"

    @property
    def is_consistency_data(self) -> bool:
        """True for message kinds that carry object data between nodes."""
        return self in (MessageCategory.PAGE_DATA, MessageCategory.UPDATE_PUSH)


@dataclass(frozen=True)
class ManifestEntry:
    """One object's share of a batched (multi-object) message.

    ``size_bytes`` is the entry's on-wire share — its object reference
    plus its per-object payload — so the sum of entry shares plus one
    protocol header reconstructs the whole message size, and per-object
    accounting can attribute exactly the bytes each object caused.
    """

    object_id: ObjectId
    pages: Tuple[int, ...]
    size_bytes: int


@dataclass
class Message:
    """One message on the simulated network.

    ``size_bytes`` is the on-wire size (payload plus protocol header, as
    computed by :class:`repro.net.SizeModel`).  ``object_id`` attributes
    the message to one shared object's consistency maintenance so the
    per-object series of Figures 2-8 can be reconstructed; pure control
    traffic leaves it ``None``.

    A *batched* message carries a ``manifest`` of per-object
    :class:`ManifestEntry` shares instead of a single ``object_id``:
    one coalesced ``PAGE_REQUEST``/``PAGE_DATA`` pair serves several
    objects resident at the same owner, paying the header and software
    startup cost once.

    ``wire_id`` is assigned by the network the first time the message
    hits the wire; fault draws are keyed by it, so a batched message is
    one fault unit regardless of how many logical page sets it carries.
    ``attempts`` counts wire attempts (1 = no retransmission) and
    ``send_time`` is the *first* attempt's send instant, so
    ``deliver_time - send_time`` covers every retransmit turnaround.
    """

    src: NodeId
    dst: NodeId
    category: MessageCategory
    size_bytes: int
    object_id: Optional[ObjectId] = None
    payload: Any = None
    manifest: Tuple[ManifestEntry, ...] = field(default=(), compare=False)
    wire_id: Optional[int] = field(default=None, compare=False)
    attempts: int = field(default=0, compare=False)
    send_time: float = field(default=0.0, compare=False)
    deliver_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node.

        Local "messages" model procedure calls into locally cached GDO
        state; they cost nothing on the network and are excluded from
        all network accounting.
        """
        return self.src == self.dst

    def attributions(self) -> Tuple[Tuple[ObjectId, int], ...]:
        """Per-object ``(object id, bytes)`` shares of this message.

        Batched messages split by manifest entry (the one header is
        attributed to the first entry, mirroring how an unbatched run
        would have charged that object a header of its own); plain
        messages attribute everything to ``object_id``.
        """
        if self.manifest:
            header = self.size_bytes - sum(
                entry.size_bytes for entry in self.manifest
            )
            return tuple(
                (entry.object_id,
                 entry.size_bytes + (header if index == 0 else 0))
                for index, entry in enumerate(self.manifest)
            )
        if self.object_id is None:
            return ()
        return ((self.object_id, self.size_bytes),)
