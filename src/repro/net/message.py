"""Message model and wire-frame codec, shared by every transport."""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId


class MessageCategory(enum.Enum):
    """Traffic categories, used for accounting and the figure benches.

    The split mirrors the costs the paper discusses: lock management
    traffic to/from the GDO (§5.1), consistency data (page transfers,
    Figures 2-5), and the small metadata that rides along with lock
    grants (holder lists and page maps, §4.1).
    """

    LOCK_REQUEST = "lock_request"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    PAGE_REQUEST = "page_request"
    PAGE_DATA = "page_data"
    PAGE_MAP = "page_map"
    HOLDER_LIST = "holder_list"
    UPDATE_PUSH = "update_push"  # eager pushes (RC extension)
    GDO_MIGRATE = "gdo_migrate"  # directory-entry home handoff (migration)
    CONTROL = "control"

    @property
    def is_consistency_data(self) -> bool:
        """True for message kinds that carry object data between nodes."""
        return self in (MessageCategory.PAGE_DATA, MessageCategory.UPDATE_PUSH)


@dataclass(frozen=True)
class ManifestEntry:
    """One object's share of a batched (multi-object) message.

    ``size_bytes`` is the entry's on-wire share — its object reference
    plus its per-object payload — so the sum of entry shares plus one
    protocol header reconstructs the whole message size, and per-object
    accounting can attribute exactly the bytes each object caused.
    """

    object_id: ObjectId
    pages: Tuple[int, ...]
    size_bytes: int


@dataclass
class Message:
    """One message on the simulated network.

    ``size_bytes`` is the on-wire size (payload plus protocol header, as
    computed by :class:`repro.net.SizeModel`).  ``object_id`` attributes
    the message to one shared object's consistency maintenance so the
    per-object series of Figures 2-8 can be reconstructed; pure control
    traffic leaves it ``None``.

    A *batched* message carries a ``manifest`` of per-object
    :class:`ManifestEntry` shares instead of a single ``object_id``:
    one coalesced ``PAGE_REQUEST``/``PAGE_DATA`` pair serves several
    objects resident at the same owner, paying the header and software
    startup cost once.

    ``wire_id`` is assigned by the network the first time the message
    hits the wire; fault draws are keyed by it, so a batched message is
    one fault unit regardless of how many logical page sets it carries.
    ``attempts`` counts wire attempts (1 = no retransmission) and
    ``send_time`` is the *first* attempt's send instant, so
    ``deliver_time - send_time`` covers every retransmit turnaround.
    """

    src: NodeId
    dst: NodeId
    category: MessageCategory
    size_bytes: int
    object_id: Optional[ObjectId] = None
    payload: Any = None
    manifest: Tuple[ManifestEntry, ...] = field(default=(), compare=False)
    wire_id: Optional[int] = field(default=None, compare=False)
    attempts: int = field(default=0, compare=False)
    send_time: float = field(default=0.0, compare=False)
    deliver_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node.

        Local "messages" model procedure calls into locally cached GDO
        state; they cost nothing on the network and are excluded from
        all network accounting.
        """
        return self.src == self.dst

    def attributions(self) -> Tuple[Tuple[ObjectId, int], ...]:
        """Per-object ``(object id, bytes)`` shares of this message.

        Batched messages split by manifest entry (the one header is
        attributed to the first entry, mirroring how an unbatched run
        would have charged that object a header of its own); plain
        messages attribute everything to ``object_id``.
        """
        if self.manifest:
            header = self.size_bytes - sum(
                entry.size_bytes for entry in self.manifest
            )
            return tuple(
                (entry.object_id,
                 entry.size_bytes + (header if index == 0 else 0))
                for index, entry in enumerate(self.manifest)
            )
        if self.object_id is None:
            return ()
        return ((self.object_id, self.size_bytes),)


# ---------------------------------------------------------------------------
# Wire-frame codec (the TCP transport's on-socket format)
# ---------------------------------------------------------------------------
#
# A frame is a 4-byte big-endian length prefix followed by one JSON
# object with sorted keys.  Message frames (``"t": "msg"``) carry the
# full protocol-visible identity of a :class:`Message` — category,
# endpoints, size, object attribution, manifest, wire id — plus a
# ``pad`` filler sized so the frame occupies ``size_bytes`` bytes on
# the socket whenever the metadata fits: the cost model's on-wire size
# becomes the *actual* on-wire size.  Control frames (``"t": "hello"``
# etc.) reuse the same envelope for transport bring-up traffic and are
# never accounted.

#: Bytes of the big-endian unsigned length prefix before every frame.
FRAME_PREFIX_BYTES = 4
_FRAME_PREFIX = struct.Struct(">I")

#: Version stamped into every message frame; receivers reject others.
FRAME_SCHEMA = 1

#: Hard ceiling on one frame's body, far above any modeled message.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def pack_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one envelope: length prefix + sorted-key JSON body."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds "
                            f"the {MAX_FRAME_BYTES} byte frame limit")
    return _FRAME_PREFIX.pack(len(body)) + body


def unpack_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`pack_frame` for one frame *body* (no prefix)."""
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame body is not an object: {payload!r}")
    return payload


def message_to_frame(message: Message, kind: str = "send") -> Dict[str, Any]:
    """The JSON-primitive identity of a message, as one frame payload.

    ``kind`` distinguishes the asynchronous ``send`` path (the receiver
    must fire a delivery event) from the fire-and-forget ``charge``
    path (accounting only).
    """
    frame: Dict[str, Any] = {
        "t": "msg",
        "v": FRAME_SCHEMA,
        "kind": kind,
        "src": message.src.value,
        "dst": message.dst.value,
        "category": message.category.value,
        "size": message.size_bytes,
        "wire": message.wire_id,
        "attempt": message.attempts,
    }
    if message.object_id is not None:
        frame["object"] = message.object_id.value
    if message.manifest:
        frame["manifest"] = [
            [entry.object_id.value, list(entry.pages), entry.size_bytes]
            for entry in message.manifest
        ]
    return frame


def message_from_frame(frame: Dict[str, Any]) -> Message:
    """Rebuild a :class:`Message` from a decoded message frame."""
    if frame.get("t") != "msg":
        raise ProtocolError(f"not a message frame: {frame.get('t')!r}")
    if frame.get("v") != FRAME_SCHEMA:
        raise ProtocolError(
            f"frame schema {frame.get('v')!r} != {FRAME_SCHEMA}"
        )
    object_id = frame.get("object")
    message = Message(
        src=NodeId(frame["src"]),
        dst=NodeId(frame["dst"]),
        category=MessageCategory(frame["category"]),
        size_bytes=frame["size"],
        object_id=None if object_id is None else ObjectId(object_id),
        manifest=tuple(
            ManifestEntry(ObjectId(obj), tuple(pages), size)
            for obj, pages, size in frame.get("manifest", ())
        ),
    )
    message.wire_id = frame.get("wire")
    message.attempts = frame.get("attempt", 0)
    return message


def encode_frame(message: Message, kind: str = "send") -> bytes:
    """Encode a message as one padded wire frame (prefix included).

    The ``pad`` filler stretches the frame to the message's modeled
    ``size_bytes`` so the bytes crossing the socket match the cost
    model; frames whose metadata alone exceeds the modeled size are
    sent unpadded (the model's size still governs all accounting).
    """
    frame = message_to_frame(message, kind=kind)
    bare = pack_frame(frame)
    # `,"pad":""` costs 9 bytes of JSON before the filler itself.
    shortfall = message.size_bytes - len(bare) - 9
    if shortfall > 0:
        frame["pad"] = "." * shortfall
        return pack_frame(frame)
    return bare


def decode_frame(data: bytes) -> Message:
    """Decode one complete frame (prefix included) into a message."""
    if len(data) < FRAME_PREFIX_BYTES:
        raise ProtocolError(f"truncated frame: {len(data)} bytes")
    (length,) = _FRAME_PREFIX.unpack(data[:FRAME_PREFIX_BYTES])
    body = data[FRAME_PREFIX_BYTES:]
    if len(body) != length:
        raise ProtocolError(
            f"frame length prefix {length} != body length {len(body)}"
        )
    return message_from_frame(unpack_frame(body))
