"""Message model for the simulated network."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.util.ids import NodeId, ObjectId


class MessageCategory(enum.Enum):
    """Traffic categories, used for accounting and the figure benches.

    The split mirrors the costs the paper discusses: lock management
    traffic to/from the GDO (§5.1), consistency data (page transfers,
    Figures 2-5), and the small metadata that rides along with lock
    grants (holder lists and page maps, §4.1).
    """

    LOCK_REQUEST = "lock_request"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    PAGE_REQUEST = "page_request"
    PAGE_DATA = "page_data"
    PAGE_MAP = "page_map"
    HOLDER_LIST = "holder_list"
    UPDATE_PUSH = "update_push"  # eager pushes (RC extension)
    CONTROL = "control"

    @property
    def is_consistency_data(self) -> bool:
        """True for message kinds that carry object data between nodes."""
        return self in (MessageCategory.PAGE_DATA, MessageCategory.UPDATE_PUSH)


@dataclass
class Message:
    """One message on the simulated network.

    ``size_bytes`` is the on-wire size (payload plus protocol header, as
    computed by :class:`repro.net.SizeModel`).  ``object_id`` attributes
    the message to one shared object's consistency maintenance so the
    per-object series of Figures 2-8 can be reconstructed; pure control
    traffic leaves it ``None``.
    """

    src: NodeId
    dst: NodeId
    category: MessageCategory
    size_bytes: int
    object_id: Optional[ObjectId] = None
    payload: Any = None
    send_time: float = field(default=0.0, compare=False)
    deliver_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node.

        Local "messages" model procedure calls into locally cached GDO
        state; they cost nothing on the network and are excluded from
        all network accounting.
        """
        return self.src == self.dst
