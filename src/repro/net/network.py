"""Point-to-point switched network over the simulation clock."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.message import Message
from repro.net.stats import NetworkStats
from repro.obs.tracer import NULL_TRACER
from repro.sim import Environment, Event
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkConfig:
    """The two knobs the paper sweeps, plus wire propagation.

    Attributes:
        bandwidth_bps: link bandwidth in bits per second.
        software_cost_s: fixed per-message software (protocol startup)
            cost in seconds — the x-axis of Figures 6-8.
        propagation_s: physical propagation delay; negligible on a
            system-area network but kept explicit and configurable.
        name: human-readable label used in reports.
        multicast: the switch replicates frames to multiple receivers,
            so one transmission reaches any number of destinations (§6
            lists "multicast-capable networks" among the DSM
            optimizations LOTEC should compose with).
    """

    bandwidth_bps: float
    software_cost_s: float
    propagation_s: float = 1e-6
    name: str = ""
    multicast: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.software_cost_s < 0 or self.propagation_s < 0:
            raise ConfigurationError("latencies must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """Time one message of ``size_bytes`` occupies: software startup
        plus wire serialization plus propagation."""
        return (
            self.software_cost_s
            + (size_bytes * 8.0) / self.bandwidth_bps
            + self.propagation_s
        )

    def with_software_cost(self, software_cost_s: float) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=self.multicast,
        )

    def with_multicast(self, enabled: bool = True) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=self.software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=enabled,
        )


class Network:
    """Delivers messages between nodes and accounts for every one.

    The target environment is a *switched* system-area network (the
    paper simulates "switched (i.e. no collisions)" Ethernet), so
    messages between distinct node pairs do not contend.  We model each
    message as occupying the wire for its transfer time and deliver it
    that much later; per-link queueing is deliberately omitted, exactly
    as in the paper's cost model.
    """

    def __init__(self, env: Environment, config: NetworkConfig, tracer=None):
        self.env = env
        self.config = config
        self.stats = NetworkStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def send(self, message: Message) -> Event:
        """Send a message; returns an event firing at delivery time.

        Local messages (``src == dst``) model calls into locally cached
        state: they deliver immediately and are not accounted, matching
        the paper's local/global split of lock processing (§4.1).
        """
        done = self.env.event(name=f"deliver:{message.category.value}")
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            done.succeed(message)
            return done
        transfer_time = self.config.transfer_time(message.size_bytes)
        message.deliver_time = self.env.now + transfer_time
        self.stats.record(message, transfer_time)
        self.tracer.message(message, transfer_time)

        def deliver(event, msg=message, target=done):
            target.succeed(msg)

        self.env.timeout(transfer_time).add_callback(deliver)
        return done

    def charge(self, message: Message) -> float:
        """Account a message without creating a delivery event.

        Used by synchronous paths (LOTEC demand fetches fired from
        inside a running method body) where the *data* moves at once
        and the *delay* is deferred to the transaction's next
        suspension point; returns the transfer time to defer.
        """
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            return 0.0
        transfer_time = self.config.transfer_time(message.size_bytes)
        message.deliver_time = self.env.now + transfer_time
        self.stats.record(message, transfer_time)
        self.tracer.message(message, transfer_time)
        return transfer_time

    def charge_group(self, template: Message, destinations) -> float:
        """Send the same payload to several destinations (eager pushes).

        On a multicast-capable fabric one transmission reaches every
        destination: the sender pays the software cost and serializes
        the frame once.  Without multicast this degenerates to one
        unicast charge per remote destination.  Returns the total
        sender-side delay; local destinations are free as usual.
        """
        remote = [dst for dst in destinations if dst != template.src]
        if not remote:
            return 0.0
        if self.config.multicast:
            message = Message(
                src=template.src, dst=remote[0],
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            return self.charge(message)
        total = 0.0
        for dst in remote:
            message = Message(
                src=template.src, dst=dst,
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            total += self.charge(message)
        return total

    def round_trip(self, request: Message, response_size: int,
                   response_category=None) -> float:
        """Estimated request/response latency (used by planners only)."""
        category = response_category or request.category
        del category  # size-based; category kept for future queueing models
        return self.config.transfer_time(
            request.size_bytes
        ) + self.config.transfer_time(response_size)
