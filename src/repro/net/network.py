"""The simulation transport: point-to-point switched network over the
virtual clock — the default :class:`~repro.net.transport.Transport`."""

from __future__ import annotations

from repro.faults.injector import NULL_INJECTOR
from repro.net.message import Message
from repro.net.network_config import NetworkConfig
from repro.net.stats import NetworkStats
from repro.net.transport import Transport
from repro.obs.tracer import NULL_TRACER
from repro.sim import Environment, Event

__all__ = ["NetworkConfig", "SimTransport", "Network"]


class SimTransport(Transport):
    """Delivers messages over the simulation clock and accounts for
    every one.

    The target environment is a *switched* system-area network (the
    paper simulates "switched (i.e. no collisions)" Ethernet), so
    messages between distinct node pairs do not contend.  We model each
    message as occupying the wire for its transfer time and deliver it
    that much later; per-link queueing is deliberately omitted, exactly
    as in the paper's cost model.

    With a :class:`~repro.faults.injector.FaultInjector` wired in, the
    network becomes a *fair-loss* channel with a reliable transport on
    top: an injected drop consumes wire time and is retransmitted
    after the plan's retransmit timeout, so callers still see exactly
    one delivery event per ``send`` — faults surface as added latency
    and extra accounted traffic, never as a hang or a lost grant.
    """

    def __init__(self, env: Environment, config: NetworkConfig, tracer=None,
                 injector=None):
        self.env = env
        self.config = config
        self.stats = NetworkStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._next_wire_id = 0

    def _tag_wire(self, message: Message) -> None:
        """Assign the message its wire identity (once, on first send).

        Fault draws are keyed by this id, so one wire message — however
        many logical page sets its manifest coalesces — is exactly one
        fault unit, with one verdict stream across its attempts.
        """
        if message.wire_id is None:
            message.wire_id = self._next_wire_id
            self._next_wire_id += 1

    def send(self, message: Message) -> Event:
        """Send a message; returns an event firing at delivery time.

        Local messages (``src == dst``) model calls into locally cached
        state: they deliver immediately and are not accounted, matching
        the paper's local/global split of lock processing (§4.1).
        """
        done = self.env.event(name=f"deliver:{message.category.value}")
        # Scheduling hints for same-instant tie-break policies
        # (repro.sim.tiebreak): destination node and message category.
        done.hints = {
            "kind": "deliver", "category": message.category.value,
            "node": message.dst.value, "src": message.src.value,
        }
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            done.succeed(message)
            return done
        self._tag_wire(message)
        self._transmit(message, done, attempt=0)
        return done

    def _transmit(self, message: Message, done: Event, attempt: int) -> None:
        """One wire attempt; re-arms itself after an injected drop.

        Every attempt — including dropped ones and duplicates — is
        accounted in :class:`NetworkStats` and traced: lost wire time
        is real wire time, which is exactly the cost model distortion
        a robustness experiment wants to measure.  ``message.send_time``
        is *not* touched here: it keeps the first attempt's instant, so
        ``deliver_time - send_time`` spans every retransmit turnaround.
        """
        message.attempts = attempt + 1
        faults = self.injector.message_faults(message, attempt, self.env.now)
        transfer_time = (self.config.transfer_time(message.size_bytes)
                         + faults.extra_delay_s)
        self.stats.record(message, transfer_time)
        if self.tracer.enabled:
            self.tracer.message(message, transfer_time)
        if faults.duplicated:
            # The duplicate burns wire time whether or not the primary
            # copy survives; the receiver discards it on arrival
            # (delivery events are one-shot by construction).
            self.stats.record(message, transfer_time)
            self.tracer.fault_duplicate(message)
        if faults.extra_delay_s:
            self.tracer.fault_delay(message, faults.extra_delay_s)
        if faults.dropped:
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            retry_after = (transfer_time
                           + self.injector.retransmit_timeout_s(attempt))

            def retransmit(_event, msg=message, target=done,
                           next_attempt=attempt + 1):
                self._transmit(msg, target, next_attempt)

            self.env.timeout(retry_after).add_callback(retransmit)
            return
        message.deliver_time = self.env.now + transfer_time
        self.stats.record_attempts(message)

        def deliver(event, msg=message, target=done):
            target.succeed(msg)

        self.env.timeout(transfer_time).add_callback(deliver)

    def charge(self, message: Message) -> float:
        """Account a message without creating a delivery event.

        Used by synchronous paths (LOTEC demand fetches fired from
        inside a running method body) where the *data* moves at once
        and the *delay* is deferred to the transaction's next
        suspension point; returns the transfer time to defer.

        Fault injection treats this path as a frozen-clock replay of
        the ``send`` loop: drops add retransmit turnarounds to the
        deferred delay and crash windows are ignored (the clock cannot
        advance to a recovery), bounded by the plan's retransmit limit.
        """
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            return 0.0
        self._tag_wire(message)
        total_delay = 0.0
        attempt = 0
        while True:
            message.attempts = attempt + 1
            faults = self.injector.message_faults(
                message, attempt, self.env.now, synchronous=True)
            transfer_time = (self.config.transfer_time(message.size_bytes)
                             + faults.extra_delay_s)
            self.stats.record(message, transfer_time)
            if self.tracer.enabled:
                self.tracer.message(message, transfer_time)
            if faults.duplicated:
                # Same rule as the asynchronous path: the duplicate's
                # wire copy is accounted on every attempt it rides.
                self.stats.record(message, transfer_time)
                self.tracer.fault_duplicate(message)
            if faults.extra_delay_s:
                self.tracer.fault_delay(message, faults.extra_delay_s)
            if not faults.dropped:
                break
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            total_delay += (transfer_time
                            + self.injector.retransmit_timeout_s(attempt))
            attempt += 1
        message.deliver_time = self.env.now + total_delay + transfer_time
        self.stats.record_attempts(message)
        return total_delay + transfer_time


#: Backwards-compatible alias: ``Network`` was the pre-Transport name
#: of the simulation backend and remains importable everywhere.
Network = SimTransport
