"""Point-to-point switched network over the simulation clock."""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import NULL_INJECTOR
from repro.net.message import Message
from repro.net.stats import NetworkStats
from repro.obs.tracer import NULL_TRACER
from repro.sim import Environment, Event
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkConfig:
    """The two knobs the paper sweeps, plus wire propagation.

    Attributes:
        bandwidth_bps: link bandwidth in bits per second.
        software_cost_s: fixed per-message software (protocol startup)
            cost in seconds — the x-axis of Figures 6-8.
        propagation_s: physical propagation delay; negligible on a
            system-area network but kept explicit and configurable.
        name: human-readable label used in reports.
        multicast: the switch replicates frames to multiple receivers,
            so one transmission reaches any number of destinations (§6
            lists "multicast-capable networks" among the DSM
            optimizations LOTEC should compose with).
    """

    bandwidth_bps: float
    software_cost_s: float
    propagation_s: float = 1e-6
    name: str = ""
    multicast: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.software_cost_s < 0 or self.propagation_s < 0:
            raise ConfigurationError("latencies must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """Time one message of ``size_bytes`` occupies: software startup
        plus wire serialization plus propagation."""
        return (
            self.software_cost_s
            + (size_bytes * 8.0) / self.bandwidth_bps
            + self.propagation_s
        )

    def with_software_cost(self, software_cost_s: float) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=self.multicast,
        )

    def with_multicast(self, enabled: bool = True) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=self.software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=enabled,
        )


class Network:
    """Delivers messages between nodes and accounts for every one.

    The target environment is a *switched* system-area network (the
    paper simulates "switched (i.e. no collisions)" Ethernet), so
    messages between distinct node pairs do not contend.  We model each
    message as occupying the wire for its transfer time and deliver it
    that much later; per-link queueing is deliberately omitted, exactly
    as in the paper's cost model.

    With a :class:`~repro.faults.injector.FaultInjector` wired in, the
    network becomes a *fair-loss* channel with a reliable transport on
    top: an injected drop consumes wire time and is retransmitted
    after the plan's retransmit timeout, so callers still see exactly
    one delivery event per ``send`` — faults surface as added latency
    and extra accounted traffic, never as a hang or a lost grant.
    """

    def __init__(self, env: Environment, config: NetworkConfig, tracer=None,
                 injector=None):
        self.env = env
        self.config = config
        self.stats = NetworkStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._next_wire_id = 0

    def _tag_wire(self, message: Message) -> None:
        """Assign the message its wire identity (once, on first send).

        Fault draws are keyed by this id, so one wire message — however
        many logical page sets its manifest coalesces — is exactly one
        fault unit, with one verdict stream across its attempts.
        """
        if message.wire_id is None:
            message.wire_id = self._next_wire_id
            self._next_wire_id += 1

    def send(self, message: Message) -> Event:
        """Send a message; returns an event firing at delivery time.

        Local messages (``src == dst``) model calls into locally cached
        state: they deliver immediately and are not accounted, matching
        the paper's local/global split of lock processing (§4.1).
        """
        done = self.env.event(name=f"deliver:{message.category.value}")
        # Scheduling hints for same-instant tie-break policies
        # (repro.sim.tiebreak): destination node and message category.
        done.hints = {
            "kind": "deliver", "category": message.category.value,
            "node": message.dst.value, "src": message.src.value,
        }
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            done.succeed(message)
            return done
        self._tag_wire(message)
        self._transmit(message, done, attempt=0)
        return done

    def _transmit(self, message: Message, done: Event, attempt: int) -> None:
        """One wire attempt; re-arms itself after an injected drop.

        Every attempt — including dropped ones and duplicates — is
        accounted in :class:`NetworkStats` and traced: lost wire time
        is real wire time, which is exactly the cost model distortion
        a robustness experiment wants to measure.  ``message.send_time``
        is *not* touched here: it keeps the first attempt's instant, so
        ``deliver_time - send_time`` spans every retransmit turnaround.
        """
        message.attempts = attempt + 1
        faults = self.injector.message_faults(message, attempt, self.env.now)
        transfer_time = (self.config.transfer_time(message.size_bytes)
                         + faults.extra_delay_s)
        self.stats.record(message, transfer_time)
        self.tracer.message(message, transfer_time)
        if faults.duplicated:
            # The duplicate burns wire time whether or not the primary
            # copy survives; the receiver discards it on arrival
            # (delivery events are one-shot by construction).
            self.stats.record(message, transfer_time)
            self.tracer.fault_duplicate(message)
        if faults.extra_delay_s:
            self.tracer.fault_delay(message, faults.extra_delay_s)
        if faults.dropped:
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            retry_after = transfer_time + self.injector.retransmit_timeout_s()

            def retransmit(_event, msg=message, target=done,
                           next_attempt=attempt + 1):
                self._transmit(msg, target, next_attempt)

            self.env.timeout(retry_after).add_callback(retransmit)
            return
        message.deliver_time = self.env.now + transfer_time
        self.stats.record_attempts(message)

        def deliver(event, msg=message, target=done):
            target.succeed(msg)

        self.env.timeout(transfer_time).add_callback(deliver)

    def charge(self, message: Message) -> float:
        """Account a message without creating a delivery event.

        Used by synchronous paths (LOTEC demand fetches fired from
        inside a running method body) where the *data* moves at once
        and the *delay* is deferred to the transaction's next
        suspension point; returns the transfer time to defer.

        Fault injection treats this path as a frozen-clock replay of
        the ``send`` loop: drops add retransmit turnarounds to the
        deferred delay and crash windows are ignored (the clock cannot
        advance to a recovery), bounded by the plan's retransmit limit.
        """
        message.send_time = self.env.now
        if message.is_local:
            message.deliver_time = self.env.now
            return 0.0
        self._tag_wire(message)
        total_delay = 0.0
        attempt = 0
        while True:
            message.attempts = attempt + 1
            faults = self.injector.message_faults(
                message, attempt, self.env.now, synchronous=True)
            transfer_time = (self.config.transfer_time(message.size_bytes)
                             + faults.extra_delay_s)
            self.stats.record(message, transfer_time)
            self.tracer.message(message, transfer_time)
            if faults.duplicated:
                # Same rule as the asynchronous path: the duplicate's
                # wire copy is accounted on every attempt it rides.
                self.stats.record(message, transfer_time)
                self.tracer.fault_duplicate(message)
            if faults.extra_delay_s:
                self.tracer.fault_delay(message, faults.extra_delay_s)
            if not faults.dropped:
                break
            self.tracer.fault_drop(message, attempt)
            self.injector.stats.retransmissions += 1
            self.tracer.fault_retransmit(message, attempt + 1)
            total_delay += (transfer_time
                            + self.injector.retransmit_timeout_s())
            attempt += 1
        message.deliver_time = self.env.now + total_delay + transfer_time
        self.stats.record_attempts(message)
        return total_delay + transfer_time

    def charge_group(self, template: Message, destinations) -> float:
        """Send the same payload to several destinations (eager pushes).

        On a multicast-capable fabric one transmission reaches every
        destination: the sender pays the software cost and serializes
        the frame once.  Without multicast this degenerates to one
        unicast charge per remote destination.  Returns the total
        sender-side delay; local destinations are free as usual.
        """
        remote = [dst for dst in destinations if dst != template.src]
        if not remote:
            return 0.0
        if self.config.multicast:
            message = Message(
                src=template.src, dst=remote[0],
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            return self.charge(message)
        total = 0.0
        for dst in remote:
            message = Message(
                src=template.src, dst=dst,
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            total += self.charge(message)
        return total

    def round_trip(self, request: Message, response_size: int,
                   response_category=None) -> float:
        """Estimated request/response latency (used by planners only)."""
        category = response_category or request.category
        del category  # size-based; category kept for future queueing models
        return self.config.transfer_time(
            request.size_bytes
        ) + self.config.transfer_time(response_size)
