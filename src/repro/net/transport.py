"""The Transport interface: the protocol-visible networking contract.

Every consistency protocol, the lock manager, and the transfer engine
talk to the network through exactly four operations — asynchronous
:meth:`Transport.send`, synchronous :meth:`Transport.charge`, the
multicast-aware :meth:`Transport.charge_group`, and the planner
estimate :meth:`Transport.round_trip` — plus per-message accounting
(:class:`~repro.net.stats.NetworkStats`) and fault semantics (fair-loss
with bounded retransmission).  :class:`Transport` pins that contract
down as an abstract base class so the *wire mechanics* become
pluggable:

* :class:`~repro.net.network.SimTransport` (the default) delivers over
  the virtual clock of the discrete-event simulation, exactly as the
  paper's cost model prescribes;
* :class:`~repro.net.tcp.TcpTransport` delivers the same wire messages
  as length-prefixed frames over real localhost TCP sockets, one
  endpoint per cluster node (asyncio tasks, or real OS processes in
  ``processes`` mode).

``charge_group`` and ``round_trip`` are implemented here once in terms
of :meth:`charge` and the config's cost model, so both backends share
one multicast/unicast fan-out rule by construction.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.net.message import Message
from repro.net.network_config import NetworkConfig
from repro.net.stats import NetworkStats
from repro.sim import Event
from repro.util.ids import NodeId

#: Clock domains a transport can stamp deliveries with.  ``"virtual"``
#: is the DES clock of the simulation backend; ``"wall"`` is real
#: elapsed time (the TCP backend).  Mirrored into the JSONL trace
#: header so post-hoc checkers know what the timestamps mean.
VIRTUAL_CLOCK = "virtual"
WALL_CLOCK = "wall"


class Transport(abc.ABC):
    """Abstract wire: delivers messages between nodes, accounts each one.

    Concrete transports must provide :meth:`send` and :meth:`charge`
    and set ``env`` (the event engine deliveries are fired into),
    ``config`` (:class:`~repro.net.network_config.NetworkConfig`),
    ``stats`` (:class:`~repro.net.stats.NetworkStats`), ``tracer``, and
    ``injector`` in their constructor.  The lifecycle hooks
    (:meth:`start` / :meth:`close`) are no-ops by default — the
    simulation backend has no sockets to bring up.
    """

    #: Which clock deliveries are stamped with (see module constants).
    clock = VIRTUAL_CLOCK

    env = None
    config: NetworkConfig
    stats: NetworkStats
    tracer = None
    injector = None

    # -- wire operations ---------------------------------------------------

    @abc.abstractmethod
    def send(self, message: Message) -> Event:
        """Send a message; returns an event firing at delivery time.

        Local messages (``src == dst``) model calls into locally cached
        state: they deliver immediately and are not accounted, matching
        the paper's local/global split of lock processing (§4.1).
        """

    @abc.abstractmethod
    def charge(self, message: Message) -> float:
        """Account a message without creating a delivery event.

        Used by synchronous paths (LOTEC demand fetches fired from
        inside a running method body) where the *data* moves at once
        and the *delay* is deferred to the transaction's next
        suspension point; returns the transfer time to defer.
        """

    def charge_group(self, template: Message, destinations: Iterable[NodeId]
                     ) -> float:
        """Send the same payload to several destinations (eager pushes).

        On a multicast-capable fabric one transmission reaches every
        destination: the sender pays the software cost and serializes
        the frame once.  Without multicast this degenerates to one
        unicast charge per remote destination.  Returns the total
        sender-side delay; local destinations are free as usual.
        """
        remote = [dst for dst in destinations if dst != template.src]
        if not remote:
            return 0.0
        if self.config.multicast:
            message = Message(
                src=template.src, dst=remote[0],
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            return self.charge(message)
        total = 0.0
        for dst in remote:
            message = Message(
                src=template.src, dst=dst,
                category=template.category,
                size_bytes=template.size_bytes,
                object_id=template.object_id,
            )
            total += self.charge(message)
        return total

    def round_trip(self, request: Message, response_size: int) -> float:
        """Estimated request/response latency (used by planners only).

        A pure cost-model estimate on both backends — it never touches
        the wire or the accounting, so planners can call it freely.
        """
        return self.config.transfer_time(
            request.size_bytes
        ) + self.config.transfer_time(response_size)

    # -- lifecycle ---------------------------------------------------------

    def start(self, nodes: Iterable[NodeId]) -> None:
        """Bring the wire up for ``nodes`` (idempotent).

        The simulation backend needs nothing; the TCP backend binds one
        listening socket per node and connects the mesh.
        """

    def close(self) -> None:
        """Tear the wire down (idempotent); no sends may follow."""
