"""Network accounting: the measurement surface of the reproduction.

Figures 2-5 of the paper plot *bytes transferred to maintain the
consistency of each shared object*; Figures 6-8 plot *total message
time* for a shared object under different bandwidth / software-cost
points.  :class:`NetworkStats` accumulates exactly those series, plus
per-category tallies used by the message-count claims and ablations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.net.message import Message, MessageCategory
from repro.util.ids import ObjectId


@dataclass
class ObjectTraffic:
    """Per-object consistency-maintenance traffic totals."""

    bytes: int = 0
    messages: int = 0
    time: float = 0.0
    data_bytes: int = 0  # bytes in PAGE_DATA / UPDATE_PUSH messages only
    data_messages: int = 0

    def record(self, message: Message, transfer_time: float) -> None:
        self.bytes += message.size_bytes
        self.messages += 1
        self.time += transfer_time
        if message.category.is_consistency_data:
            self.data_bytes += message.size_bytes
            self.data_messages += 1


@dataclass
class NodeTraffic:
    """Per-node send/receive totals (load-balance diagnostics)."""

    sent_bytes: int = 0
    sent_messages: int = 0
    received_bytes: int = 0
    received_messages: int = 0


@dataclass
class NetworkStats:
    """Aggregate, per-object, and per-node network counters."""

    total_bytes: int = 0
    total_messages: int = 0
    total_time: float = 0.0
    by_category_bytes: Dict[MessageCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_category_messages: Dict[MessageCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_object: Dict[ObjectId, ObjectTraffic] = field(default_factory=dict)
    by_node: Dict[object, NodeTraffic] = field(default_factory=dict)

    def record(self, message: Message, transfer_time: float) -> None:
        """Account one delivered (non-local) message."""
        self.total_bytes += message.size_bytes
        self.total_messages += 1
        self.total_time += transfer_time
        self.by_category_bytes[message.category] += message.size_bytes
        self.by_category_messages[message.category] += 1
        if message.object_id is not None:
            traffic = self.by_object.get(message.object_id)
            if traffic is None:
                traffic = self.by_object[message.object_id] = ObjectTraffic()
            traffic.record(message, transfer_time)
        sender = self.by_node.setdefault(message.src, NodeTraffic())
        sender.sent_bytes += message.size_bytes
        sender.sent_messages += 1
        receiver = self.by_node.setdefault(message.dst, NodeTraffic())
        receiver.received_bytes += message.size_bytes
        receiver.received_messages += 1

    # -- derived views used by the benches --------------------------------

    def object_bytes(self, object_id: ObjectId) -> int:
        traffic = self.by_object.get(object_id)
        return traffic.bytes if traffic else 0

    def object_time(self, object_id: ObjectId) -> float:
        traffic = self.by_object.get(object_id)
        return traffic.time if traffic else 0.0

    def object_messages(self, object_id: ObjectId) -> int:
        traffic = self.by_object.get(object_id)
        return traffic.messages if traffic else 0

    def consistency_bytes(self) -> int:
        """Bytes in page/update data messages (the Figures 2-5 metric)."""
        return sum(
            count
            for category, count in self.by_category_bytes.items()
            if category.is_consistency_data
        )

    def category_bytes(self, category: MessageCategory) -> int:
        return self.by_category_bytes.get(category, 0)

    def category_messages(self, category: MessageCategory) -> int:
        return self.by_category_messages.get(category, 0)

    def node_imbalance(self) -> float:
        """Max/mean ratio of per-node sent+received bytes (1.0 = even)."""
        if not self.by_node:
            return 1.0
        loads = [
            traffic.sent_bytes + traffic.received_bytes
            for traffic in self.by_node.values()
        ]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict summary for reports and EXPERIMENTS.md tables."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "total_time": self.total_time,
            "consistency_bytes": self.consistency_bytes(),
            "node_imbalance": self.node_imbalance(),
            "by_category_bytes": {
                category.value: count
                for category, count in sorted(
                    self.by_category_bytes.items(), key=lambda kv: kv[0].value
                )
            },
            "by_category_messages": {
                category.value: count
                for category, count in sorted(
                    self.by_category_messages.items(), key=lambda kv: kv[0].value
                )
            },
        }
