"""Network accounting: the measurement surface of the reproduction.

Figures 2-5 of the paper plot *bytes transferred to maintain the
consistency of each shared object*; Figures 6-8 plot *total message
time* for a shared object under different bandwidth / software-cost
points.  :class:`NetworkStats` accumulates exactly those series, plus
per-category tallies used by the message-count claims and ablations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.net.message import Message, MessageCategory
from repro.util.ids import ObjectId


@dataclass
class ObjectTraffic:
    """Per-object consistency-maintenance traffic totals."""

    bytes: int = 0
    messages: int = 0
    time: float = 0.0
    data_bytes: int = 0  # bytes in PAGE_DATA / UPDATE_PUSH messages only
    data_messages: int = 0

    def record(self, message: Message, transfer_time: float) -> None:
        self.record_share(message.size_bytes, transfer_time,
                          message.category.is_consistency_data)

    def record_share(self, size_bytes: int, time: float,
                     is_data: bool) -> None:
        """Account one message — or one object's share of a batched
        message (wire time split pro rata by bytes)."""
        self.bytes += size_bytes
        self.messages += 1
        self.time += time
        if is_data:
            self.data_bytes += size_bytes
            self.data_messages += 1


@dataclass
class NodeTraffic:
    """Per-node send/receive totals (load-balance diagnostics)."""

    sent_bytes: int = 0
    sent_messages: int = 0
    received_bytes: int = 0
    received_messages: int = 0


@dataclass
class NetworkStats:
    """Aggregate, per-object, and per-node network counters."""

    total_bytes: int = 0
    total_messages: int = 0
    total_time: float = 0.0
    total_attempts: int = 0
    by_category_bytes: Dict[MessageCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_category_messages: Dict[MessageCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_attempts: Dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_object: Dict[ObjectId, ObjectTraffic] = field(default_factory=dict)
    by_node: Dict[object, NodeTraffic] = field(default_factory=dict)

    def record(self, message: Message, transfer_time: float) -> None:
        """Account one wire copy (attempt or duplicate) of a message."""
        self.total_bytes += message.size_bytes
        self.total_messages += 1
        self.total_time += transfer_time
        self.by_category_bytes[message.category] += message.size_bytes
        self.by_category_messages[message.category] += 1
        is_data = message.category.is_consistency_data
        for object_id, share_bytes in message.attributions():
            traffic = self.by_object.get(object_id)
            if traffic is None:
                traffic = self.by_object[object_id] = ObjectTraffic()
            share_time = (
                transfer_time * share_bytes / message.size_bytes
                if message.size_bytes else transfer_time
            )
            traffic.record_share(share_bytes, share_time, is_data)
        sender = self.by_node.setdefault(message.src, NodeTraffic())
        sender.sent_bytes += message.size_bytes
        sender.sent_messages += 1
        receiver = self.by_node.setdefault(message.dst, NodeTraffic())
        receiver.received_bytes += message.size_bytes
        receiver.received_messages += 1

    def record_attempts(self, message: Message) -> None:
        """Account one *delivered* message's wire-attempt count (1 =
        first attempt got through; >1 means retransmissions)."""
        self.total_attempts += message.attempts
        self.by_attempts[message.attempts] += 1

    # -- derived views used by the benches --------------------------------

    def object_bytes(self, object_id: ObjectId) -> int:
        traffic = self.by_object.get(object_id)
        return traffic.bytes if traffic else 0

    def object_time(self, object_id: ObjectId) -> float:
        traffic = self.by_object.get(object_id)
        return traffic.time if traffic else 0.0

    def object_messages(self, object_id: ObjectId) -> int:
        traffic = self.by_object.get(object_id)
        return traffic.messages if traffic else 0

    def consistency_bytes(self) -> int:
        """Bytes in page/update data messages (the Figures 2-5 metric)."""
        return sum(
            count
            for category, count in self.by_category_bytes.items()
            if category.is_consistency_data
        )

    def category_bytes(self, category: MessageCategory) -> int:
        return self.by_category_bytes.get(category, 0)

    def category_messages(self, category: MessageCategory) -> int:
        return self.by_category_messages.get(category, 0)

    #: Categories that terminate at (or originate from) a directory
    #: home node: lock traffic, forwarded requests racing a home move,
    #: and entry handoffs.  Local calls never reach ``record``, so this
    #: is by construction the *remote* directory traffic — the quantity
    #: adaptive home migration exists to shrink.
    DIRECTORY_CATEGORIES = (
        MessageCategory.LOCK_REQUEST,
        MessageCategory.LOCK_GRANT,
        MessageCategory.LOCK_RELEASE,
        MessageCategory.GDO_MIGRATE,
    )

    def directory_messages(self) -> int:
        """Remote messages to/from GDO home nodes (incl. migration)."""
        return sum(
            self.by_category_messages.get(category, 0)
            for category in self.DIRECTORY_CATEGORIES
        )

    def node_imbalance(self) -> float:
        """Max/mean ratio of per-node sent+received bytes (1.0 = even)."""
        if not self.by_node:
            return 1.0
        loads = [
            traffic.sent_bytes + traffic.received_bytes
            for traffic in self.by_node.values()
        ]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict summary for reports and EXPERIMENTS.md tables."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "total_time": self.total_time,
            "total_attempts": self.total_attempts,
            "consistency_bytes": self.consistency_bytes(),
            "directory_messages": self.directory_messages(),
            "node_imbalance": self.node_imbalance(),
            "by_attempts": {
                str(attempts): count
                for attempts, count in sorted(self.by_attempts.items())
            },
            "by_category_bytes": {
                category.value: count
                for category, count in sorted(
                    self.by_category_bytes.items(), key=lambda kv: kv[0].value
                )
            },
            "by_category_messages": {
                category.value: count
                for category, count in sorted(
                    self.by_category_messages.items(), key=lambda kv: kv[0].value
                )
            },
        }
