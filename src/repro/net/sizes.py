"""On-wire size model for protocol messages.

The paper argues LOTEC's extra messages are "small ones" while the
savings are in page data; to make that trade-off measurable we charge
every message a realistic wire size: a fixed protocol header plus a
payload determined by what the message carries (page bytes, holder-list
entries, page-map entries).  Constants are plausible for a compact
1990s messaging protocol and are configurable for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SizeModel:
    """Computes on-wire sizes for each message kind.

    Attributes:
        header_bytes: fixed per-message protocol header (addressing,
            type, transaction id).
        page_bytes: size of one DSM page.  The paper speaks of objects
            "on the order of one to five pages" and "ten to twenty
            pages"; we default to 4 KiB pages.
        holder_entry_bytes: size of one ``<transaction id, node id>``
            holder-list entry.
        page_map_entry_bytes: size of one page-map entry (page index +
            node id).
        lock_request_bytes: payload of a lock request (object id, mode,
            requester pair).
        ack_bytes: payload of a bare acknowledgement / control message.
        object_ref_bytes: per-object reference (object id + entry page
            count) inside a batched multi-object message's manifest.
    """

    header_bytes: int = 40
    page_bytes: int = 4096
    holder_entry_bytes: int = 8
    page_map_entry_bytes: int = 6
    lock_request_bytes: int = 16
    ack_bytes: int = 4
    object_ref_bytes: int = 8

    def __post_init__(self) -> None:
        for name in (
            "header_bytes",
            "page_bytes",
            "holder_entry_bytes",
            "page_map_entry_bytes",
            "lock_request_bytes",
            "ack_bytes",
            "object_ref_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def lock_request(self) -> int:
        return self.header_bytes + self.lock_request_bytes

    def lock_grant(self, holder_entries: int, page_map_entries: int) -> int:
        """Grant message carrying the holder list and the page map.

        Algorithm 4.2: "Send the list pointed to by HolderPtr and the
        object's page map to the requesting transaction's site."
        """
        return (
            self.header_bytes
            + holder_entries * self.holder_entry_bytes
            + page_map_entries * self.page_map_entry_bytes
        )

    def lock_release(self, dirty_entries: int) -> int:
        """Release message with piggybacked dirty-page information."""
        return self.header_bytes + dirty_entries * self.page_map_entry_bytes

    def page_request(self, page_count: int) -> int:
        return self.header_bytes + page_count * self.page_map_entry_bytes

    def page_data(self, page_count: int) -> int:
        return self.header_bytes + page_count * self.page_bytes

    def object_data(self, byte_count: int) -> int:
        """Object-grain transfer (the DSD mode of §4.2): raw bytes, not
        whole pages."""
        return self.header_bytes + byte_count

    # -- batched (multi-object) messages -----------------------------------
    #
    # A coalesced gather pays the protocol header once and prefixes each
    # object's payload with a small object reference; entry shares are
    # exposed separately so per-object accounting stays exact.

    def request_entry(self, page_count: int) -> int:
        """One object's share of a batched page request."""
        return self.object_ref_bytes + page_count * self.page_map_entry_bytes

    def page_request_batch(self, page_counts) -> int:
        """One request asking for several objects' pages at once."""
        return self.header_bytes + sum(
            self.request_entry(count) for count in page_counts
        )

    def data_entry(self, page_count: int) -> int:
        """One object's share of a batched page-grain data message."""
        return self.object_ref_bytes + page_count * self.page_bytes

    def page_data_batch(self, page_counts) -> int:
        return self.header_bytes + sum(
            self.data_entry(count) for count in page_counts
        )

    def object_data_entry(self, byte_count: int) -> int:
        """One object's share of a batched object-grain data message."""
        return self.object_ref_bytes + byte_count

    def object_data_batch(self, byte_counts) -> int:
        return self.header_bytes + sum(
            self.object_data_entry(count) for count in byte_counts
        )

    def migration_transfer(self, holder_entries: int,
                           page_map_entries: int) -> int:
        """Directory-entry handoff when an entry's home migrates: the
        old home ships the full entry state — holder list plus page
        map — to the new home, same payload shape as a grant."""
        return (
            self.header_bytes
            + holder_entries * self.holder_entry_bytes
            + page_map_entries * self.page_map_entry_bytes
        )

    def control(self) -> int:
        return self.header_bytes + self.ack_bytes
