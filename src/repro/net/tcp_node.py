"""One cluster node's wire relay, as a real OS process.

``python -m repro.net.tcp_node --node N --coordinator HOST:PORT`` is
what :class:`~repro.net.tcp.TcpTransport` spawns per node in
``processes`` mode.  The relay owns node ``N``'s network presence — its
listening socket and its outbound peer connections — while all protocol
state stays in the coordinator:

1. bind a listening socket on an ephemeral port;
2. dial the coordinator and send ``{"t": "hello", "node": N, "port": p}``;
3. wait for the ``{"t": "peers", "ports": {...}}`` map;
4. relay: message frames arriving on the uplink are forwarded to their
   ``dst`` peer's socket; frames arriving from peers are forwarded up
   the uplink; ``{"t": "shutdown"}`` exits.

Frames are opaque to the relay beyond the routing fields, so every
message crosses two real sockets (coordinator → src relay → dst relay)
and node-to-node traffic is genuinely inter-process.

Partition awareness: ``{"t": "partition", "group_a": [...]}`` opens a
bipartition and ``{"t": "partition_heal", ...}`` closes it.  While a
cut is open the relay *refuses* to forward any message frame whose
``dst`` is on the other side — it reports ``{"t": "refused", "frame":
...}`` up the uplink instead, and the coordinator re-ships the frame
after a retransmit turnaround.  The engine's fault injector is the
authoritative (and fully accounted) partition model; the relay check
makes the real wire honour the cut too.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Dict, FrozenSet, Optional, Tuple

from repro.net.tcp import read_envelope, write_envelope


class NodeRelay:
    def __init__(self, node: int, coordinator: Tuple[str, int]):
        self.node = node
        self.coordinator = coordinator
        self.peer_ports: Dict[int, int] = {}
        self._peer_writers: Dict[int, asyncio.StreamWriter] = {}
        self._peer_locks: Dict[int, asyncio.Lock] = {}
        self._uplink_writer: asyncio.StreamWriter = None
        self._uplink_lock = asyncio.Lock()
        #: Open bipartition (one side's node set), or None when whole.
        self._cut: Optional[FrozenSet[int]] = None

    async def run(self) -> None:
        host = self.coordinator[0]
        server = await asyncio.start_server(self._serve_peer, host, 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection(*self.coordinator)
        self._uplink_writer = writer
        await write_envelope(
            writer, {"t": "hello", "node": self.node, "port": port}
        )
        try:
            while True:
                frame = await read_envelope(reader)
                if frame is None or frame.get("t") == "shutdown":
                    return
                if frame.get("t") == "peers":
                    self.peer_ports = {
                        int(node): peer_port
                        for node, peer_port in frame["ports"].items()
                    }
                elif frame.get("t") == "partition":
                    self._cut = frozenset(frame["group_a"])
                elif frame.get("t") == "partition_heal":
                    self._cut = None
                elif frame.get("t") == "msg":
                    await self._forward(frame)
        finally:
            server.close()
            for peer in self._peer_writers.values():
                peer.close()
            writer.close()

    async def _forward(self, frame: dict) -> None:
        dst = frame["dst"]
        cut = self._cut
        if cut is not None and (self.node in cut) != (dst in cut):
            # Cross-partition frame: refuse it back up the uplink; the
            # coordinator re-ships after a retransmit turnaround.
            async with self._uplink_lock:
                await write_envelope(
                    self._uplink_writer, {"t": "refused", "frame": frame}
                )
            return
        lock = self._peer_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._peer_writers.get(dst)
            if writer is None:
                host = self.coordinator[0]
                _reader, writer = await asyncio.open_connection(
                    host, self.peer_ports[dst]
                )
                self._peer_writers[dst] = writer
            await write_envelope(writer, frame)

    async def _serve_peer(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                frame = await read_envelope(reader)
                if frame is None:
                    return
                async with self._uplink_lock:
                    await write_envelope(self._uplink_writer, frame)
        except asyncio.CancelledError:
            return  # relay shutdown cancels handlers mid-read; that's fine
        finally:
            writer.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.net.tcp_node",
        description="wire relay for one cluster node (processes mode)",
    )
    parser.add_argument("--node", type=int, required=True)
    parser.add_argument("--coordinator", required=True,
                        metavar="HOST:PORT")
    options = parser.parse_args(argv)
    host, _, port = options.coordinator.rpartition(":")
    relay = NodeRelay(options.node, (host, int(port)))
    asyncio.run(relay.run())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
