"""The network cost model: the two knobs the paper sweeps, plus wire
propagation.  Shared by every transport backend — the simulation uses
it to compute delivery times, the TCP backend to size retransmission
timeouts and report modeled wire occupancy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkConfig:
    """The two knobs the paper sweeps, plus wire propagation.

    Attributes:
        bandwidth_bps: link bandwidth in bits per second.
        software_cost_s: fixed per-message software (protocol startup)
            cost in seconds — the x-axis of Figures 6-8.
        propagation_s: physical propagation delay; negligible on a
            system-area network but kept explicit and configurable.
        name: human-readable label used in reports.
        multicast: the switch replicates frames to multiple receivers,
            so one transmission reaches any number of destinations (§6
            lists "multicast-capable networks" among the DSM
            optimizations LOTEC should compose with).
    """

    bandwidth_bps: float
    software_cost_s: float
    propagation_s: float = 1e-6
    name: str = ""
    multicast: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.software_cost_s < 0 or self.propagation_s < 0:
            raise ConfigurationError("latencies must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """Time one message of ``size_bytes`` occupies: software startup
        plus wire serialization plus propagation."""
        return (
            self.software_cost_s
            + (size_bytes * 8.0) / self.bandwidth_bps
            + self.propagation_s
        )

    def with_software_cost(self, software_cost_s: float) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=self.multicast,
        )

    def with_multicast(self, enabled: bool = True) -> "NetworkConfig":
        return NetworkConfig(
            bandwidth_bps=self.bandwidth_bps,
            software_cost_s=self.software_cost_s,
            propagation_s=self.propagation_s,
            name=self.name,
            multicast=enabled,
        )
