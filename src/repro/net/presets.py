"""Network presets matching the paper's simulation sweep.

Section 5: "We simulated the various protocols at bit rates roughly
corresponding to switched (i.e. no collisions) conventional, fast, and
gigabit Ethernet" with per-message software costs of 100 us, 20 us,
5 us, 1 us, and 500 ns (the x-axes of Figures 6-8).
"""

from __future__ import annotations

from repro.net.network import NetworkConfig

#: Conventional switched Ethernet (Figure 6).
ETHERNET_10M = NetworkConfig(
    bandwidth_bps=10e6, software_cost_s=100e-6, name="10Mbps"
)

#: Fast Ethernet (Figure 7).
FAST_ETHERNET_100M = NetworkConfig(
    bandwidth_bps=100e6, software_cost_s=100e-6, name="100Mbps"
)

#: Gigabit Ethernet (Figure 8).
GIGABIT_1G = NetworkConfig(
    bandwidth_bps=1e9, software_cost_s=100e-6, name="1Gbps"
)

#: The five software (messaging protocol) startup costs of Figures 6-8,
#: from heavyweight kernel TCP down to user-level active messages.
SOFTWARE_COSTS = {
    "100us": 100e-6,
    "20us": 20e-6,
    "5us": 5e-6,
    "1us": 1e-6,
    "500ns": 500e-9,
}

_PRESETS = {
    "10Mbps": ETHERNET_10M,
    "100Mbps": FAST_ETHERNET_100M,
    "1Gbps": GIGABIT_1G,
}


def preset_network(bandwidth: str, software_cost: str = "100us") -> NetworkConfig:
    """Look up a paper sweep point, e.g. ``preset_network("1Gbps", "5us")``."""
    try:
        base = _PRESETS[bandwidth]
    except KeyError:
        raise KeyError(
            f"unknown bandwidth preset {bandwidth!r}; choose from {sorted(_PRESETS)}"
        ) from None
    try:
        cost = SOFTWARE_COSTS[software_cost]
    except KeyError:
        raise KeyError(
            f"unknown software cost {software_cost!r}; "
            f"choose from {sorted(SOFTWARE_COSTS)}"
        ) from None
    return NetworkConfig(
        bandwidth_bps=base.bandwidth_bps,
        software_cost_s=cost,
        propagation_s=base.propagation_s,
        name=f"{bandwidth}@{software_cost}",
    )
