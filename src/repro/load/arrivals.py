"""Open-loop arrival processes.

An open-loop source emits start times from a stochastic process that
never looks at completions: if the system falls behind, arrivals keep
coming and queues grow — exactly the regime that exposes hot-shard
queueing, which closed-loop workloads structurally cannot produce.

Both processes draw every variate from an injected
:class:`~repro.util.rng.SeededRNG` (the cluster-independent
``derive("load")`` stream), so an offset list is a pure function of
(scenario, seed) and byte-identical across repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRNG


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant mean rate."""

    rate_tps: float  # mean arrivals per simulated second

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ConfigurationError("arrival rate must be positive")

    def offsets(self, count: int, rng: SeededRNG) -> List[float]:
        clock = 0.0
        out: List[float] = []
        for _ in range(count):
            clock += rng.expovariate(self.rate_tps)
            out.append(clock)
        return out


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (calm / burst).

    The process alternates between a calm phase and a burst phase,
    each with exponentially distributed dwell time; within a phase
    arrivals are Poisson at that phase's rate.  Because exponentials
    are memoryless, redrawing the interarrival at each phase switch is
    an exact simulation, not an approximation.
    """

    calm_rate_tps: float
    burst_rate_tps: float
    mean_calm_s: float
    mean_burst_s: float

    def __post_init__(self) -> None:
        if self.calm_rate_tps <= 0 or self.burst_rate_tps <= 0:
            raise ConfigurationError("arrival rates must be positive")
        if self.mean_calm_s <= 0 or self.mean_burst_s <= 0:
            raise ConfigurationError("phase dwell times must be positive")

    def offsets(self, count: int, rng: SeededRNG) -> List[float]:
        clock = 0.0
        bursting = False
        phase_end = rng.expovariate(1.0 / self.mean_calm_s)
        out: List[float] = []
        while len(out) < count:
            rate = self.burst_rate_tps if bursting else self.calm_rate_tps
            gap = rng.expovariate(rate)
            if clock + gap >= phase_end:
                # Phase switch before the next arrival; the discarded
                # residual is memoryless, so restart the draw.
                clock = phase_end
                bursting = not bursting
                dwell = self.mean_burst_s if bursting else self.mean_calm_s
                phase_end = clock + rng.expovariate(1.0 / dwell)
                continue
            clock += gap
            out.append(clock)
        return out
