"""Per-shard SLO tables from :mod:`repro.obs` metric snapshots.

A *shard* here is a directory home node: the lock manager labels its
``gdo.request_latency_s`` histograms and ``gdo.queue_depth`` gauges
with ``shard=<node>``.  This module turns a JSON-ready
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the
p50/p99/p999 latency and queue-depth series the bench report and the
``repro load`` CLI print — working from the *snapshot* (not the live
registry) so cached and worker-shipped bench envelopes can be rendered
without re-running anything.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.metrics import DEFAULT_BUCKETS, percentile_from_counts

LATENCY_METRIC = "gdo.request_latency_s"
QUEUE_METRIC = "gdo.queue_depth"


def snapshot_percentile(snapshot: Mapping[str, object], q: float) -> float:
    """Nearest-rank percentile recomputed from a histogram snapshot.

    Snapshots elide zero-count buckets, so the bucket bounds are
    reconstructed as the union of :data:`DEFAULT_BUCKETS` and whatever
    bounds the snapshot recorded (future-proof against non-default
    bucket layouts).  Matches :meth:`Histogram.percentile` exactly for
    default-bucket histograms.
    """
    count = int(snapshot.get("count", 0))
    if count <= 0:
        return 0.0
    recorded = {
        float(bound): int(value)
        for bound, value in snapshot.get("buckets", {}).items()
    }
    bounds = sorted(set(DEFAULT_BUCKETS) | set(recorded))
    counts = [recorded.get(bound, 0) for bound in bounds]
    counts.append(int(snapshot.get("overflow", 0)))
    return percentile_from_counts(
        bounds, counts, count,
        float(snapshot.get("min", 0.0)), float(snapshot.get("max", 0.0)), q,
    )


def _shard_of(label: str) -> Optional[int]:
    """Extract the shard id from a rendered label like ``"shard=3"``."""
    for part in label.split(","):
        key, _, value = part.partition("=")
        if key == "shard":
            try:
                return int(value)
            except ValueError:
                return None
    return None


def shard_slo_series(
    metrics_snapshot: Mapping[str, object],
) -> Dict[str, Dict[object, float]]:
    """Per-shard SLO series, ready for ``format_series_table``.

    Returns ``{series_name: {shard: value}}`` with shard keys inserted
    in numeric order (``format_series_table`` renders x-values in
    first-insertion order, so the table comes out sorted).  Latencies
    are reported in microseconds; shards that saw no remote requests
    are omitted.
    """
    histograms = metrics_snapshot.get("histograms", {})
    gauges = metrics_snapshot.get("gauges", {})
    latency = histograms.get(LATENCY_METRIC, {})
    queue = gauges.get(QUEUE_METRIC, {})
    per_shard: Dict[int, Mapping[str, object]] = {}
    for label, snapshot in latency.items():
        shard = _shard_of(label)
        if shard is not None:
            per_shard[shard] = snapshot
    high_water: Dict[int, float] = {}
    for label, gauge in queue.items():
        shard = _shard_of(label)
        if shard is not None:
            high_water[shard] = float(gauge.get("high_water", 0.0))
    series: Dict[str, Dict[object, float]] = {
        "requests": {}, "p50_us": {}, "p99_us": {}, "p999_us": {},
        "queue_high_water": {},
    }
    for shard in sorted(per_shard):
        snapshot = per_shard[shard]
        series["requests"][shard] = float(snapshot.get("count", 0))
        for name, q in (("p50_us", 0.50), ("p99_us", 0.99),
                        ("p999_us", 0.999)):
            series[name][shard] = round(
                snapshot_percentile(snapshot, q) * 1e6, 1
            )
        series["queue_high_water"][shard] = high_water.get(shard, 0.0)
    return series
